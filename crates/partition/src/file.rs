//! The partitioning-file format.
//!
//! The paper's system takes "a graph partitioning file indicating which
//! device each vertex belongs to" as its second input, produced by "a
//! separate module". Format: a header `n`, then one device id (0 or 1) per
//! line, in vertex order.

use crate::ratio::Ratio;
use crate::scheme::{DevicePartition, PartitionScheme};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Write a partition to the text format.
pub fn write_partition<W: Write>(p: &DevicePartition, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "{}", p.assign.len())?;
    for &d in &p.assign {
        writeln!(w, "{d}")?;
    }
    w.flush()
}

/// Read a partition from the text format. The ratio and scheme of the file
/// are unknown; the returned partition carries the measured vertex-count
/// ratio and `Continuous` as a placeholder scheme.
pub fn read_partition<R: Read>(input: R) -> io::Result<DevicePartition> {
    let mut lines = BufReader::new(input).lines();
    let n: usize = lines
        .next()
        .ok_or_else(|| bad("empty partition file"))??
        .trim()
        .parse()
        .map_err(|_| bad("bad vertex count"))?;
    let mut assign = Vec::with_capacity(n);
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        let d: u8 = t
            .parse()
            .map_err(|_| bad(&format!("bad device id {t:?}")))?;
        if d > 1 {
            return Err(bad(&format!("device id {d} out of range")));
        }
        assign.push(d);
    }
    if assign.len() != n {
        return Err(bad(&format!(
            "expected {n} assignments, found {}",
            assign.len()
        )));
    }
    let cpu = assign.iter().filter(|&&d| d == 0).count() as u32;
    let mic = n as u32 - cpu;
    Ok(DevicePartition {
        assign,
        ratio: if cpu + mic == 0 {
            Ratio::even()
        } else {
            Ratio::new(cpu.max(u32::from(mic == 0)), mic)
        },
        scheme: PartitionScheme::Continuous,
    })
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::partition;
    use phigraph_graph::generators::small::cycle;

    #[test]
    fn round_trip() {
        let g = cycle(10);
        let p = partition(&g, PartitionScheme::RoundRobin, Ratio::new(2, 3), 0);
        let mut buf = Vec::new();
        write_partition(&p, &mut buf).unwrap();
        let q = read_partition(&buf[..]).unwrap();
        assert_eq!(q.assign, p.assign);
    }

    #[test]
    fn rejects_wrong_count() {
        assert!(read_partition(&b"3\n0\n1\n"[..]).is_err());
    }

    #[test]
    fn rejects_bad_device() {
        assert!(read_partition(&b"1\n7\n"[..]).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(read_partition(&b""[..]).is_err());
    }
}
