#![warn(missing_docs)]
//! Workload partitioning between the CPU and the MIC.
//!
//! Implements §IV.E of the paper: vertices are statically assigned to the
//! two devices before the run, according to a user partitioning ratio
//! `a : b`, under two goals — load balance (edges processed per device close
//! to the ratio) and minimized cross edges (communication volume).
//!
//! Three schemes are provided, exactly the ones compared in Fig. 6:
//!
//! * [`scheme::PartitionScheme::Continuous`] — first `a/(a+b)·n` vertices to
//!   the CPU; breaks on power-law graphs with front-loaded hubs.
//! * [`scheme::PartitionScheme::RoundRobin`] — interleaved per-vertex deal;
//!   balanced, but maximizes cross edges.
//! * [`scheme::PartitionScheme::Hybrid`] — the paper's contribution: a
//!   min-connectivity blocked partitioning (256 blocks by default) computed
//!   by the [`mlp`] multilevel partitioner (our from-scratch Metis
//!   substitute), blocks dealt round-robin to the devices by ratio.
//!
//! The blocked partitioning is computed once per graph and reused across
//! ratios, matching the paper's methodology ("the blocked partitioning
//! result is reused for generating hybrid partitioning results for
//! different ratios").

//!
//! Every scheme generalizes to an N-rank fabric: [`Shares`] is the N-way
//! form of the `a:b` [`Ratio`], and [`partition_n`] produces a
//! [`DevicePartition`] over any number of ranks (the 2-rank [`partition`]
//! is its `N = 2` case).

pub mod file;
pub mod mlp;
pub mod ratio;
pub mod scheme;
pub mod shares;
pub mod stats;

pub use ratio::Ratio;
pub use scheme::{partition, partition_n, DevicePartition, PartitionScheme, MAX_RANKS};
pub use shares::Shares;
pub use stats::PartitionStats;
