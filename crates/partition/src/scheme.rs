//! The three device-partitioning schemes of §IV.E / Fig. 6.

use crate::mlp::partition_kway;
use crate::ratio::Ratio;
use phigraph_graph::Csr;

/// Which algorithm distributes vertices to the two devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionScheme {
    /// "The first `a/(a+b) · num_vertices` vertices are assigned to CPU,
    /// and the remaining vertices are assigned to MIC."
    Continuous,
    /// "For every `a+b` vertices, the first `a` vertices are assigned to
    /// CPU, and the remaining `b` vertices are assigned to MIC."
    RoundRobin,
    /// "First partition the vertices into small blocks [min-connectivity,
    /// via the multilevel partitioner], and then assign the blocks to the
    /// devices in a round-robin fashion."
    Hybrid {
        /// Number of min-connectivity blocks (the paper uses 256).
        blocks: usize,
    },
}

impl PartitionScheme {
    /// The paper's hybrid configuration (256 blocks).
    pub fn hybrid_default() -> Self {
        PartitionScheme::Hybrid { blocks: 256 }
    }

    /// Scheme name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionScheme::Continuous => "continuous",
            PartitionScheme::RoundRobin => "round-robin",
            PartitionScheme::Hybrid { .. } => "hybrid",
        }
    }
}

/// A vertex→device assignment (0 = CPU, 1 = MIC).
#[derive(Clone, Debug, PartialEq)]
pub struct DevicePartition {
    /// Device per vertex.
    pub assign: Vec<u8>,
    /// The ratio the assignment targets.
    pub ratio: Ratio,
    /// The scheme that produced it.
    pub scheme: PartitionScheme,
}

impl DevicePartition {
    /// Vertices owned by `dev`, in ascending id order.
    pub fn owned(&self, dev: u8) -> Vec<u32> {
        self.assign
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == dev)
            .map(|(v, _)| v as u32)
            .collect()
    }

    /// Vertex count per device.
    pub fn counts(&self) -> [usize; 2] {
        let mut c = [0usize; 2];
        for &d in &self.assign {
            c[d as usize] += 1;
        }
        c
    }

    /// An all-on-one-device partition (single-device execution).
    pub fn single_device(n: usize, dev: u8) -> Self {
        DevicePartition {
            assign: vec![dev; n],
            ratio: if dev == 0 {
                Ratio::new(1, 0)
            } else {
                Ratio::new(0, 1)
            },
            scheme: PartitionScheme::Continuous,
        }
    }

    /// Failover migration: remap every vertex onto `dev`, keeping the
    /// original scheme tag for reporting. Used when the other device dies
    /// mid-run and the survivor absorbs its partition.
    pub fn migrate_to(&self, dev: u8) -> Self {
        DevicePartition {
            assign: vec![dev; self.assign.len()],
            ratio: if dev == 0 {
                Ratio::new(1, 0)
            } else {
                Ratio::new(0, 1)
            },
            scheme: self.scheme,
        }
    }
}

/// Partition `g` between CPU and MIC with `scheme` at `ratio`.
///
/// # Examples
///
/// ```
/// use phigraph_partition::{partition, PartitionScheme, Ratio};
/// use phigraph_graph::generators::small::cycle;
/// let g = cycle(8);
/// let p = partition(&g, PartitionScheme::RoundRobin, Ratio::new(1, 1), 0);
/// assert_eq!(p.counts(), [4, 4]);
/// ```
pub fn partition(g: &Csr, scheme: PartitionScheme, ratio: Ratio, seed: u64) -> DevicePartition {
    let n = g.num_vertices();
    let assign = match scheme {
        PartitionScheme::Continuous => continuous(n, ratio),
        PartitionScheme::RoundRobin => round_robin(n, ratio),
        PartitionScheme::Hybrid { blocks } => {
            let block_of = partition_kway(g, blocks.max(1), seed);
            hybrid_from_blocks(g, &block_of, blocks.max(1), ratio)
        }
    };
    DevicePartition {
        assign,
        ratio,
        scheme,
    }
}

/// Continuous partitioning.
fn continuous(n: usize, ratio: Ratio) -> Vec<u8> {
    let cpu_count = ((n as f64) * ratio.share(0)).round() as usize;
    (0..n).map(|v| u8::from(v >= cpu_count)).collect()
}

/// Per-vertex round-robin dealing.
fn round_robin(n: usize, ratio: Ratio) -> Vec<u8> {
    let a = ratio.cpu as usize;
    let period = ratio.total() as usize;
    (0..n).map(|v| u8::from(v % period >= a)).collect()
}

/// Deal pre-computed blocks to the devices. Blocks are dealt in id order to
/// whichever device is furthest below its ratio share of cumulative
/// workload (weighted round-robin) — this keeps the computation ratio
/// consistent with the requested ratio even when block workloads differ.
pub fn hybrid_from_blocks(g: &Csr, block_of: &[u32], blocks: usize, ratio: Ratio) -> Vec<u8> {
    // Per-block workload = edges sourced in the block (+1 per vertex).
    let mut work = vec![0f64; blocks];
    for v in 0..g.num_vertices() {
        work[block_of[v] as usize] += 1.0 + g.out_degree(v as u32) as f64;
    }
    let shares = [ratio.share(0), ratio.share(1)];
    let mut assigned = [0f64; 2];
    let mut block_dev = vec![0u8; blocks];
    for b in 0..blocks {
        // Pick the device with the smaller normalized load; a zero-share
        // device never receives blocks.
        let dev = if shares[0] <= 0.0 {
            1
        } else if shares[1] <= 0.0 {
            0
        } else {
            let l0 = (assigned[0] + work[b]) / shares[0];
            let l1 = (assigned[1] + work[b]) / shares[1];
            usize::from(l1 < l0)
        };
        block_dev[b] = dev as u8;
        assigned[dev] += work[b];
    }
    block_of.iter().map(|&b| block_dev[b as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::PartitionStats;
    use phigraph_graph::generators::rmat::{rmat, RmatConfig};

    fn pokec_like() -> Csr {
        rmat(&RmatConfig {
            scale: 11,
            edge_factor: 8,
            seed: 42,
            ..Default::default()
        })
    }

    #[test]
    fn continuous_splits_by_count() {
        let g = pokec_like();
        let p = partition(&g, PartitionScheme::Continuous, Ratio::new(3, 5), 0);
        let c = p.counts();
        let expect = (g.num_vertices() as f64 * 0.375).round() as usize;
        assert_eq!(c[0], expect);
        // Prefix property.
        assert!(p.assign[..c[0]].iter().all(|&d| d == 0));
        assert!(p.assign[c[0]..].iter().all(|&d| d == 1));
    }

    #[test]
    fn round_robin_interleaves() {
        let g = pokec_like();
        let p = partition(&g, PartitionScheme::RoundRobin, Ratio::new(1, 1), 0);
        for v in 0..16 {
            assert_eq!(p.assign[v], (v % 2) as u8);
        }
    }

    #[test]
    fn continuous_is_imbalanced_on_front_loaded_graphs() {
        // The core Fig. 6 phenomenon: hubs at the front overload the CPU.
        let g = pokec_like();
        let ratio = Ratio::new(1, 1);
        let cont = partition(&g, PartitionScheme::Continuous, ratio, 0);
        let s = PartitionStats::compute(&g, &cont);
        assert!(
            s.edge_balance_error(ratio) > 0.25,
            "continuous should be badly imbalanced, err {}",
            s.edge_balance_error(ratio)
        );
    }

    #[test]
    fn round_robin_and_hybrid_are_balanced() {
        let g = pokec_like();
        let ratio = Ratio::new(3, 5);
        for scheme in [
            PartitionScheme::RoundRobin,
            PartitionScheme::hybrid_default(),
        ] {
            let p = partition(&g, scheme, ratio, 1);
            let s = PartitionStats::compute(&g, &p);
            assert!(
                s.edge_balance_error(ratio) < 0.15,
                "{} balance error {}",
                scheme.name(),
                s.edge_balance_error(ratio)
            );
        }
    }

    #[test]
    fn hybrid_cuts_fewer_cross_edges_than_round_robin() {
        let g = pokec_like();
        let ratio = Ratio::new(1, 1);
        let rr = PartitionStats::compute(&g, &partition(&g, PartitionScheme::RoundRobin, ratio, 0));
        let hy = PartitionStats::compute(
            &g,
            &partition(&g, PartitionScheme::hybrid_default(), ratio, 0),
        );
        assert!(
            hy.cross_edges < rr.cross_edges,
            "hybrid {} vs round-robin {}",
            hy.cross_edges,
            rr.cross_edges
        );
    }

    #[test]
    fn one_sided_ratio_gives_single_device() {
        let g = pokec_like();
        let p = partition(&g, PartitionScheme::hybrid_default(), Ratio::new(0, 1), 0);
        assert!(p.assign.iter().all(|&d| d == 1));
    }

    #[test]
    fn migrate_to_moves_everything_to_the_survivor() {
        let g = pokec_like();
        let p = partition(&g, PartitionScheme::hybrid_default(), Ratio::new(3, 5), 1);
        let m = p.migrate_to(0);
        assert_eq!(m.assign.len(), p.assign.len());
        assert!(m.assign.iter().all(|&d| d == 0));
        assert_eq!(m.ratio, Ratio::new(1, 0));
        assert_eq!(m.scheme.name(), "hybrid");
        let m1 = p.migrate_to(1);
        assert!(m1.assign.iter().all(|&d| d == 1));
        assert_eq!(m1.ratio, Ratio::new(0, 1));
    }

    #[test]
    fn owned_lists_partition_the_vertices() {
        let g = pokec_like();
        let p = partition(&g, PartitionScheme::RoundRobin, Ratio::new(2, 3), 0);
        let mut all = p.owned(0);
        all.extend(p.owned(1));
        all.sort_unstable();
        let expect: Vec<u32> = (0..g.num_vertices() as u32).collect();
        assert_eq!(all, expect);
    }
}
