//! The three device-partitioning schemes of §IV.E / Fig. 6, generalized to
//! N ranks.
//!
//! Every scheme is implemented once for N-way [`Shares`]; the paper's
//! two-device `a:b` form is the `N = 2` case ([`partition`] delegates to
//! [`partition_n`] bit-for-bit).

use crate::mlp::partition_kway;
use crate::ratio::Ratio;
use crate::shares::Shares;
use phigraph_graph::Csr;

/// Ranks are stored as `u8` and the device engine tracks remote senders in
/// a 64-bit mask, so a single fabric tops out at 64 in-process runtimes.
pub const MAX_RANKS: usize = 64;

/// Which algorithm distributes vertices to the devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionScheme {
    /// "The first `a/(a+b) · num_vertices` vertices are assigned to CPU,
    /// and the remaining vertices are assigned to MIC." N-way: consecutive
    /// segments sized by cumulative share.
    Continuous,
    /// "For every `a+b` vertices, the first `a` vertices are assigned to
    /// CPU, and the remaining `b` vertices are assigned to MIC." N-way:
    /// each period of `total` vertices is sliced into per-rank bands.
    RoundRobin,
    /// "First partition the vertices into small blocks [min-connectivity,
    /// via the multilevel partitioner], and then assign the blocks to the
    /// devices in a round-robin fashion."
    Hybrid {
        /// Number of min-connectivity blocks (the paper uses 256).
        blocks: usize,
    },
}

impl PartitionScheme {
    /// The paper's hybrid configuration (256 blocks).
    pub fn hybrid_default() -> Self {
        PartitionScheme::Hybrid { blocks: 256 }
    }

    /// Scheme name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionScheme::Continuous => "continuous",
            PartitionScheme::RoundRobin => "round-robin",
            PartitionScheme::Hybrid { .. } => "hybrid",
        }
    }
}

/// A vertex→rank assignment. Rank 0 is the CPU in the paper's 2-device
/// topology; ranks 1… are accelerator runtimes.
#[derive(Clone, Debug, PartialEq)]
pub struct DevicePartition {
    /// Rank per vertex.
    pub assign: Vec<u8>,
    /// The per-rank shares the assignment targets (evicted ranks carry a
    /// zero part and own no vertices).
    pub shares: Shares,
    /// The scheme that produced it.
    pub scheme: PartitionScheme,
}

impl DevicePartition {
    /// Vertices owned by `dev`, in ascending id order.
    pub fn owned(&self, dev: u8) -> Vec<u32> {
        self.assign
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == dev)
            .map(|(v, _)| v as u32)
            .collect()
    }

    /// Number of ranks in the fabric (including zero-share ranks).
    pub fn num_ranks(&self) -> usize {
        self.shares.num_ranks()
    }

    /// Vertex count per rank.
    pub fn counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.num_ranks()];
        for &d in &self.assign {
            c[d as usize] += 1;
        }
        c
    }

    /// An all-on-one-device partition (single-device execution). Two-rank
    /// fabric, everything on `dev`.
    pub fn single_device(n: usize, dev: u8) -> Self {
        DevicePartition {
            assign: vec![dev; n],
            shares: Shares::single(2, dev as usize),
            scheme: PartitionScheme::Continuous,
        }
    }

    /// Failover migration: remap every vertex onto `dev`, keeping the
    /// original scheme tag for reporting. Used when every other rank dies
    /// mid-run and the survivor absorbs the whole graph.
    pub fn migrate_to(&self, dev: u8) -> Self {
        DevicePartition {
            assign: vec![dev; self.assign.len()],
            shares: Shares::single(self.num_ranks(), dev as usize),
            scheme: self.scheme,
        }
    }

    /// Eviction re-split: deal every vertex owned by a rank in `dead` onto
    /// the `survivors`, in vertex order, each vertex going to the survivor
    /// with the smallest normalized load `(count + 1) / share` (ties to the
    /// lowest rank id — the same greedy rule the hybrid scheme uses for
    /// blocks). Survivor-owned vertices never move, so surviving ranks
    /// keep their exact per-vertex state. With a single survivor this
    /// degenerates to [`migrate_to`](Self::migrate_to).
    pub fn redistribute(&self, dead: &[usize], survivors: &[usize]) -> Self {
        assert!(!survivors.is_empty(), "need at least one survivor");
        if survivors.len() == 1 {
            return self.migrate_to(survivors[0] as u8);
        }
        let weights: Vec<f64> = survivors
            .iter()
            .map(|&s| f64::from(self.shares.part(s).max(1)))
            .collect();
        let mut counts: Vec<f64> = survivors
            .iter()
            .map(|&s| self.assign.iter().filter(|&&d| d as usize == s).count() as f64)
            .collect();
        let mut assign = self.assign.clone();
        for slot in assign.iter_mut() {
            if !dead.contains(&(*slot as usize)) {
                continue;
            }
            let mut best = 0usize;
            for i in 1..survivors.len() {
                if (counts[i] + 1.0) / weights[i] < (counts[best] + 1.0) / weights[best] {
                    best = i;
                }
            }
            *slot = survivors[best] as u8;
            counts[best] += 1.0;
        }
        let mut shares = self.shares.clone();
        for &d in dead {
            shares = shares.evicted(d);
        }
        DevicePartition {
            assign,
            shares,
            scheme: self.scheme,
        }
    }
}

/// Partition `g` between CPU and MIC with `scheme` at `ratio`: the two-rank
/// case of [`partition_n`].
///
/// # Examples
///
/// ```
/// use phigraph_partition::{partition, PartitionScheme, Ratio};
/// use phigraph_graph::generators::small::cycle;
/// let g = cycle(8);
/// let p = partition(&g, PartitionScheme::RoundRobin, Ratio::new(1, 1), 0);
/// assert_eq!(p.counts(), [4, 4]);
/// ```
pub fn partition(g: &Csr, scheme: PartitionScheme, ratio: Ratio, seed: u64) -> DevicePartition {
    partition_n(g, scheme, &ratio.to_shares(), seed)
}

/// Partition `g` across `shares.num_ranks()` ranks with `scheme`.
pub fn partition_n(
    g: &Csr,
    scheme: PartitionScheme,
    shares: &Shares,
    seed: u64,
) -> DevicePartition {
    assert!(
        shares.num_ranks() <= MAX_RANKS,
        "at most {MAX_RANKS} ranks per fabric"
    );
    let n = g.num_vertices();
    let assign = match scheme {
        PartitionScheme::Continuous => continuous(n, shares),
        PartitionScheme::RoundRobin => round_robin(n, shares),
        PartitionScheme::Hybrid { blocks } => {
            let block_of = partition_kway(g, blocks.max(1), seed);
            hybrid_from_blocks(g, &block_of, blocks.max(1), shares)
        }
    };
    DevicePartition {
        assign,
        shares: shares.clone(),
        scheme,
    }
}

/// Continuous partitioning: rank `i` owns the segment between the rounded
/// cumulative-share boundaries.
fn continuous(n: usize, shares: &Shares) -> Vec<u8> {
    let r = shares.num_ranks();
    let mut bounds = Vec::with_capacity(r);
    let mut cum = 0.0f64;
    for i in 0..r {
        cum += shares.share(i);
        bounds.push(((n as f64) * cum).round() as usize);
    }
    bounds[r - 1] = n; // guard against cumulative rounding drift
    let mut assign = Vec::with_capacity(n);
    let mut rank = 0usize;
    for v in 0..n {
        while v >= bounds[rank] {
            rank += 1;
        }
        assign.push(rank as u8);
    }
    assign
}

/// Per-vertex round-robin dealing: position `v % total` falls into rank
/// `i`'s band of width `part(i)`.
fn round_robin(n: usize, shares: &Shares) -> Vec<u8> {
    let r = shares.num_ranks();
    let period = shares.total() as usize;
    let mut band = Vec::with_capacity(period);
    for i in 0..r {
        for _ in 0..shares.part(i) {
            band.push(i as u8);
        }
    }
    (0..n).map(|v| band[v % period]).collect()
}

/// Deal pre-computed blocks to the ranks. Blocks are dealt in id order to
/// whichever rank is furthest below its share of cumulative workload
/// (weighted round-robin) — this keeps the computation ratio consistent
/// with the requested shares even when block workloads differ. A zero-share
/// rank never receives blocks; ties go to the lowest rank id.
pub fn hybrid_from_blocks(g: &Csr, block_of: &[u32], blocks: usize, shares: &Shares) -> Vec<u8> {
    // Per-block workload = edges sourced in the block (+1 per vertex).
    let mut work = vec![0f64; blocks];
    for v in 0..g.num_vertices() {
        work[block_of[v] as usize] += 1.0 + g.out_degree(v as u32) as f64;
    }
    let r = shares.num_ranks();
    let mut assigned = vec![0f64; r];
    let mut block_dev = vec![0u8; blocks];
    for b in 0..blocks {
        let mut best: Option<(usize, f64)> = None;
        for (d, a) in assigned.iter().enumerate().take(r) {
            if shares.share(d) <= 0.0 {
                continue;
            }
            let load = (a + work[b]) / shares.share(d);
            if best.is_none_or(|(_, l)| load < l) {
                best = Some((d, load));
            }
        }
        let (dev, _) = best.expect("shares have a positive total");
        block_dev[b] = dev as u8;
        assigned[dev] += work[b];
    }
    block_of.iter().map(|&b| block_dev[b as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::PartitionStats;
    use phigraph_graph::generators::rmat::{rmat, RmatConfig};

    fn pokec_like() -> Csr {
        rmat(&RmatConfig {
            scale: 11,
            edge_factor: 8,
            seed: 42,
            ..Default::default()
        })
    }

    #[test]
    fn continuous_splits_by_count() {
        let g = pokec_like();
        let p = partition(&g, PartitionScheme::Continuous, Ratio::new(3, 5), 0);
        let c = p.counts();
        let expect = (g.num_vertices() as f64 * 0.375).round() as usize;
        assert_eq!(c[0], expect);
        // Prefix property.
        assert!(p.assign[..c[0]].iter().all(|&d| d == 0));
        assert!(p.assign[c[0]..].iter().all(|&d| d == 1));
    }

    #[test]
    fn round_robin_interleaves() {
        let g = pokec_like();
        let p = partition(&g, PartitionScheme::RoundRobin, Ratio::new(1, 1), 0);
        for v in 0..16 {
            assert_eq!(p.assign[v], (v % 2) as u8);
        }
    }

    #[test]
    fn continuous_is_imbalanced_on_front_loaded_graphs() {
        // The core Fig. 6 phenomenon: hubs at the front overload the CPU.
        let g = pokec_like();
        let ratio = Ratio::new(1, 1);
        let cont = partition(&g, PartitionScheme::Continuous, ratio, 0);
        let s = PartitionStats::compute(&g, &cont);
        assert!(
            s.edge_balance_error(ratio) > 0.25,
            "continuous should be badly imbalanced, err {}",
            s.edge_balance_error(ratio)
        );
    }

    #[test]
    fn round_robin_and_hybrid_are_balanced() {
        let g = pokec_like();
        let ratio = Ratio::new(3, 5);
        for scheme in [
            PartitionScheme::RoundRobin,
            PartitionScheme::hybrid_default(),
        ] {
            let p = partition(&g, scheme, ratio, 1);
            let s = PartitionStats::compute(&g, &p);
            assert!(
                s.edge_balance_error(ratio) < 0.15,
                "{} balance error {}",
                scheme.name(),
                s.edge_balance_error(ratio)
            );
        }
    }

    #[test]
    fn hybrid_cuts_fewer_cross_edges_than_round_robin() {
        let g = pokec_like();
        let ratio = Ratio::new(1, 1);
        let rr = PartitionStats::compute(&g, &partition(&g, PartitionScheme::RoundRobin, ratio, 0));
        let hy = PartitionStats::compute(
            &g,
            &partition(&g, PartitionScheme::hybrid_default(), ratio, 0),
        );
        assert!(
            hy.cross_edges < rr.cross_edges,
            "hybrid {} vs round-robin {}",
            hy.cross_edges,
            rr.cross_edges
        );
    }

    #[test]
    fn one_sided_ratio_gives_single_device() {
        let g = pokec_like();
        let p = partition(&g, PartitionScheme::hybrid_default(), Ratio::new(0, 1), 0);
        assert!(p.assign.iter().all(|&d| d == 1));
    }

    #[test]
    fn migrate_to_moves_everything_to_the_survivor() {
        let g = pokec_like();
        let p = partition(&g, PartitionScheme::hybrid_default(), Ratio::new(3, 5), 1);
        let m = p.migrate_to(0);
        assert_eq!(m.assign.len(), p.assign.len());
        assert!(m.assign.iter().all(|&d| d == 0));
        assert_eq!(m.shares, Shares::two(1, 0));
        assert_eq!(m.scheme.name(), "hybrid");
        let m1 = p.migrate_to(1);
        assert!(m1.assign.iter().all(|&d| d == 1));
        assert_eq!(m1.shares, Shares::two(0, 1));
    }

    #[test]
    fn owned_lists_partition_the_vertices() {
        let g = pokec_like();
        let p = partition(&g, PartitionScheme::RoundRobin, Ratio::new(2, 3), 0);
        let mut all = p.owned(0);
        all.extend(p.owned(1));
        all.sort_unstable();
        let expect: Vec<u32> = (0..g.num_vertices() as u32).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn two_rank_nway_matches_legacy_ratio_partition() {
        // partition() is the N=2 case of partition_n(): identical assigns
        // for every scheme and a spread of ratios.
        let g = pokec_like();
        for scheme in [
            PartitionScheme::Continuous,
            PartitionScheme::RoundRobin,
            PartitionScheme::hybrid_default(),
        ] {
            for (a, b) in [(1u32, 1u32), (3, 5), (1, 4), (7, 2)] {
                let two = partition(&g, scheme, Ratio::new(a, b), 9);
                let n = partition_n(&g, scheme, &Shares::two(a, b), 9);
                assert_eq!(two.assign, n.assign, "{} {a}:{b}", scheme.name());
            }
        }
    }

    #[test]
    fn nway_schemes_cover_all_ranks_proportionally() {
        let g = pokec_like();
        let shares = Shares::new(vec![2, 1, 1]);
        // Continuous and round-robin target vertex counts.
        for scheme in [PartitionScheme::Continuous, PartitionScheme::RoundRobin] {
            let p = partition_n(&g, scheme, &shares, 3);
            let c = p.counts();
            assert_eq!(c.len(), 3);
            assert_eq!(c.iter().sum::<usize>(), g.num_vertices());
            let n = g.num_vertices() as f64;
            for (r, &cnt) in c.iter().enumerate() {
                let got = cnt as f64 / n;
                assert!(
                    (got - shares.share(r)).abs() < 0.01,
                    "{} rank {r}: got {got}, want {}",
                    scheme.name(),
                    shares.share(r)
                );
            }
        }
        // Hybrid targets edge workload, like the paper's ratio goal.
        let p = partition_n(&g, PartitionScheme::hybrid_default(), &shares, 3);
        let s = PartitionStats::compute(&g, &p);
        assert!(
            s.edge_balance_error_n(&shares) < 0.15,
            "hybrid N-way balance error {}",
            s.edge_balance_error_n(&shares)
        );
    }

    #[test]
    fn round_robin_nway_bands_repeat() {
        let g = pokec_like();
        let p = partition_n(
            &g,
            PartitionScheme::RoundRobin,
            &Shares::new(vec![2, 1, 1]),
            0,
        );
        // Period 4: ranks 0,0,1,2 repeating.
        for v in 0..16 {
            let want = [0u8, 0, 1, 2][v % 4];
            assert_eq!(p.assign[v], want, "v={v}");
        }
    }

    #[test]
    fn zero_share_rank_owns_nothing() {
        let g = pokec_like();
        let shares = Shares::new(vec![1, 0, 1]);
        for scheme in [
            PartitionScheme::Continuous,
            PartitionScheme::RoundRobin,
            PartitionScheme::hybrid_default(),
        ] {
            let p = partition_n(&g, scheme, &shares, 0);
            assert_eq!(p.counts()[1], 0, "{}", scheme.name());
        }
    }

    #[test]
    fn redistribute_moves_only_the_dead_ranks_vertices() {
        let g = pokec_like();
        let p = partition_n(
            &g,
            PartitionScheme::RoundRobin,
            &Shares::new(vec![1, 1, 1, 1]),
            0,
        );
        let q = p.redistribute(&[2], &[0, 1, 3]);
        assert_eq!(q.counts()[2], 0);
        assert_eq!(q.shares.part(2), 0);
        for v in 0..g.num_vertices() {
            if p.assign[v] != 2 {
                assert_eq!(q.assign[v], p.assign[v], "survivor vertex {v} moved");
            } else {
                assert!([0u8, 1, 3].contains(&q.assign[v]));
            }
        }
        // Dead rank's load spreads across all survivors.
        let c = q.counts();
        assert!(c[0] > 0 && c[1] > 0 && c[3] > 0, "{c:?}");
        // Cascading: lose another rank from the re-split fabric.
        let q2 = q.redistribute(&[0], &[1, 3]);
        assert_eq!(q2.counts()[0], 0);
        assert_eq!(
            q2.counts().iter().sum::<usize>(),
            g.num_vertices(),
            "every vertex stays owned"
        );
        // Single survivor degenerates to migrate_to.
        let q3 = q2.redistribute(&[1], &[3]);
        assert!(q3.assign.iter().all(|&d| d == 3));
    }
}
