//! N-way device shares: the generalization of the paper's `a:b` ratio.
//!
//! A [`Shares`] is an ordered list of non-negative integer weights, one per
//! rank. Rank `i` is entitled to `parts[i] / total` of the workload; a rank
//! with part `0` owns nothing (evicted, or deliberately idle). The 2-rank
//! case is exactly [`Ratio`](crate::Ratio), and every `Ratio` operation
//! delegates here so both spellings share one codepath.

/// Per-rank workload weights (`a:b:c:…`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Shares {
    parts: Vec<u32>,
}

impl Shares {
    /// Build from explicit parts. At least one rank, at least one
    /// positive part.
    pub fn new(parts: Vec<u32>) -> Self {
        assert!(!parts.is_empty(), "shares need at least one rank");
        assert!(
            parts.iter().any(|&p| p > 0),
            "shares must have a positive total"
        );
        Shares { parts }
    }

    /// An even split over `n` ranks.
    pub fn even(n: usize) -> Self {
        Shares::new(vec![1; n.max(1)])
    }

    /// The 2-rank form (`Ratio`-compatible).
    pub fn two(a: u32, b: u32) -> Self {
        Shares::new(vec![a, b])
    }

    /// Everything on `rank`, out of `ranks` ranks total.
    pub fn single(ranks: usize, rank: usize) -> Self {
        let mut parts = vec![0; ranks.max(rank + 1)];
        parts[rank] = 1;
        Shares { parts }
    }

    /// Number of ranks (including zero-share ranks).
    pub fn num_ranks(&self) -> usize {
        self.parts.len()
    }

    /// The raw integer part of `rank`.
    pub fn part(&self, rank: usize) -> u32 {
        self.parts[rank]
    }

    /// All raw parts.
    pub fn parts(&self) -> &[u32] {
        &self.parts
    }

    /// Sum of all parts (always positive).
    pub fn total(&self) -> u32 {
        self.parts.iter().sum()
    }

    /// The fractional share of `rank`.
    pub fn share(&self, rank: usize) -> f64 {
        f64::from(self.parts[rank]) / f64::from(self.total())
    }

    /// A copy with `rank`'s part zeroed (eviction). Panics if that would
    /// leave no positive part.
    pub fn evicted(&self, rank: usize) -> Shares {
        let mut parts = self.parts.clone();
        parts[rank] = 0;
        Shares::new(parts)
    }

    /// Ranks with a positive part, ascending.
    pub fn live_ranks(&self) -> Vec<usize> {
        (0..self.parts.len())
            .filter(|&r| self.parts[r] > 0)
            .collect()
    }

    /// Re-derive shares from measured per-rank step times (`times[i]` is
    /// rank `i`'s simulated time for the same superstep): each rank's new
    /// share is proportional to its throughput `share_i / t_i`, normalized
    /// to 100 with every rank kept at ≥ 1 so nobody starves. Degenerate
    /// timings (non-finite or ≤ 0) return the current shares unchanged.
    ///
    /// At two ranks this is bit-for-bit the pre-N `Ratio::rebalanced`:
    /// the first rank gets `round(thr₀/Σthr·100)` clamped to `1..=99` and
    /// the second the remainder.
    pub fn rebalanced(&self, times: &[f64]) -> Shares {
        assert_eq!(times.len(), self.parts.len(), "one time per rank");
        let n = self.parts.len();
        if n < 2 || times.iter().any(|t| !t.is_finite() || *t <= 0.0) {
            return self.clone();
        }
        let thr: Vec<f64> = (0..n).map(|i| self.share(i) / times[i]).collect();
        let total: f64 = thr.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return self.clone();
        }
        let mut parts = vec![0u32; n];
        let mut used = 0u32;
        for i in 0..n - 1 {
            // Leave at least 1 point for every rank still to be assigned.
            let max_allowed = 100 - used - (n - 1 - i) as u32;
            let raw = (thr[i] / total * 100.0).round() as i64;
            let s = raw.clamp(1, i64::from(max_allowed)) as u32;
            parts[i] = s;
            used += s;
        }
        parts[n - 1] = 100 - used;
        Shares { parts }
    }
}

impl std::fmt::Display for Shares {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                f.write_str(":")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Shares {
    type Err = String;

    /// Parse `a:b:c:…` (one or more colon-separated u32 parts).
    fn from_str(s: &str) -> Result<Self, String> {
        let mut parts = Vec::new();
        for piece in s.split(':') {
            parts.push(
                piece
                    .trim()
                    .parse::<u32>()
                    .map_err(|_| format!("bad share {piece:?} in {s:?} (expected a:b:c…)"))?,
            );
        }
        if parts.iter().all(|&p| p == 0) {
            return Err(format!("shares {s:?} must have a positive total"));
        }
        Ok(Shares { parts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::Ratio;

    #[test]
    fn shares_sum_to_one() {
        let s = Shares::new(vec![3, 5, 2]);
        let sum: f64 = (0..3).map(|i| s.share(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(s.total(), 10);
        assert_eq!(s.num_ranks(), 3);
    }

    #[test]
    fn display_round_trips() {
        for s in [
            Shares::two(3, 5),
            Shares::new(vec![1, 2, 3, 4]),
            Shares::single(4, 2),
        ] {
            let text = s.to_string();
            assert_eq!(text.parse::<Shares>().unwrap(), s, "text {text:?}");
        }
        assert!("0:0".parse::<Shares>().is_err());
        assert!("1:x".parse::<Shares>().is_err());
        assert!("".parse::<Shares>().is_err());
    }

    #[test]
    fn two_rank_rebalance_matches_ratio() {
        // The N-way formula must be bit-for-bit the legacy Ratio one.
        for (cpu, mic) in [(1u32, 1u32), (3, 5), (7, 1), (1, 99)] {
            for (t0, t1) in [(1.0, 4.0), (4.0, 1.0), (2.5, 2.5), (1.0, 1e9)] {
                let r = Ratio::new(cpu, mic).rebalanced(t0, t1);
                let s = Shares::two(cpu, mic).rebalanced(&[t0, t1]);
                assert_eq!(s.parts(), [r.cpu, r.mic], "{cpu}:{mic} @ {t0}/{t1}");
            }
        }
    }

    #[test]
    fn rebalance_never_starves_a_rank() {
        let s = Shares::even(4).rebalanced(&[1.0, 1.0, 1.0, 1e9]);
        assert_eq!(s.num_ranks(), 4);
        assert_eq!(s.total(), 100);
        assert!(s.parts().iter().all(|&p| p >= 1), "{s}");
        // The straggler keeps the floor; the others split the rest.
        assert_eq!(s.part(3), 1);
    }

    #[test]
    fn rebalance_tracks_throughput_n3() {
        // Rank 1 runs 4x slower than the others: its share should shrink
        // toward a quarter of theirs.
        let s = Shares::even(3).rebalanced(&[1.0, 4.0, 1.0]);
        assert_eq!(s.total(), 100);
        assert!(s.part(1) < s.part(0) / 2, "{s}");
        assert!(s.part(1) < s.part(2) / 2, "{s}");
    }

    #[test]
    fn rebalance_ignores_degenerate_timings() {
        let s = Shares::new(vec![3, 5, 2]);
        assert_eq!(s.rebalanced(&[1.0, 0.0, 1.0]), s);
        assert_eq!(s.rebalanced(&[1.0, f64::NAN, 1.0]), s);
        assert_eq!(s.rebalanced(&[f64::INFINITY, 1.0, 1.0]), s);
    }

    #[test]
    fn eviction_zeroes_one_rank() {
        let s = Shares::new(vec![3, 5, 2]).evicted(1);
        assert_eq!(s.parts(), [3, 0, 2]);
        assert_eq!(s.live_ranks(), vec![0, 2]);
        assert_eq!(s.share(1), 0.0);
    }

    #[test]
    #[should_panic]
    fn eviction_of_the_last_rank_panics() {
        Shares::single(3, 1).evicted(1);
    }
}
