//! Partitioning ratio `a : b` ("relative amounts of computation assigned to
//! devices specified by the users").

use crate::shares::Shares;
use std::fmt;
use std::str::FromStr;

/// A CPU : MIC workload ratio.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ratio {
    /// CPU share numerator (`a`).
    pub cpu: u32,
    /// MIC share numerator (`b`).
    pub mic: u32,
}

impl Ratio {
    /// Construct; both parts must not be zero simultaneously.
    pub fn new(cpu: u32, mic: u32) -> Self {
        assert!(cpu + mic > 0, "ratio cannot be 0:0");
        Ratio { cpu, mic }
    }

    /// Equal split.
    pub fn even() -> Self {
        Ratio { cpu: 1, mic: 1 }
    }

    /// Fractional share of device `dev` (0 = CPU, 1 = MIC).
    pub fn share(&self, dev: usize) -> f64 {
        let total = (self.cpu + self.mic) as f64;
        match dev {
            0 => self.cpu as f64 / total,
            1 => self.mic as f64 / total,
            _ => panic!("only two devices"),
        }
    }

    /// Sum `a + b`.
    pub fn total(&self) -> u32 {
        self.cpu + self.mic
    }

    /// Derive a rebalanced ratio from observed per-device step times.
    ///
    /// Each device's new share is proportional to its *throughput* under
    /// the current split, `share_d / t_d` — a device that took twice as
    /// long per step at equal shares should get half the work. The result
    /// is normalized to parts summing to 100 and clamped to `1..=99` so a
    /// straggler is never starved to zero (that would be migration, not
    /// rebalancing). Non-positive timings return the current ratio.
    ///
    /// Delegates to the N-way [`Shares::rebalanced`], of which this is the
    /// two-rank case.
    pub fn rebalanced(&self, t_cpu: f64, t_mic: f64) -> Ratio {
        let s = self.to_shares().rebalanced(&[t_cpu, t_mic]);
        Ratio {
            cpu: s.part(0),
            mic: s.part(1),
        }
    }

    /// The equivalent two-rank [`Shares`].
    pub fn to_shares(&self) -> Shares {
        Shares::two(self.cpu, self.mic)
    }
}

impl From<Ratio> for Shares {
    fn from(r: Ratio) -> Shares {
        r.to_shares()
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.cpu, self.mic)
    }
}

impl FromStr for Ratio {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        let (a, b) = s
            .split_once(':')
            .ok_or_else(|| format!("ratio {s:?} missing ':'"))?;
        let cpu: u32 = a
            .trim()
            .parse()
            .map_err(|_| format!("bad CPU part {a:?}"))?;
        let mic: u32 = b
            .trim()
            .parse()
            .map_err(|_| format!("bad MIC part {b:?}"))?;
        if cpu + mic == 0 {
            return Err("ratio cannot be 0:0".into());
        }
        Ok(Ratio { cpu, mic })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let r = Ratio::new(3, 5);
        assert!((r.share(0) + r.share(1) - 1.0).abs() < 1e-12);
        assert!((r.share(0) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn parse_and_display() {
        let r: Ratio = "4:3".parse().unwrap();
        assert_eq!(r, Ratio::new(4, 3));
        assert_eq!(r.to_string(), "4:3");
        assert!("4".parse::<Ratio>().is_err());
        assert!("0:0".parse::<Ratio>().is_err());
        assert!("x:1".parse::<Ratio>().is_err());
    }

    #[test]
    fn one_sided_ratios_allowed() {
        let r = Ratio::new(0, 1);
        assert_eq!(r.share(0), 0.0);
        assert_eq!(r.share(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "0:0")]
    fn zero_ratio_panics() {
        Ratio::new(0, 0);
    }

    #[test]
    fn rebalance_shifts_work_off_the_straggler() {
        // Equal split, MIC suddenly 4x slower: it should get ~1/5 of work.
        let r = Ratio::even().rebalanced(1.0, 4.0);
        assert_eq!(r.total(), 100);
        assert!(
            r.share(0) > 0.75 && r.share(0) < 0.85,
            "cpu share {}",
            r.share(0)
        );
        // Symmetric case.
        let r = Ratio::even().rebalanced(4.0, 1.0);
        assert!(r.share(1) > 0.75 && r.share(1) < 0.85);
    }

    #[test]
    fn rebalance_equal_times_keeps_even_split() {
        let r = Ratio::new(3, 5).rebalanced(1.0, 1.0);
        // Throughput proportional to current shares: split unchanged.
        assert!((r.share(0) - 0.375).abs() < 0.01, "share {}", r.share(0));
    }

    #[test]
    fn rebalance_never_starves_a_device() {
        let r = Ratio::even().rebalanced(1.0, 1e9);
        assert_eq!(r.cpu, 99);
        assert_eq!(r.mic, 1);
    }

    #[test]
    fn rebalance_ignores_degenerate_timings() {
        let r = Ratio::new(3, 5);
        assert_eq!(r.rebalanced(0.0, 1.0), r);
        assert_eq!(r.rebalanced(1.0, f64::NAN), r);
    }
}
