#![warn(missing_docs)]
// Lane kernels use explicit index loops over fixed widths on purpose: the
// bounds are compile-time constants and LLVM vectorizes them directly;
// iterator chains obscure that contract.
#![allow(clippy::needless_range_loop)]
//! Portable SIMD vector types and lane reductions for the phigraph framework.
//!
//! The paper's runtime exposes `vint`, `vfloat` and `vdouble` "vtypes": aligned
//! groups of scalar elements with overloaded arithmetic, built on IMCI
//! intrinsics for the Xeon Phi and SSE4.2 for the CPU. This crate provides the
//! Rust equivalent:
//!
//! * [`VLane<T, W>`](VLane) — a `W`-wide register value with element-wise
//!   arithmetic and min/max, generic over the message scalar type. Fixed-width
//!   inner loops compile to vector instructions on the host.
//! * [`MsgValue`] — the trait bound for message scalars (the paper's "basic
//!   data types supported by SSE": `int`, `float`, `double`, …).
//! * [`ReduceOp`] — associative + commutative reductions (`Sum`, `Min`, `Max`)
//!   with both scalar and lane paths, plus row-reduction kernels used by the
//!   condensed static buffer.
//! * [`AVec`] — a 64-byte aligned buffer, the backing store for message
//!   buffers so every row starts on a vector-register boundary.
//! * [`SimdIsa`] — per-device lane-width configuration (IMCI = 64 bytes,
//!   SSE4.2 = 16 bytes), which drives both buffer layout and the cost model.

pub mod aligned;
pub mod masked;
pub mod ops;
pub mod scalar;
pub mod vlane;
pub mod width;

pub use aligned::AVec;
pub use masked::LaneMask;
pub use ops::{
    hreduce, reduce_column_scalar, reduce_rows, reduce_rows_scalar, reduce_rows_strided, Max, Min,
    NoReduce, ReduceOp, Sum,
};
pub use scalar::MsgValue;
pub use vlane::VLane;
pub use width::SimdIsa;

/// Convenience aliases mirroring the paper's vtypes at the MIC's IMCI width.
pub type VInt16 = VLane<i32, 16>;
/// 16-wide single-precision lane (IMCI width for `float`).
pub type VFloat16 = VLane<f32, 16>;
/// 8-wide double-precision lane (IMCI width for `double`).
pub type VDouble8 = VLane<f64, 8>;
/// 4-wide integer lane (SSE4.2 width for `int`).
pub type VInt4 = VLane<i32, 4>;
/// 4-wide single-precision lane (SSE4.2 width for `float`).
pub type VFloat4 = VLane<f32, 4>;
/// 2-wide double-precision lane (SSE4.2 width for `double`).
pub type VDouble2 = VLane<f64, 2>;
