//! 64-byte aligned buffers.
//!
//! The condensed static buffer must keep every vector-array row on a vector
//! register boundary ("we should wrap `w/msg_size` messages together in a way
//! that they are aligned with a multiple of `w` bytes"). [`AVec`] is a
//! fixed-capacity heap buffer whose base address is 64-byte aligned — wide
//! enough for IMCI's 512-bit registers, and therefore for every narrower ISA.

use crate::scalar::MsgValue;
use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment guaranteed by [`AVec`], in bytes (one IMCI register).
pub const BUFFER_ALIGN: usize = 64;

/// A heap buffer of `T` with a 64-byte aligned base address.
///
/// Unlike `Vec`, the length is fixed at construction (the paper's buffer is
/// "condensed *static*": allocated once before any iteration runs) and every
/// element is initialized to a fill value. The buffer dereferences to a slice
/// for ordinary access.
pub struct AVec<T> {
    ptr: NonNull<T>,
    len: usize,
}

// SAFETY: AVec owns its allocation exclusively; `T: Send/Sync` propagates the
// usual container guarantees.
unsafe impl<T: Send> Send for AVec<T> {}
unsafe impl<T: Sync> Sync for AVec<T> {}

impl<T: MsgValue> AVec<T> {
    /// Allocate `len` elements, all set to `fill`.
    pub fn new_filled(len: usize, fill: T) -> Self {
        if len == 0 {
            return AVec {
                ptr: NonNull::dangling(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0, T is a numeric scalar).
        let raw = unsafe { alloc(layout) } as *mut T;
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout);
        };
        for i in 0..len {
            // SAFETY: i < len elements fit in the allocation.
            unsafe { ptr.as_ptr().add(i).write(fill) };
        }
        AVec { ptr, len }
    }

    /// Allocate `len` zeroed elements.
    pub fn zeroed(len: usize) -> Self {
        Self::new_filled(len, T::ZERO)
    }

    /// Number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reset every element to `fill`.
    pub fn fill_with(&mut self, fill: T) {
        self.as_mut_slice().fill(fill);
    }

    /// The buffer as a slice.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr is valid for len initialized elements (or dangling with
        // len == 0, which is a valid empty slice).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// The buffer as a mutable slice.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as above, plus &mut self guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Raw base pointer (used by the concurrent insertion paths, which write
    /// to disjoint slots proven unique by per-column atomic cursors).
    #[inline(always)]
    pub fn base_ptr(&self) -> *mut T {
        self.ptr.as_ptr()
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * std::mem::size_of::<T>(), BUFFER_ALIGN)
            .expect("AVec layout overflow")
    }
}

impl<T> Drop for AVec<T> {
    fn drop(&mut self) {
        if self.len != 0 {
            let layout = Layout::from_size_align(self.len * std::mem::size_of::<T>(), BUFFER_ALIGN)
                .expect("AVec layout overflow");
            // SAFETY: allocated with the identical layout in new_filled; T is
            // Copy so no element drops are needed.
            unsafe { dealloc(self.ptr.as_ptr() as *mut u8, layout) };
        }
    }
}

impl<T: MsgValue> Deref for AVec<T> {
    type Target = [T];
    #[inline(always)]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: MsgValue> DerefMut for AVec<T> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: MsgValue> Clone for AVec<T> {
    fn clone(&self) -> Self {
        let mut out = Self::zeroed(self.len);
        out.as_mut_slice().copy_from_slice(self.as_slice());
        out
    }
}

impl<T: MsgValue> std::fmt::Debug for AVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AVec")
            .field("len", &self.len)
            .field("align", &BUFFER_ALIGN)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_is_64_byte_aligned() {
        for len in [1usize, 3, 16, 1024, 4097] {
            let v = AVec::<f32>::zeroed(len);
            assert_eq!(v.base_ptr() as usize % BUFFER_ALIGN, 0, "len={len}");
        }
        let d = AVec::<f64>::new_filled(33, 1.5);
        assert_eq!(d.base_ptr() as usize % BUFFER_ALIGN, 0);
    }

    #[test]
    fn filled_and_indexable() {
        let v = AVec::<i32>::new_filled(100, 7);
        assert_eq!(v.len(), 100);
        assert!(v.iter().all(|&x| x == 7));
    }

    #[test]
    fn empty_buffer_is_fine() {
        let v = AVec::<f32>::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[f32]);
    }

    #[test]
    fn mutation_through_slice() {
        let mut v = AVec::<f32>::zeroed(8);
        v[3] = 9.5;
        assert_eq!(v[3], 9.5);
        v.fill_with(2.0);
        assert!(v.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn clone_copies_contents() {
        let mut v = AVec::<i64>::zeroed(5);
        v[0] = -1;
        v[4] = 42;
        let c = v.clone();
        assert_eq!(c.as_slice(), v.as_slice());
        assert_ne!(c.base_ptr(), v.base_ptr());
    }
}
