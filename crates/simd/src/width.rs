//! Per-device SIMD lane-width configuration.
//!
//! "The same APIs are built on top of both KNC (for MIC) and SSE4.2 (for
//! CPU), wrapping corresponding architecture-specific intrinsics." The ISA
//! choice decides `w` in the paper's layout formulas (`w / msg_size` messages
//! per vector row), so it is a first-class configuration object here.

use crate::scalar::MsgValue;

/// A SIMD instruction set, reduced to the property that matters for buffer
/// layout and the cost model: its vector register width in bytes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct SimdIsa {
    /// ISA name for reports.
    pub name: &'static str,
    /// Vector register width in bytes (`w` in the paper).
    pub vector_bytes: usize,
}

impl SimdIsa {
    /// Intel Initial Many Core Instructions — the Xeon Phi's 512-bit vectors.
    pub const IMCI: SimdIsa = SimdIsa {
        name: "IMCI",
        vector_bytes: 64,
    };
    /// SSE4.2 — the host CPU path used by the paper (128-bit vectors).
    pub const SSE42: SimdIsa = SimdIsa {
        name: "SSE4.2",
        vector_bytes: 16,
    };
    /// AVX2 (256-bit) — not used by the paper's testbed but useful for
    /// what-if ablations on modern hosts.
    pub const AVX2: SimdIsa = SimdIsa {
        name: "AVX2",
        vector_bytes: 32,
    };
    /// Scalar pseudo-ISA: one message per "row". Used to express fully
    /// unvectorized configurations uniformly.
    pub const SCALAR: SimdIsa = SimdIsa {
        name: "scalar",
        vector_bytes: 0,
    };

    /// Number of lanes for message scalar `T` (`w / msg_size`), minimum 1.
    #[inline]
    pub fn lanes_for<T: MsgValue>(&self) -> usize {
        if self.vector_bytes == 0 {
            1
        } else {
            (self.vector_bytes / T::SIZE).max(1)
        }
    }

    /// Number of lanes for a raw message size in bytes.
    #[inline]
    pub fn lanes_for_size(&self, msg_size: usize) -> usize {
        if self.vector_bytes == 0 {
            1
        } else {
            (self.vector_bytes / msg_size.max(1)).max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imci_matches_paper_widths() {
        // "simultaneously 16 messages participate in the overloaded min()"
        assert_eq!(SimdIsa::IMCI.lanes_for::<f32>(), 16);
        assert_eq!(SimdIsa::IMCI.lanes_for::<i32>(), 16);
        // "process 16 (8) identical floating point (double precision) ops"
        assert_eq!(SimdIsa::IMCI.lanes_for::<f64>(), 8);
    }

    #[test]
    fn sse_matches_paper_widths() {
        // "For CPU, 4 messages are processed simultaneously."
        assert_eq!(SimdIsa::SSE42.lanes_for::<f32>(), 4);
        assert_eq!(SimdIsa::SSE42.lanes_for::<f64>(), 2);
    }

    #[test]
    fn scalar_isa_is_one_lane() {
        assert_eq!(SimdIsa::SCALAR.lanes_for::<f32>(), 1);
        assert_eq!(SimdIsa::SCALAR.lanes_for::<f64>(), 1);
    }

    #[test]
    fn oversized_messages_get_one_lane() {
        // A 128-byte message cannot fit a 64-byte register: fall back to 1.
        assert_eq!(SimdIsa::IMCI.lanes_for_size(128), 1);
        assert_eq!(SimdIsa::SSE42.lanes_for_size(0), 16);
    }
}
