//! Masked (write-mask) lane operations — the IMCI idiom.
//!
//! §II: IMCI has "a hardware supported mask data type, and write-mask
//! operations that allow operating on some specific elements within the same
//! SIMD register". This module provides the portable equivalent: a bitmask
//! over lanes plus masked load/store/reduce kernels. The condensed buffer's
//! bubble handling can be expressed either by identity-filling (the default
//! engine path) or by masked reduction ([`reduce_rows_masked`]) — the two
//! are equivalence-tested against each other.

use crate::ops::ReduceOp;
use crate::scalar::MsgValue;

/// A per-lane validity mask (bit `i` = lane `i` active). Supports up to 64
/// lanes, covering every width the framework uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneMask(pub u64);

impl LaneMask {
    /// All lanes inactive.
    pub const NONE: LaneMask = LaneMask(0);

    /// The first `n` lanes active.
    #[inline]
    pub fn first(n: usize) -> LaneMask {
        debug_assert!(n <= 64);
        if n >= 64 {
            LaneMask(u64::MAX)
        } else {
            LaneMask((1u64 << n) - 1)
        }
    }

    /// Build from a per-lane predicate over `lanes` lanes.
    #[inline]
    pub fn from_fn(lanes: usize, f: impl Fn(usize) -> bool) -> LaneMask {
        let mut m = 0u64;
        for i in 0..lanes.min(64) {
            if f(i) {
                m |= 1 << i;
            }
        }
        LaneMask(m)
    }

    /// Whether lane `i` is active.
    #[inline(always)]
    pub fn get(&self, i: usize) -> bool {
        (self.0 >> i) & 1 == 1
    }

    /// Set lane `i`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, active: bool) {
        if active {
            self.0 |= 1 << i;
        } else {
            self.0 &= !(1 << i);
        }
    }

    /// Number of active lanes.
    #[inline]
    pub fn count(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Lane-wise AND.
    #[inline]
    pub fn and(&self, other: LaneMask) -> LaneMask {
        LaneMask(self.0 & other.0)
    }

    /// Lane-wise OR.
    #[inline]
    pub fn or(&self, other: LaneMask) -> LaneMask {
        LaneMask(self.0 | other.0)
    }
}

/// Masked blend: where `mask` is set, copy `src` into `dst` (the write-mask
/// store, `_mm512_mask_mov_*`).
#[inline]
pub fn masked_store<T: MsgValue>(dst: &mut [T], src: &[T], mask: LaneMask) {
    for i in 0..dst.len().min(src.len()).min(64) {
        if mask.get(i) {
            dst[i] = src[i];
        }
    }
}

/// Masked lane combine into `acc`: inactive lanes of `row` are treated as
/// the operator identity (`_mm512_mask_add_*` etc. with the accumulator as
/// fallback).
#[inline]
pub fn masked_accumulate<T: MsgValue, Op: ReduceOp<T>>(acc: &mut [T], row: &[T], mask: LaneMask) {
    let lanes = acc.len().min(row.len()).min(64);
    for i in 0..lanes {
        if mask.get(i) {
            acc[i] = Op::apply(acc[i], row[i]);
        }
    }
}

/// Reduce rows `0..rows` of a strided block into `out`, with a per-row
/// validity mask (`row_mask(r)` — lane `c` of row `r` participates iff
/// set). Equivalent to identity-filling bubbles and calling the unmasked
/// kernel; exists as the paper's write-mask alternative and as an oracle
/// for the engine path.
#[inline]
pub fn reduce_rows_masked<T: MsgValue, Op: ReduceOp<T>>(
    buf: &[T],
    rows: usize,
    lanes: usize,
    stride: usize,
    row_mask: impl Fn(usize) -> LaneMask,
    out: &mut [T],
) {
    debug_assert!(lanes <= 64 && out.len() >= lanes);
    for c in 0..lanes {
        out[c] = Op::identity();
    }
    for r in 0..rows {
        let mask = row_mask(r);
        if mask == LaneMask::NONE {
            continue;
        }
        masked_accumulate::<T, Op>(
            &mut out[..lanes],
            &buf[r * stride..r * stride + lanes],
            mask,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{reduce_rows_strided, Min, Sum};

    #[test]
    fn mask_bit_operations() {
        let mut m = LaneMask::first(4);
        assert_eq!(m.count(), 4);
        assert!(m.get(3) && !m.get(4));
        m.set(10, true);
        m.set(0, false);
        assert_eq!(m.count(), 4);
        assert!(m.get(10) && !m.get(0));
        assert_eq!(LaneMask::first(64).count(), 64);
        assert_eq!(
            LaneMask::first(2).and(LaneMask::first(1)),
            LaneMask::first(1)
        );
        assert_eq!(LaneMask::first(2).or(LaneMask(0b100)), LaneMask(0b111));
    }

    #[test]
    fn from_fn_matches_predicate() {
        let m = LaneMask::from_fn(8, |i| i % 2 == 0);
        assert_eq!(m.0, 0b0101_0101);
    }

    #[test]
    fn masked_store_blends() {
        let mut dst = [0i32; 4];
        masked_store(&mut dst, &[1, 2, 3, 4], LaneMask(0b1010));
        assert_eq!(dst, [0, 2, 0, 4]);
    }

    #[test]
    fn masked_reduce_equals_identity_filled_reduce() {
        // A 4-lane, 5-row block where columns have ragged counts
        // [5, 3, 0, 1]: the masked reduction must equal the engine's
        // fill-bubbles-then-reduce result.
        let lanes = 4;
        let stride = 4;
        let rows = 5;
        let counts = [5u32, 3, 0, 1];
        let buf: Vec<f32> = (0..rows * stride).map(|i| (i as f32) * 0.5 + 1.0).collect();

        let mut masked_out = vec![0f32; lanes];
        reduce_rows_masked::<f32, Sum>(
            &buf,
            rows,
            lanes,
            stride,
            |r| LaneMask::from_fn(lanes, |c| (r as u32) < counts[c]),
            &mut masked_out,
        );

        // Oracle: fill bubbles with identity, use the unmasked kernel.
        let mut filled = buf.clone();
        for c in 0..lanes {
            for r in counts[c] as usize..rows {
                filled[r * stride + c] = 0.0;
            }
        }
        reduce_rows_strided::<f32, Sum>(&mut filled, rows, lanes, stride);
        for c in 0..lanes {
            if counts[c] > 0 {
                assert!((masked_out[c] - filled[c]).abs() < 1e-5, "lane {c}");
            } else {
                assert_eq!(masked_out[c], 0.0, "empty lane yields identity");
            }
        }
    }

    #[test]
    fn masked_min_ignores_inactive_lanes() {
        let buf = vec![
            9.0f32, 1.0, 5.0, 7.0, // row 0
            2.0, 8.0, 3.0, 0.5, // row 1
        ];
        let mut out = vec![0f32; 4];
        // Lane 3 only valid in row 0; lane 1 only in row 1.
        reduce_rows_masked::<f32, Min>(
            &buf,
            2,
            4,
            4,
            |r| {
                if r == 0 {
                    LaneMask(0b1101)
                } else {
                    LaneMask(0b0111)
                }
            },
            &mut out,
        );
        assert_eq!(out, vec![2.0, 8.0, 3.0, 7.0]);
    }
}
