//! Associative/commutative reduction operators and row-reduction kernels.
//!
//! The condensed static buffer stores messages as rows of `lanes` scalars;
//! message processing reduces rows `1..r` of each vector array into row 0.
//! [`reduce_rows`] is the vectorized path (the paper's `process_messages`
//! called on vtypes) and [`reduce_rows_scalar`] is the deliberately scalar
//! rewrite used by the Fig. 5(f) vectorization ablation.

use crate::scalar::MsgValue;
use crate::vlane::VLane;

/// An associative and commutative reduction over message values.
///
/// The paper: "limited to associative and commutative reductions, such as
/// sum, max, or min. However, such operations are very common in most graph
/// applications."
pub trait ReduceOp<T: MsgValue>: Send + Sync + 'static {
    /// Human-readable operator name (for reports).
    const NAME: &'static str;

    /// The operator identity: filling a bubble slot with this value leaves
    /// the reduction result unchanged.
    fn identity() -> T;

    /// Combine two scalars.
    fn apply(a: T, b: T) -> T;

    /// Combine two lanes element-wise. The default forwards to the scalar
    /// operator per lane, which LLVM vectorizes for the fixed widths in use.
    #[inline(always)]
    fn apply_lane<const W: usize>(a: VLane<T, W>, b: VLane<T, W>) -> VLane<T, W> {
        a.zip(b, Self::apply)
    }
}

/// Sum reduction (PageRank's message combine; TopoSort's in-degree delta).
pub struct Sum;
/// Minimum reduction (SSSP distance relaxation; BFS level selection).
pub struct Min;
/// Maximum reduction (e.g. widest-path / label propagation variants).
pub struct Max;
/// Placeholder for programs whose messages are not reduced (delivered
/// first-come, e.g. the paper's BFS formulation). `apply` keeps the first
/// value, which is still associative.
pub struct NoReduce;

impl<T: MsgValue> ReduceOp<T> for Sum {
    const NAME: &'static str = "sum";
    #[inline(always)]
    fn identity() -> T {
        T::ZERO
    }
    #[inline(always)]
    fn apply(a: T, b: T) -> T {
        a.vadd(b)
    }
}

impl<T: MsgValue> ReduceOp<T> for Min {
    const NAME: &'static str = "min";
    #[inline(always)]
    fn identity() -> T {
        T::MAX_ID
    }
    #[inline(always)]
    fn apply(a: T, b: T) -> T {
        a.vmin(b)
    }
}

impl<T: MsgValue> ReduceOp<T> for Max {
    const NAME: &'static str = "max";
    #[inline(always)]
    fn identity() -> T {
        T::MIN_ID
    }
    #[inline(always)]
    fn apply(a: T, b: T) -> T {
        a.vmax(b)
    }
}

impl<T: MsgValue> ReduceOp<T> for NoReduce {
    const NAME: &'static str = "first";
    #[inline(always)]
    fn identity() -> T {
        T::ZERO
    }
    #[inline(always)]
    fn apply(a: T, _b: T) -> T {
        a
    }
}

/// Reduce rows `1..rows` of a row-major `rows × lanes` block into row 0,
/// lane-parallel. `buf.len()` must be at least `rows * lanes`.
///
/// `lanes` is runtime (it depends on the device ISA and the message size);
/// the hot loop dispatches to a const-width kernel for the widths the
/// framework uses so the compiler emits genuine vector code.
///
/// # Examples
///
/// ```
/// use phigraph_simd::{reduce_rows, Sum};
/// // Two rows of four lanes; the column sums land in row 0.
/// let mut buf = vec![1.0f32, 2.0, 3.0, 4.0,
///                    10.0, 20.0, 30.0, 40.0];
/// reduce_rows::<f32, Sum>(&mut buf, 2, 4);
/// assert_eq!(&buf[..4], &[11.0, 22.0, 33.0, 44.0]);
/// ```
/// # Examples
///
/// ```
/// use phigraph_simd::{reduce_rows, Sum};
/// // Two rows of four lanes; the column sums land in row 0.
/// let mut buf = vec![1.0f32, 2.0, 3.0, 4.0,
///                    10.0, 20.0, 30.0, 40.0];
/// reduce_rows::<f32, Sum>(&mut buf, 2, 4);
/// assert_eq!(&buf[..4], &[11.0, 22.0, 33.0, 44.0]);
/// ```
#[inline]
pub fn reduce_rows<T: MsgValue, Op: ReduceOp<T>>(buf: &mut [T], rows: usize, lanes: usize) {
    debug_assert!(buf.len() >= rows * lanes);
    if rows <= 1 {
        return;
    }
    match lanes {
        2 => reduce_rows_const::<T, Op, 2>(buf, rows),
        4 => reduce_rows_const::<T, Op, 4>(buf, rows),
        8 => reduce_rows_const::<T, Op, 8>(buf, rows),
        16 => reduce_rows_const::<T, Op, 16>(buf, rows),
        _ => reduce_rows_dyn::<T, Op>(buf, rows, lanes),
    }
}

#[inline]
fn reduce_rows_const<T: MsgValue, Op: ReduceOp<T>, const W: usize>(buf: &mut [T], rows: usize) {
    let mut acc = VLane::<T, W>::load(buf);
    for r in 1..rows {
        let row = VLane::<T, W>::load(&buf[r * W..]);
        acc = Op::apply_lane(acc, row);
    }
    acc.store(buf);
}

#[inline]
fn reduce_rows_dyn<T: MsgValue, Op: ReduceOp<T>>(buf: &mut [T], rows: usize, lanes: usize) {
    let (head, tail) = buf.split_at_mut(lanes);
    for r in 1..rows {
        let row = &tail[(r - 1) * lanes..r * lanes];
        for c in 0..lanes {
            head[c] = Op::apply(head[c], row[c]);
        }
    }
}

/// Scalar (deliberately unvectorizable) variant of [`reduce_rows`]: walks
/// column-by-column with a data-dependent accumulator chain, matching the
/// paper's "re-wrote the message processing sub-step in a scalar way".
#[inline]
pub fn reduce_rows_scalar<T: MsgValue, Op: ReduceOp<T>>(buf: &mut [T], rows: usize, lanes: usize) {
    debug_assert!(buf.len() >= rows * lanes);
    if rows <= 1 {
        return;
    }
    for c in 0..lanes {
        let mut acc = buf[c];
        for r in 1..rows {
            acc = Op::apply(acc, buf[r * lanes + c]);
        }
        buf[c] = acc;
    }
}

/// Horizontally reduce one row of `lanes` scalars to a single value.
#[inline]
pub fn hreduce<T: MsgValue, Op: ReduceOp<T>>(row: &[T]) -> T {
    let mut acc = Op::identity();
    for &v in row {
        acc = Op::apply(acc, v);
    }
    acc
}

/// Strided variant of [`reduce_rows`]: rows live `stride` scalars apart
/// (the condensed static buffer stores a vertex group's `k` vector arrays
/// row-major with stride `k × lanes`, so one vector array is a strided view).
/// Reduces rows `1..rows` into row 0; each row is `lanes` wide.
#[inline]
pub fn reduce_rows_strided<T: MsgValue, Op: ReduceOp<T>>(
    buf: &mut [T],
    rows: usize,
    lanes: usize,
    stride: usize,
) {
    debug_assert!(stride >= lanes);
    if rows <= 1 {
        return;
    }
    debug_assert!(buf.len() >= (rows - 1) * stride + lanes);
    match lanes {
        2 => reduce_rows_strided_const::<T, Op, 2>(buf, rows, stride),
        4 => reduce_rows_strided_const::<T, Op, 4>(buf, rows, stride),
        8 => reduce_rows_strided_const::<T, Op, 8>(buf, rows, stride),
        16 => reduce_rows_strided_const::<T, Op, 16>(buf, rows, stride),
        _ => {
            let (head, tail) = buf.split_at_mut(stride.min(buf.len()));
            for r in 1..rows {
                let off = (r - 1) * stride;
                for c in 0..lanes {
                    head[c] = Op::apply(head[c], tail[off + c]);
                }
            }
        }
    }
}

#[inline]
fn reduce_rows_strided_const<T: MsgValue, Op: ReduceOp<T>, const W: usize>(
    buf: &mut [T],
    rows: usize,
    stride: usize,
) {
    let mut acc = VLane::<T, W>::load(buf);
    for r in 1..rows {
        let row = VLane::<T, W>::load(&buf[r * stride..]);
        acc = Op::apply_lane(acc, row);
    }
    acc.store(buf);
}

/// Strided scalar column reduction: reduce `rows` values of column `col`
/// (one value per row, rows `stride` apart) to a single scalar. The
/// unvectorized path used when SIMD processing is disabled.
#[inline]
pub fn reduce_column_scalar<T: MsgValue, Op: ReduceOp<T>>(
    buf: &[T],
    rows: usize,
    col: usize,
    stride: usize,
) -> T {
    let mut acc = Op::identity();
    for r in 0..rows {
        acc = Op::apply(acc, buf[r * stride + col]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(rows: usize, lanes: usize) -> Vec<f32> {
        (0..rows * lanes)
            .map(|i| (i % 23) as f32 * 0.5 + 1.0)
            .collect()
    }

    #[test]
    fn identities_are_neutral() {
        assert_eq!(
            <Sum as ReduceOp<f32>>::apply(<Sum as ReduceOp<f32>>::identity(), 4.0),
            4.0
        );
        assert_eq!(
            <Min as ReduceOp<i32>>::apply(<Min as ReduceOp<i32>>::identity(), -9),
            -9
        );
        assert_eq!(
            <Max as ReduceOp<i32>>::apply(<Max as ReduceOp<i32>>::identity(), -9),
            -9
        );
    }

    #[test]
    fn vector_matches_scalar_reduction_all_widths() {
        for &lanes in &[2usize, 4, 8, 16, 5] {
            for &rows in &[1usize, 2, 3, 7, 32] {
                let src = block(rows, lanes);
                let mut a = src.clone();
                let mut b = src.clone();
                reduce_rows::<f32, Sum>(&mut a, rows, lanes);
                reduce_rows_scalar::<f32, Sum>(&mut b, rows, lanes);
                assert_eq!(&a[..lanes], &b[..lanes], "lanes={lanes} rows={rows}");
            }
        }
    }

    #[test]
    fn min_reduction_picks_column_minimum() {
        let lanes = 4;
        let mut buf = vec![
            5.0f32, 1.0, 9.0, 2.0, // row 0
            3.0, 4.0, 8.0, 0.5, // row 1
            6.0, 0.2, 7.0, 2.5, // row 2
        ];
        reduce_rows::<f32, Min>(&mut buf, 3, lanes);
        assert_eq!(&buf[..4], &[3.0, 0.2, 7.0, 0.5]);
    }

    #[test]
    fn single_row_is_noop() {
        let mut buf = vec![1.0f32, 2.0, 3.0, 4.0];
        let orig = buf.clone();
        reduce_rows::<f32, Sum>(&mut buf, 1, 4);
        assert_eq!(buf, orig);
    }

    #[test]
    fn noreduce_keeps_first_row() {
        let mut buf = vec![10i32, 20, 1, 2, 3, 4];
        reduce_rows::<i32, NoReduce>(&mut buf, 3, 2);
        assert_eq!(&buf[..2], &[10, 20]);
    }

    #[test]
    fn hreduce_folds_row() {
        assert_eq!(hreduce::<i32, Sum>(&[1, 2, 3, 4]), 10);
        assert_eq!(hreduce::<f32, Min>(&[4.0, 1.5, 2.0]), 1.5);
        assert_eq!(hreduce::<i32, Max>(&[]), i32::MIN);
    }

    #[test]
    fn strided_matches_contiguous_when_stride_equals_lanes() {
        for &lanes in &[2usize, 4, 8, 16, 3] {
            let rows = 9;
            let src = block(rows, lanes);
            let mut a = src.clone();
            let mut b = src.clone();
            reduce_rows::<f32, Min>(&mut a, rows, lanes);
            reduce_rows_strided::<f32, Min>(&mut b, rows, lanes, lanes);
            assert_eq!(&a[..lanes], &b[..lanes], "lanes={lanes}");
        }
    }

    #[test]
    fn strided_reduction_skips_gap_columns() {
        // 3 rows, stride 8, lanes 4: the last 4 scalars of each row are a
        // different vector array and must stay untouched.
        let stride = 8;
        let mut buf: Vec<f32> = (0..3 * stride).map(|i| i as f32).collect();
        let orig = buf.clone();
        reduce_rows_strided::<f32, Sum>(&mut buf, 3, 4, stride);
        for c in 0..4 {
            assert_eq!(buf[c], orig[c] + orig[stride + c] + orig[2 * stride + c]);
        }
        // Untouched tail of row 0 and all later rows.
        assert_eq!(&buf[4..8], &orig[4..8]);
        assert_eq!(&buf[8..], &orig[8..]);
    }

    #[test]
    fn column_scalar_reduction() {
        let stride = 6;
        let buf: Vec<i32> = (0..4 * stride as i32).collect();
        let r = reduce_column_scalar::<i32, Sum>(&buf, 4, 2, stride);
        assert_eq!(r, 2 + 8 + 14 + 20);
        let m = reduce_column_scalar::<i32, Min>(&buf, 4, 5, stride);
        assert_eq!(m, 5);
    }

    #[test]
    fn sum_reduction_16_wide() {
        let lanes = 16;
        let rows = 10;
        let mut buf = vec![1.0f32; rows * lanes];
        reduce_rows::<f32, Sum>(&mut buf, rows, lanes);
        assert!(buf[..lanes].iter().all(|&x| x == rows as f32));
    }
}
