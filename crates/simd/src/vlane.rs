//! `VLane<T, W>` — the register-value view of the paper's vtypes.
//!
//! A `VLane` is a `W`-element group of scalars with element-wise overloaded
//! operators, so user-defined `process_messages` functions read like the
//! paper's Listing 1: load a row, `min`/`+` it against an accumulator, store
//! it back. Memory stays in flat 64-byte-aligned buffers ([`crate::AVec`]);
//! `VLane` values are loaded and stored by copy, which LLVM lowers to vector
//! loads/stores for the fixed widths used by the framework (2, 4, 8, 16).

use crate::scalar::MsgValue;
use std::ops::{Add, Div, Index, IndexMut, Mul, Sub};

/// A `W`-wide vector register value over message scalar `T`.
///
/// # Examples
///
/// Element-wise arithmetic reads like the paper's vtype code:
///
/// ```
/// use phigraph_simd::VLane;
/// let a = VLane::<f32, 4>::from([1.0, 2.0, 3.0, 4.0]);
/// let b = VLane::<f32, 4>::splat(10.0);
/// assert_eq!((a + b).as_slice(), &[11.0, 12.0, 13.0, 14.0]);
/// assert_eq!(a.min(b).as_slice(), a.as_slice());
/// assert_eq!((a * 2.0).hfold(|x, y| x + y), 20.0);
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct VLane<T, const W: usize>(pub [T; W]);

impl<T: MsgValue, const W: usize> Default for VLane<T, W> {
    #[inline]
    fn default() -> Self {
        Self::splat(T::ZERO)
    }
}

impl<T: MsgValue, const W: usize> VLane<T, W> {
    /// Number of lanes.
    pub const WIDTH: usize = W;

    /// Broadcast a scalar to every lane.
    #[inline(always)]
    pub fn splat(v: T) -> Self {
        VLane([v; W])
    }

    /// Load a lane from the first `W` elements of `src`.
    ///
    /// # Panics
    /// Panics if `src.len() < W`.
    #[inline(always)]
    pub fn load(src: &[T]) -> Self {
        let mut out = [T::ZERO; W];
        out.copy_from_slice(&src[..W]);
        VLane(out)
    }

    /// Store the lane into the first `W` elements of `dst`.
    ///
    /// # Panics
    /// Panics if `dst.len() < W`.
    #[inline(always)]
    pub fn store(self, dst: &mut [T]) {
        dst[..W].copy_from_slice(&self.0);
    }

    /// Element-wise minimum (wraps `_mm512_min_*` / `_mm_min_*` in the
    /// paper's implementation).
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        self.zip(rhs, T::vmin)
    }

    /// Element-wise maximum.
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        self.zip(rhs, T::vmax)
    }

    /// Apply `f` lane-wise against `rhs`.
    #[inline(always)]
    pub fn zip(self, rhs: Self, f: impl Fn(T, T) -> T) -> Self {
        let mut out = [T::ZERO; W];
        for i in 0..W {
            out[i] = f(self.0[i], rhs.0[i]);
        }
        VLane(out)
    }

    /// Apply `f` to each lane.
    #[inline(always)]
    pub fn map(self, f: impl Fn(T) -> T) -> Self {
        let mut out = [T::ZERO; W];
        for i in 0..W {
            out[i] = f(self.0[i]);
        }
        VLane(out)
    }

    /// Blend lanes from `other` where `mask[i]` is true (the IMCI write-mask
    /// idiom).
    #[inline(always)]
    pub fn select(self, other: Self, mask: [bool; W]) -> Self {
        let mut out = self.0;
        for i in 0..W {
            if mask[i] {
                out[i] = other.0[i];
            }
        }
        VLane(out)
    }

    /// Horizontal fold of all lanes with `f`, starting from lane 0.
    #[inline(always)]
    pub fn hfold(self, f: impl Fn(T, T) -> T) -> T {
        let mut acc = self.0[0];
        for i in 1..W {
            acc = f(acc, self.0[i]);
        }
        acc
    }

    /// View the lanes as a slice.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.0
    }
}

macro_rules! lane_binop {
    ($trait:ident, $method:ident, $scalar:ident) => {
        impl<T: MsgValue, const W: usize> $trait for VLane<T, W> {
            type Output = Self;
            #[inline(always)]
            fn $method(self, rhs: Self) -> Self {
                self.zip(rhs, T::$scalar)
            }
        }
        /// Vector–scalar broadcast form, e.g. `lane + 1.0`.
        impl<T: MsgValue, const W: usize> $trait<T> for VLane<T, W> {
            type Output = Self;
            #[inline(always)]
            fn $method(self, rhs: T) -> Self {
                self.zip(Self::splat(rhs), T::$scalar)
            }
        }
    };
}

lane_binop!(Add, add, vadd);
lane_binop!(Sub, sub, vsub);
lane_binop!(Mul, mul, vmul);
lane_binop!(Div, div, vdiv);

impl<T, const W: usize> Index<usize> for VLane<T, W> {
    type Output = T;
    #[inline(always)]
    fn index(&self, i: usize) -> &T {
        &self.0[i]
    }
}

impl<T, const W: usize> IndexMut<usize> for VLane<T, W> {
    #[inline(always)]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.0[i]
    }
}

impl<T: MsgValue, const W: usize> From<[T; W]> for VLane<T, W> {
    #[inline]
    fn from(v: [T; W]) -> Self {
        VLane(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_index() {
        let v = VLane::<f32, 4>::splat(2.5);
        for i in 0..4 {
            assert_eq!(v[i], 2.5);
        }
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = VLane::<i32, 4>::from([1, 2, 3, 4]);
        let b = VLane::<i32, 4>::from([10, 20, 30, 40]);
        assert_eq!((a + b).0, [11, 22, 33, 44]);
        assert_eq!((b - a).0, [9, 18, 27, 36]);
        assert_eq!((a * b).0, [10, 40, 90, 160]);
        assert_eq!((b / a).0, [10, 10, 10, 10]);
    }

    #[test]
    fn scalar_broadcast_ops() {
        let a = VLane::<f32, 8>::splat(3.0);
        assert_eq!((a + 1.0).0, [4.0; 8]);
        assert_eq!((a * 2.0).0, [6.0; 8]);
    }

    #[test]
    fn min_max_lanes() {
        let a = VLane::<f32, 4>::from([1.0, 5.0, 3.0, 7.0]);
        let b = VLane::<f32, 4>::from([4.0, 2.0, 6.0, 0.0]);
        assert_eq!(a.min(b).0, [1.0, 2.0, 3.0, 0.0]);
        assert_eq!(a.max(b).0, [4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn load_store_round_trip() {
        let data = [9i32, 8, 7, 6, 5];
        let v = VLane::<i32, 4>::load(&data);
        assert_eq!(v.0, [9, 8, 7, 6]);
        let mut out = [0i32; 5];
        v.store(&mut out);
        assert_eq!(out, [9, 8, 7, 6, 0]);
    }

    #[test]
    fn select_applies_write_mask() {
        let a = VLane::<i32, 4>::splat(0);
        let b = VLane::<i32, 4>::splat(1);
        let r = a.select(b, [true, false, true, false]);
        assert_eq!(r.0, [1, 0, 1, 0]);
    }

    #[test]
    fn hfold_reduces_all_lanes() {
        let v = VLane::<i32, 16>::from([1; 16].map(|x: i32| x));
        assert_eq!(v.hfold(|a, b| a + b), 16);
        let w = VLane::<f32, 4>::from([4.0, 1.0, 3.0, 2.0]);
        assert_eq!(w.hfold(f32::min), 1.0);
    }

    #[test]
    fn division_by_zero_lane_is_total_for_ints() {
        let a = VLane::<i32, 4>::from([8, 8, 8, 8]);
        let b = VLane::<i32, 4>::from([2, 0, 4, 0]);
        assert_eq!((a / b).0, [4, 0, 2, 0]);
    }
}
