//! Scalar message-value trait.
//!
//! The paper restricts SIMD message reduction to "basic data types that are
//! supported by SSE, such as `int`, `float` and `double`". [`MsgValue`]
//! captures exactly that contract: a plain-old-data scalar with total
//! element-wise arithmetic, an ordering suitable for min/max reductions, and a
//! fixed little-endian wire encoding (used by the inter-device exchange to
//! account message bytes the way MPI would see them).

use std::fmt::Debug;

/// A plain-old-data scalar usable as a message value.
///
/// Implementations must be `Copy`, have a fixed byte size, and provide the
/// element-wise operations that the overloaded vtype operators forward to.
/// `vmin`/`vmax` must form a lattice (for floats, NaN is propagated the same
/// way `f32::min`/`f32::max` do).
pub trait MsgValue:
    Copy + Clone + Send + Sync + Default + PartialEq + PartialOrd + Debug + 'static
{
    /// Size of the encoded value in bytes (`msg_size` in the paper's layout
    /// formulas).
    const SIZE: usize;
    /// Additive identity.
    const ZERO: Self;
    /// Identity for `Min` reductions (the largest representable value).
    const MAX_ID: Self;
    /// Identity for `Max` reductions (the smallest representable value).
    const MIN_ID: Self;

    /// Element-wise addition (wrapping for integers, IEEE for floats).
    fn vadd(self, rhs: Self) -> Self;
    /// Element-wise subtraction.
    fn vsub(self, rhs: Self) -> Self;
    /// Element-wise multiplication.
    fn vmul(self, rhs: Self) -> Self;
    /// Element-wise division. Integer division by zero yields `ZERO` rather
    /// than trapping, so that lane code never faults on bubble slots.
    fn vdiv(self, rhs: Self) -> Self;
    /// Element-wise minimum.
    fn vmin(self, rhs: Self) -> Self;
    /// Element-wise maximum.
    fn vmax(self, rhs: Self) -> Self;

    /// Encode into exactly `Self::SIZE` little-endian bytes.
    fn write_le(&self, out: &mut [u8]);
    /// Decode from exactly `Self::SIZE` little-endian bytes.
    fn read_le(input: &[u8]) -> Self;
}

macro_rules! impl_msg_int {
    ($t:ty) => {
        impl MsgValue for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            const ZERO: Self = 0;
            const MAX_ID: Self = <$t>::MAX;
            const MIN_ID: Self = <$t>::MIN;

            #[inline(always)]
            fn vadd(self, rhs: Self) -> Self {
                self.wrapping_add(rhs)
            }
            #[inline(always)]
            fn vsub(self, rhs: Self) -> Self {
                self.wrapping_sub(rhs)
            }
            #[inline(always)]
            fn vmul(self, rhs: Self) -> Self {
                self.wrapping_mul(rhs)
            }
            #[inline(always)]
            fn vdiv(self, rhs: Self) -> Self {
                if rhs == 0 {
                    0
                } else {
                    self.wrapping_div(rhs)
                }
            }
            #[inline(always)]
            fn vmin(self, rhs: Self) -> Self {
                Ord::min(self, rhs)
            }
            #[inline(always)]
            fn vmax(self, rhs: Self) -> Self {
                Ord::max(self, rhs)
            }

            #[inline]
            fn write_le(&self, out: &mut [u8]) {
                out[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_le(input: &[u8]) -> Self {
                let mut buf = [0u8; Self::SIZE];
                buf.copy_from_slice(&input[..Self::SIZE]);
                <$t>::from_le_bytes(buf)
            }
        }
    };
}

macro_rules! impl_msg_float {
    ($t:ty) => {
        impl MsgValue for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            const ZERO: Self = 0.0;
            const MAX_ID: Self = <$t>::INFINITY;
            const MIN_ID: Self = <$t>::NEG_INFINITY;

            #[inline(always)]
            fn vadd(self, rhs: Self) -> Self {
                self + rhs
            }
            #[inline(always)]
            fn vsub(self, rhs: Self) -> Self {
                self - rhs
            }
            #[inline(always)]
            fn vmul(self, rhs: Self) -> Self {
                self * rhs
            }
            #[inline(always)]
            fn vdiv(self, rhs: Self) -> Self {
                self / rhs
            }
            #[inline(always)]
            fn vmin(self, rhs: Self) -> Self {
                self.min(rhs)
            }
            #[inline(always)]
            fn vmax(self, rhs: Self) -> Self {
                self.max(rhs)
            }

            #[inline]
            fn write_le(&self, out: &mut [u8]) {
                out[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_le(input: &[u8]) -> Self {
                let mut buf = [0u8; Self::SIZE];
                buf.copy_from_slice(&input[..Self::SIZE]);
                <$t>::from_le_bytes(buf)
            }
        }
    };
}

impl_msg_int!(i32);
impl_msg_int!(i64);
impl_msg_int!(u32);
impl_msg_int!(u64);
impl_msg_float!(f32);
impl_msg_float!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arithmetic_is_total() {
        assert_eq!(7i32.vadd(3), 10);
        assert_eq!(7i32.vsub(3), 4);
        assert_eq!(7i32.vmul(3), 21);
        assert_eq!(7i32.vdiv(3), 2);
        assert_eq!(7i32.vdiv(0), 0, "division by zero must not trap");
        assert_eq!(i32::MAX.vadd(1), i32::MIN, "wrapping add");
    }

    #[test]
    fn float_lattice_identities() {
        assert_eq!(f32::MAX_ID, f32::INFINITY);
        assert_eq!(f32::MIN_ID, f32::NEG_INFINITY);
        assert_eq!(3.5f32.vmin(f32::MAX_ID), 3.5);
        assert_eq!(3.5f32.vmax(f32::MIN_ID), 3.5);
        assert_eq!((-1.0f64).vmin(2.0), -1.0);
    }

    #[test]
    fn min_max_identities_for_ints() {
        for v in [i32::MIN, -5, 0, 5, i32::MAX] {
            assert_eq!(v.vmin(i32::MAX_ID), v);
            assert_eq!(v.vmax(i32::MIN_ID), v);
        }
    }

    #[test]
    fn wire_round_trip() {
        let mut buf = [0u8; 8];
        1234.5f32.write_le(&mut buf);
        assert_eq!(f32::read_le(&buf), 1234.5);
        (-77i64).write_le(&mut buf);
        assert_eq!(i64::read_le(&buf), -77);
        u32::MAX.write_le(&mut buf);
        assert_eq!(u32::read_le(&buf), u32::MAX);
    }

    #[test]
    fn sizes_match_rust_layout() {
        assert_eq!(<i32 as MsgValue>::SIZE, 4);
        assert_eq!(<f32 as MsgValue>::SIZE, 4);
        assert_eq!(<f64 as MsgValue>::SIZE, 8);
        assert_eq!(<u64 as MsgValue>::SIZE, 8);
    }
}
