//! Scoped thread-pool helpers.
//!
//! The engines execute with real host threads (the result computation is
//! genuine); only *timing* goes through the cost model. These helpers wrap
//! `std::thread::scope` with the spawn-per-phase pattern the engines use.
//! `host_threads` bounds the real parallelism to the machine we run on,
//! independent of the simulated device's thread count.

/// Number of host threads to actually run with (never more than the host
/// has, regardless of the simulated device's width).
pub fn host_threads(requested: usize) -> usize {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    requested.clamp(1, avail)
}

/// Run `f(thread_id)` on `threads` scoped threads and wait for all.
pub fn run_parallel<F>(threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        f(0);
        return;
    }
    std::thread::scope(|s| {
        for tid in 0..threads {
            let f = &f;
            s.spawn(move || f(tid));
        }
    });
}

/// Run `f(thread_id) -> R` on `threads` scoped threads and collect results
/// in thread-id order.
pub fn run_parallel_collect<F, R>(threads: usize, f: F) -> Vec<R>
where
    F: Fn(usize) -> R + Sync,
    R: Send,
{
    let threads = threads.max(1);
    if threads == 1 {
        return vec![f(0)];
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let f = &f;
                s.spawn(move || f(tid))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_parallel_visits_every_tid() {
        let seen = AtomicUsize::new(0);
        run_parallel(8, |tid| {
            seen.fetch_or(1 << tid, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 0xFF);
    }

    #[test]
    fn collect_preserves_tid_order() {
        let out = run_parallel_collect(6, |tid| tid * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = run_parallel_collect(1, |tid| tid);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn host_threads_clamps() {
        assert_eq!(host_threads(0), 1);
        let avail = std::thread::available_parallelism().unwrap().get();
        assert_eq!(host_threads(100_000), avail);
    }
}
