//! The analytic cost model: event counters → simulated device time.
//!
//! This module is the substitution heart documented in DESIGN.md §5. For
//! each superstep phase it converts the engine-recorded event counts into
//! device cycles, replays the per-chunk work through the runtime's dynamic
//! scheduling discipline ([`crate::sched::makespan`]) to account for load
//! imbalance, applies the locking/pipelining insertion models, and caps each
//! phase at the device's memory bandwidth.
//!
//! ## Calibration
//!
//! The per-event op counts below are order-of-magnitude instruction counts
//! for the corresponding inner loops (one redirection lookup + index-array
//! check + cursor bump + store for an insertion, etc.). Together with the
//! per-device constants in [`DeviceSpec`] they were calibrated once against
//! the scalar observations in the paper's §V.C (pipelining 1.07–3.36×
//! locking on MIC, framework ≤4.15× over OMP, SIMD 5.16–7.85× on MIC /
//! ~2.2–2.35× on CPU for message processing, CPU-MIC ≤1.41× over the best
//! single device). EXPERIMENTS.md records paper-vs-measured for every
//! family.

use crate::counters::{GenChunk, ProcChunk, StepCounters};
use crate::sched::{makespan, MakespanReport};
use crate::spec::DeviceSpec;

/// Scalar ops to scan one active vertex (activity check, value load, loop
/// setup).
pub const OPS_VERTEX_GEN: f64 = 8.0;
/// Scalar ops per traversed edge (neighbor load, weight load, message value
/// computation).
pub const OPS_EDGE_GEN: f64 = 6.0;
/// Scalar ops per message insertion into the condensed static buffer
/// (redirection lookup, index-array check, cursor bump, store).
pub const OPS_INSERT: f64 = 8.0;
/// Scalar ops per message when reducing without lanes (strided load,
/// compare/accumulate, loop control with data-dependent latency).
pub const OPS_REDUCE_SCALAR: f64 = 9.0;
/// Vector-lane ops per reduced row (one aligned load + one lane op).
pub const LANE_OPS_PER_ROW: f64 = 2.0;
/// Scalar ops per vertex update (reduced-value load, compare, value store,
/// active-flag store).
pub const OPS_UPDATE: f64 = 12.0;
/// Scalar ops per message for the flat (OpenMP-style) engine's in-place
/// accumulate, on top of its lock.
pub const OPS_FLAT_ACCUM: f64 = 6.0;
/// Scalar ops per message pushed to / popped from a sequential mailbox.
pub const OPS_MAILBOX: f64 = 5.0;
/// Scalar ops for a mover inserting into a column it owns (warm index
/// array and cursor line — cheaper than the generic insertion path).
pub const OPS_INSERT_OWNED: f64 = 3.0;
/// Cycles each mover spends per worker queue per superstep on polling and
/// batching — the pipeline's fixed cost, which dominates when supersteps
/// carry few messages (why locking wins BFS in the paper).
pub const PIPELINE_POLL_CYCLES: f64 = 100.0;
/// Scalar ops to process one *object* message (Semi-Clustering style
/// cluster-list merge and sort) — far heavier than a lane reduction.
pub const OPS_OBJ_MSG: f64 = 60.0;

/// How messages were inserted during generation — decides the insertion
/// cost term.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GenMode {
    /// Locking-based insertion: every message pays an atomic RMW on its
    /// column cursor; hot columns serialize.
    Locking,
    /// Worker/mover pipelining: workers pay a queue push, movers own
    /// columns exclusively and pay no per-message lock.
    Pipelined {
        /// Worker (computation) thread count.
        workers: usize,
        /// Mover thread count.
        movers: usize,
    },
    /// Flat OpenMP-style baseline: per-destination lock and in-place
    /// accumulate during generation; no separate processing phase.
    Flat,
    /// Single-threaded mailbox execution (Table II baselines).
    Sequential,
}

/// Simulated seconds per phase of one superstep.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    /// Message generation (including insertion and buffer reset).
    pub gen: f64,
    /// Message processing (reduction).
    pub process: f64,
    /// Vertex updating.
    pub update: f64,
    /// Superstep total (excluding communication, which the exchange layer
    /// times separately).
    pub total: f64,
    /// Generation-phase load-balance report from the makespan replay.
    pub gen_balance: MakespanReport,
}

/// The cost model for one device.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// The device being modelled.
    pub spec: DeviceSpec,
}

impl CostModel {
    /// Build a model for `spec`.
    pub fn new(spec: DeviceSpec) -> Self {
        CostModel { spec }
    }

    /// Simulated time for one superstep.
    ///
    /// * `mode` — how generation inserted messages.
    /// * `msg_size` — message value size in bytes (drives lane counts).
    /// * `vectorized` — whether processing used the lane path.
    pub fn step_times(
        &self,
        c: &StepCounters,
        mode: GenMode,
        msg_size: usize,
        vectorized: bool,
    ) -> PhaseTimes {
        let (gen, gen_balance) = self.gen_time(c, mode, msg_size);
        let process = match mode {
            // Flat and sequential modes fold processing into generation
            // (direct accumulate) — but sequential still drains mailboxes.
            GenMode::Flat => 0.0,
            GenMode::Sequential => self.seq_process_time(c),
            _ => self.process_time(c, msg_size, vectorized),
        };
        let update = self.update_time(c, mode);
        PhaseTimes {
            gen,
            process,
            update,
            total: gen + process + update,
            gen_balance,
        }
    }

    /// Generation-phase time (seconds) and its balance report.
    fn gen_time(&self, c: &StepCounters, mode: GenMode, msg_size: usize) -> (f64, MakespanReport) {
        let s = &self.spec;
        let lanes = s.lanes(msg_size) as f64;
        match mode {
            GenMode::Sequential => {
                let cycles =
                    self.gen_work_cycles(c) + c.msgs_total() as f64 * OPS_MAILBOX * s.scalar_cpi;
                let t = s.cycles_to_secs(cycles).max(self.mem_time(c.bytes_gen));
                (
                    t,
                    MakespanReport {
                        makespan: cycles,
                        total_work: cycles,
                        imbalance: 1.0,
                    },
                )
            }
            GenMode::Locking => {
                // Per-message: insertion ops + an atomic RMW; collisions
                // escalate the RMW to a contended line transfer.
                let p_col = c.insert_profile.collision_probability();
                let threads = s.threads() as f64;
                let contended = (p_col * (threads - 1.0)).min(1.0);
                let per_msg = OPS_INSERT * s.scalar_cpi
                    + s.cas_cycles * (1.0 + (s.contended_mult - 1.0) * contended);
                let chunks = self.gen_chunk_cycles(c, per_msg);
                let report = makespan(&chunks, s.threads());
                // Hot-column serialization floor: all messages to one column
                // pass through its cursor one at a time (RMWs on the same
                // line pipeline at roughly one transfer each).
                let serial_floor = c.insert_profile.max_column as f64 * s.hot_line_cycles;
                let reset = self.reset_cycles(c, lanes) / threads;
                let cycles = report.makespan.max(serial_floor) + reset;
                let t =
                    s.cycles_to_secs(cycles).max(self.mem_time(c.bytes_gen)) + self.barrier(1.0);
                (t, report)
            }
            GenMode::Pipelined { workers, movers } => {
                // Workers: compute + queue push, over `workers` threads.
                let per_msg = s.queue_push_cycles;
                let chunks = self.gen_chunk_cycles(c, per_msg);
                let report = makespan(&chunks, workers.max(1));
                // Movers: each owns its message classes exclusively, so the
                // index array and cursor lines stay warm in their cache.
                let per_move = s.queue_move_cycles + OPS_INSERT_OWNED * s.scalar_cpi;
                let mover_makespan = c
                    .mover_msgs
                    .iter()
                    .map(|&m| m as f64 * per_move)
                    .fold(0.0f64, f64::max);
                // Column allocation is the only locking left ("a mover
                // thread needs to use locking only at the time of buffer
                // column allocation") — an uncontended, cache-warm group
                // lock, far cheaper than the random-line CAS.
                let alloc = c.column_allocs as f64 * s.hot_line_cycles / (movers.max(1) as f64);
                let reset = self.reset_cycles(c, lanes) / s.threads() as f64;
                // Fixed per-superstep pipeline cost: every mover polls every
                // worker's queue at least once, message traffic or not.
                let poll = workers as f64 * PIPELINE_POLL_CYCLES;
                let cycles = report.makespan.max(mover_makespan + alloc) + reset + poll;
                // Pipelining pays extra per-superstep coordination: workers
                // and movers start, the workers' close is observed, and the
                // movers drain (three rendezvous vs the locking engine's
                // one).
                let t =
                    s.cycles_to_secs(cycles).max(self.mem_time(c.bytes_gen)) + self.barrier(3.0);
                (t, report)
            }
            GenMode::Flat => {
                // Direct update under a per-destination lock.
                let p_col = c.insert_profile.collision_probability();
                let threads = s.threads() as f64;
                let contended = (p_col * (threads - 1.0)).min(1.0);
                let per_msg = OPS_FLAT_ACCUM * s.scalar_cpi
                    + s.omp_lock_cycles * (1.0 + (s.contended_mult - 1.0) * contended);
                let chunks = self.gen_chunk_cycles(c, per_msg);
                let report = makespan(&chunks, s.threads());
                // The OMP critical section holds the line longer (lock,
                // read-modify-write of the value, unlock) than a bare
                // cursor RMW.
                let serial_floor = c.insert_profile.max_column as f64 * s.hot_line_cycles * 1.25;
                let cycles = report.makespan.max(serial_floor);
                let t =
                    s.cycles_to_secs(cycles).max(self.mem_time(c.bytes_gen)) + self.barrier(1.0);
                (t, report)
            }
        }
    }

    /// Per-chunk generation cycles with a given per-message insertion cost.
    /// Each chunk also pays one grab of the shared scheduling offset
    /// ("threads dynamically retrieve these task units through a …
    /// scheduling offset"), so over-fine chunking is not free.
    fn gen_chunk_cycles(&self, c: &StepCounters, per_msg_cycles: f64) -> Vec<f64> {
        let s = &self.spec;
        c.gen_chunks
            .iter()
            .map(|ch: &GenChunk| {
                s.cas_cycles
                    + (ch.vertices as f64 * OPS_VERTEX_GEN + ch.edges as f64 * OPS_EDGE_GEN)
                        * s.scalar_cpi
                    + ch.msgs as f64 * per_msg_cycles
            })
            .collect()
    }

    /// Total generation work in cycles (sequential path).
    fn gen_work_cycles(&self, c: &StepCounters) -> f64 {
        (c.active_vertices as f64 * OPS_VERTEX_GEN + c.gen_edges as f64 * OPS_EDGE_GEN)
            * self.spec.scalar_cpi
    }

    /// Buffer-reset cycles (index arrays and cursors cleared lane-wide).
    fn reset_cycles(&self, c: &StepCounters, lanes: f64) -> f64 {
        (c.reset_cells as f64 / lanes.max(1.0)) * self.spec.lane_cpi
    }

    /// Processing-phase time (seconds).
    fn process_time(&self, c: &StepCounters, msg_size: usize, vectorized: bool) -> f64 {
        let s = &self.spec;
        let lanes = s.lanes(msg_size) as f64;
        let chunks: Vec<f64> = c
            .proc_chunks
            .iter()
            .map(|ch: &ProcChunk| {
                s.cas_cycles
                    + if vectorized {
                        ch.rows as f64 * LANE_OPS_PER_ROW * s.lane_cpi
                            + (ch.holes as f64 / lanes) * s.lane_cpi
                            + ch.columns as f64 * 2.0 * s.scalar_cpi
                    } else {
                        ch.msgs as f64 * OPS_REDUCE_SCALAR * s.scalar_cpi
                            + ch.columns as f64 * 2.0 * s.scalar_cpi
                    }
            })
            .collect();
        let report = makespan(&chunks, s.threads());
        let bytes = if vectorized {
            c.bytes_proc
        } else {
            // The scalar walk strides across rows: poor spatial locality
            // touches more of each line per message.
            c.bytes_proc * 2
        };
        s.cycles_to_secs(report.makespan).max(self.mem_time(bytes)) + self.barrier(1.0)
    }

    /// Processing time for *object* messages (the Semi-Clustering path):
    /// per-message cost is a branch-heavy merge/sort, which in-order cores
    /// execute with an extra penalty.
    pub fn obj_process_time(&self, c: &StepCounters) -> f64 {
        let s = &self.spec;
        let per_msg = OPS_OBJ_MSG * s.scalar_cpi * s.branch_mult;
        let chunks: Vec<f64> = c
            .proc_chunks
            .iter()
            .map(|ch: &ProcChunk| s.cas_cycles.min(100.0) + ch.msgs as f64 * per_msg)
            .collect();
        let report = makespan(&chunks, s.threads());
        s.cycles_to_secs(report.makespan)
            .max(self.mem_time(c.bytes_proc))
            + self.barrier(1.0)
    }

    /// Sequential mailbox-drain processing time.
    fn seq_process_time(&self, c: &StepCounters) -> f64 {
        let s = &self.spec;
        let cycles = c.proc_msgs as f64 * OPS_REDUCE_SCALAR * s.scalar_cpi;
        s.cycles_to_secs(cycles).max(self.mem_time(c.bytes_proc))
    }

    /// Update-phase time (seconds). Updates touch disjoint vertices; the
    /// work is uniform per vertex so an even split is accurate.
    fn update_time(&self, c: &StepCounters, mode: GenMode) -> f64 {
        let s = &self.spec;
        let threads = match mode {
            GenMode::Sequential => 1.0,
            _ => s.threads() as f64,
        };
        let cycles = c.updated_vertices as f64 * OPS_UPDATE * s.scalar_cpi / threads;
        s.cycles_to_secs(cycles).max(self.mem_time(c.bytes_update)) + self.barrier(1.0)
    }

    /// One phase barrier across the device's threads, weighted.
    #[inline]
    fn barrier(&self, n: f64) -> f64 {
        n * self.spec.barrier_us * 1e-6
    }

    /// Time to move `bytes` through the memory system.
    #[inline]
    fn mem_time(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.spec.mem_bw_gbs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::InsertProfile;

    fn counters(msgs: u64, chunks: usize, hot: bool) -> StepCounters {
        let per = msgs / chunks as u64;
        let mut c = StepCounters {
            active_vertices: msgs / 8,
            gen_edges: msgs,
            msgs_local: msgs,
            gen_chunks: (0..chunks)
                .map(|_| GenChunk {
                    vertices: per / 8,
                    edges: per,
                    msgs: per,
                })
                .collect(),
            proc_rows: msgs / 16,
            proc_msgs: msgs,
            proc_chunks: vec![ProcChunk {
                rows: msgs / 16,
                msgs,
                holes: msgs / 10,
                columns: msgs / 8,
            }],
            occupied_columns: msgs / 8,
            updated_vertices: msgs / 8,
            bytes_gen: msgs * 12,
            bytes_proc: msgs * 4,
            bytes_update: msgs,
            ..Default::default()
        };
        c.insert_profile = if hot {
            InsertProfile::from_counts([msgs])
        } else {
            InsertProfile::from_counts(vec![8u64; (msgs / 8) as usize])
        };
        c
    }

    #[test]
    fn pipelining_beats_locking_under_contention_on_mic() {
        let model = CostModel::new(DeviceSpec::xeon_phi_se10p());
        let c = {
            let mut c = counters(1_000_000, 256, true);
            c.mover_msgs = vec![1_000_000 / 60; 60];
            c
        };
        let lock = model.step_times(&c, GenMode::Locking, 4, true);
        let pipe = model.step_times(
            &c,
            GenMode::Pipelined {
                workers: 180,
                movers: 60,
            },
            4,
            true,
        );
        assert!(
            lock.gen > 2.0 * pipe.gen,
            "hot-column locking {:.6}s should dwarf pipelining {:.6}s",
            lock.gen,
            pipe.gen
        );
    }

    #[test]
    fn locking_competitive_when_contention_is_low_on_cpu() {
        let model = CostModel::new(DeviceSpec::xeon_e5_2680());
        let c = {
            let mut c = counters(1_000_000, 256, false);
            c.mover_msgs = vec![1_000_000 / 4; 4];
            c
        };
        let lock = model.step_times(&c, GenMode::Locking, 4, true);
        let pipe = model.step_times(
            &c,
            GenMode::Pipelined {
                workers: 12,
                movers: 4,
            },
            4,
            true,
        );
        assert!(
            lock.gen < pipe.gen * 1.5,
            "CPU locking {:.6}s should be competitive with pipelining {:.6}s",
            lock.gen,
            pipe.gen
        );
    }

    #[test]
    fn vectorized_processing_is_faster_and_more_so_on_mic() {
        let c = counters(4_000_000, 256, false);
        let mic = CostModel::new(DeviceSpec::xeon_phi_se10p());
        let cpu = CostModel::new(DeviceSpec::xeon_e5_2680());
        let mic_vec = mic.step_times(&c, GenMode::Locking, 4, true).process;
        let mic_sca = mic.step_times(&c, GenMode::Locking, 4, false).process;
        let cpu_vec = cpu.step_times(&c, GenMode::Locking, 4, true).process;
        let cpu_sca = cpu.step_times(&c, GenMode::Locking, 4, false).process;
        let mic_speedup = mic_sca / mic_vec;
        let cpu_speedup = cpu_sca / cpu_vec;
        assert!(mic_speedup > 3.0, "MIC SIMD speedup {mic_speedup}");
        assert!(cpu_speedup > 1.5, "CPU SIMD speedup {cpu_speedup}");
        assert!(
            mic_speedup > cpu_speedup,
            "wider lanes should help more: mic {mic_speedup} vs cpu {cpu_speedup}"
        );
    }

    #[test]
    fn omp_flat_suffers_most_from_hot_columns() {
        let model = CostModel::new(DeviceSpec::xeon_phi_se10p());
        let c = {
            let mut c = counters(1_000_000, 256, true);
            c.mover_msgs = vec![1_000_000 / 60; 60];
            c
        };
        let flat = model.step_times(&c, GenMode::Flat, 4, false);
        let pipe = model.step_times(
            &c,
            GenMode::Pipelined {
                workers: 180,
                movers: 60,
            },
            4,
            true,
        );
        assert!(
            flat.total > 3.0 * pipe.total,
            "flat {:.6}s vs pipe {:.6}s",
            flat.total,
            pipe.total
        );
    }

    #[test]
    fn sequential_time_scales_with_work() {
        let model = CostModel::new(DeviceSpec::xeon_e5_2680().sequential());
        let small = model.step_times(&counters(10_000, 1, false), GenMode::Sequential, 4, false);
        let large = model.step_times(&counters(100_000, 1, false), GenMode::Sequential, 4, false);
        assert!(large.total > 5.0 * small.total);
    }

    #[test]
    fn memory_bandwidth_caps_phases() {
        let model = CostModel::new(DeviceSpec::xeon_e5_2680());
        let mut c = counters(1000, 4, false);
        c.bytes_proc = 51_200_000_000; // 1 second at 51.2 GB/s
        let t = model.step_times(&c, GenMode::Locking, 4, true);
        assert!(
            t.process >= 0.99,
            "process {:.3}s must be bandwidth-bound",
            t.process
        );
    }

    #[test]
    fn empty_step_costs_only_barriers() {
        // Every superstep pays its phase barriers even when no messages
        // flow — the fixed cost that dominates frontier algorithms with
        // many near-empty supersteps.
        let spec = DeviceSpec::xeon_phi_se10p();
        let model = CostModel::new(spec.clone());
        let t = model.step_times(&StepCounters::default(), GenMode::Locking, 4, true);
        let barriers = 3.0 * spec.barrier_us * 1e-6;
        assert!(
            (t.total - barriers).abs() < 1e-9,
            "empty step should cost exactly its barriers: {} vs {barriers}",
            t.total
        );
        // A sequential empty step really is free (no barriers).
        let seq = CostModel::new(spec.sequential());
        let t = seq.step_times(&StepCounters::default(), GenMode::Sequential, 4, false);
        assert_eq!(t.total, 0.0);
    }
}
