//! Load-balance metrics over per-worker work distributions.

/// Summary of how evenly work was distributed across workers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BalanceStats {
    /// Heaviest worker's share of total work.
    pub max_share: f64,
    /// `max / mean` — 1.0 is perfect balance.
    pub imbalance: f64,
    /// Coefficient of variation across workers.
    pub cv: f64,
}

/// Compute balance statistics from per-worker work amounts.
pub fn balance_stats(per_worker: &[f64]) -> BalanceStats {
    if per_worker.is_empty() {
        return BalanceStats {
            max_share: 0.0,
            imbalance: 1.0,
            cv: 0.0,
        };
    }
    let total: f64 = per_worker.iter().sum();
    let n = per_worker.len() as f64;
    let mean = total / n;
    let max = per_worker.iter().cloned().fold(0.0f64, f64::max);
    let var = per_worker
        .iter()
        .map(|&w| (w - mean) * (w - mean))
        .sum::<f64>()
        / n;
    BalanceStats {
        max_share: if total > 0.0 { max / total } else { 0.0 },
        imbalance: if mean > 0.0 { max / mean } else { 1.0 },
        cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_balance() {
        let s = balance_stats(&[5.0, 5.0, 5.0, 5.0]);
        assert!((s.imbalance - 1.0).abs() < 1e-12);
        assert!((s.max_share - 0.25).abs() < 1e-12);
        assert!(s.cv.abs() < 1e-12);
    }

    #[test]
    fn skewed_balance() {
        let s = balance_stats(&[10.0, 0.0, 0.0, 0.0]);
        assert!((s.imbalance - 4.0).abs() < 1e-12);
        assert!((s.max_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_zero_inputs() {
        assert_eq!(balance_stats(&[]).imbalance, 1.0);
        assert_eq!(balance_stats(&[0.0, 0.0]).imbalance, 1.0);
    }
}
