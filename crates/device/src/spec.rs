//! Device architecture descriptions.
//!
//! A [`DeviceSpec`] holds every architecture constant the cost model needs.
//! The two presets encode the paper's testbed (§V.A); the constants that are
//! not published datasheet values (atomics, locks, queue and barrier costs)
//! are calibration parameters, chosen once so that the §V.C ratio families
//! land near the paper's reported bands — see EXPERIMENTS.md for the
//! paper-vs-measured comparison.

use phigraph_simd::SimdIsa;

/// Architecture constants for one device.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Device name for reports.
    pub name: &'static str,
    /// Physical core count.
    pub cores: u32,
    /// Hardware threads per core actually used by the runtime (the paper
    /// ran 240 threads on the Phi = 60 cores × 4, 16 on the CPU).
    pub threads_per_core: u32,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Effective cycles per simple scalar operation. 1.0 for the
    /// out-of-order Xeon; ≈4.5 for the in-order Phi core, which together
    /// with the clock ratio reproduces the paper's observation that "a CPU
    /// core runs the same sequential code around 11x faster".
    pub scalar_cpi: f64,
    /// Additional slowdown factor for branch-heavy, data-dependent code
    /// (sorting/merging, as in Semi-Clustering): in-order cores cannot hide
    /// mispredictions ("CPU performs much faster than MIC for SC, due to
    /// the more complex conditional instructions involved").
    pub branch_mult: f64,
    /// Cycles per vector-lane operation (one op over a full register).
    pub lane_cpi: f64,
    /// The device's SIMD instruction set (decides lane counts).
    pub simd: SimdIsa,
    /// Achievable aggregate memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// Cycles for an atomic RMW on a line not in the local cache (the
    /// common case when 240 threads insert to random columns): full
    /// interconnect round trip. KNC's ring made these notoriously
    /// expensive (~hundreds of cycles).
    pub cas_cycles: f64,
    /// Multiplier applied to `cas_cycles` when the line is actively
    /// contended (ping-pong between cores).
    pub contended_mult: f64,
    /// Cycles each message serializes on a single hot line (back-to-back
    /// RMWs to the same column cursor pipeline at roughly one line
    /// transfer apiece).
    pub hot_line_cycles: f64,
    /// Cycles for an OpenMP-style lock/unlock pair around a remote update
    /// (the flat baseline; "the more expensive locking operations" of the
    /// OMP versions).
    pub omp_lock_cycles: f64,
    /// Cycles to push one message into a pipeline SPSC queue.
    pub queue_push_cycles: f64,
    /// Cycles for a mover to pop one message from a queue.
    pub queue_move_cycles: f64,
    /// Microseconds for one all-threads synchronization (phase barrier).
    /// Grows with thread count; dominant for frontier algorithms with many
    /// near-empty supersteps.
    pub barrier_us: f64,
}

impl DeviceSpec {
    /// Total hardware threads the runtime schedules onto.
    pub fn threads(&self) -> usize {
        (self.cores * self.threads_per_core) as usize
    }

    /// Scalar ops per second across one core.
    pub fn scalar_ops_per_sec(&self) -> f64 {
        self.freq_ghz * 1e9 / self.scalar_cpi
    }

    /// Convert device cycles to seconds.
    #[inline]
    pub fn cycles_to_secs(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9)
    }

    /// SIMD lanes for a message of `msg_size` bytes.
    pub fn lanes(&self, msg_size: usize) -> usize {
        self.simd.lanes_for_size(msg_size)
    }

    /// The paper's host CPU: Intel Xeon E5-2680, 16 cores at 2.70 GHz,
    /// SSE4.2 vector path, ~51 GB/s of memory bandwidth. Shared L3 keeps
    /// atomics and barriers cheap.
    pub fn xeon_e5_2680() -> Self {
        DeviceSpec {
            name: "Xeon E5-2680 (CPU)",
            cores: 16,
            threads_per_core: 1,
            freq_ghz: 2.7,
            scalar_cpi: 1.0,
            branch_mult: 1.0,
            lane_cpi: 1.0,
            simd: SimdIsa::SSE42,
            mem_bw_gbs: 51.2,
            cas_cycles: 30.0,
            contended_mult: 2.0,
            hot_line_cycles: 40.0,
            omp_lock_cycles: 38.0,
            queue_push_cycles: 10.0,
            queue_move_cycles: 12.0,
            barrier_us: 1.0,
        }
    }

    /// The paper's coprocessor: Intel Xeon Phi SE10P, 61 in-order cores at
    /// 1.1 GHz with 4 hyper-threads (the runtime uses 60 cores / 240
    /// threads, leaving one core to the OS as was standard practice),
    /// 512-bit IMCI vectors, GDDR5 at ~150 GB/s achievable. Atomics on
    /// non-local lines traverse the ring interconnect between 60 L2s,
    /// making locking and barriers far costlier than on the Xeon.
    pub fn xeon_phi_se10p() -> Self {
        DeviceSpec {
            name: "Xeon Phi SE10P (MIC)",
            cores: 60,
            threads_per_core: 4,
            freq_ghz: 1.1,
            scalar_cpi: 4.5,
            branch_mult: 3.2,
            lane_cpi: 2.0,
            simd: SimdIsa::IMCI,
            mem_bw_gbs: 150.0,
            cas_cycles: 400.0,
            contended_mult: 1.5,
            hot_line_cycles: 100.0,
            omp_lock_cycles: 330.0,
            queue_push_cycles: 20.0,
            queue_move_cycles: 16.0,
            barrier_us: 4.0,
        }
    }

    /// A single-core sequential pseudo-device with the same per-core
    /// characteristics, used for Table II baselines.
    pub fn sequential(&self) -> Self {
        let single_core_bw = if self.simd.vector_bytes >= 64 {
            5.5
        } else {
            14.0
        };
        DeviceSpec {
            name: if self.simd.vector_bytes >= 64 {
                "MIC (1 thread)"
            } else {
                "CPU (1 thread)"
            },
            cores: 1,
            threads_per_core: 1,
            barrier_us: 0.0,
            mem_bw_gbs: self.mem_bw_gbs.min(single_core_bw),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_testbed() {
        let cpu = DeviceSpec::xeon_e5_2680();
        assert_eq!(cpu.threads(), 16);
        assert_eq!(cpu.simd.lanes_for_size(4), 4);
        let mic = DeviceSpec::xeon_phi_se10p();
        assert_eq!(mic.threads(), 240);
        assert_eq!(mic.simd.lanes_for_size(4), 16);
    }

    #[test]
    fn sequential_core_speed_ratio_matches_paper() {
        // "a CPU core runs the same sequential code around 11x faster".
        let cpu = DeviceSpec::xeon_e5_2680();
        let mic = DeviceSpec::xeon_phi_se10p();
        let ratio = cpu.scalar_ops_per_sec() / mic.scalar_ops_per_sec();
        assert!(
            (9.0..13.0).contains(&ratio),
            "per-core scalar ratio {ratio} should be ~11x"
        );
    }

    #[test]
    fn cycles_conversion() {
        let cpu = DeviceSpec::xeon_e5_2680();
        assert!((cpu.cycles_to_secs(2.7e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_variant_is_one_thread() {
        let seq = DeviceSpec::xeon_phi_se10p().sequential();
        assert_eq!(seq.threads(), 1);
        assert_eq!(seq.freq_ghz, 1.1);
        assert_eq!(seq.barrier_us, 0.0);
    }

    #[test]
    fn mic_synchronization_costs_dominate_cpu() {
        let cpu = DeviceSpec::xeon_e5_2680();
        let mic = DeviceSpec::xeon_phi_se10p();
        assert!(mic.cas_cycles > 5.0 * cpu.cas_cycles);
        assert!(mic.barrier_us > cpu.barrier_us);
        assert!(mic.branch_mult > cpu.branch_mult);
    }
}
