#![warn(missing_docs)]
//! Device models, event counters, cost model, and intra-device scheduling.
//!
//! The paper's testbed — an Intel Xeon E5-2680 paired with a Xeon Phi SE10P —
//! no longer exists as accessible hardware, and the Intel MPI/ICC offload
//! toolchain is obsolete. This crate is the substitution layer described in
//! DESIGN.md §2: graph applications execute *for real* on host threads
//! (producing genuinely computed results and exercising all concurrency code
//! paths), while every performance-relevant event is tallied and replayed
//! through an analytic cost model parameterized by a [`DeviceSpec`]. The
//! model yields *simulated seconds* for the target chip, so the evaluation
//! reproduces the paper's relative behaviour (pipelining vs locking under
//! contention, SIMD lanes vs scalar, 61 slow cores vs 16 fast ones).
//!
//! Key pieces:
//!
//! * [`DeviceSpec`] — architecture constants; presets
//!   [`DeviceSpec::xeon_e5_2680`] and [`DeviceSpec::xeon_phi_se10p`].
//! * [`counters`] — per-superstep event tallies and per-chunk cost records.
//! * [`CostModel`] — events → simulated time, including the analytic
//!   makespan replay of the runtime's dynamic chunk scheduler.
//! * [`sched::ChunkScheduler`] — the lock-light dynamic work distributor the
//!   engines actually use ("all threads dynamically retrieve these task
//!   units through a … scheduling offset").
//! * [`pool`] — scoped thread-pool helpers.

pub mod balance;
pub mod cost;
pub mod counters;
pub mod pool;
pub mod sched;
pub mod spec;

pub use cost::CostModel;
pub use counters::{CancelReason, CancelToken, Heartbeat, InsertProfile, StepCounters};
pub use sched::{makespan, ChunkScheduler, MakespanReport};
pub use spec::DeviceSpec;
