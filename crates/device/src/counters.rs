//! Event counters filled by the engines and consumed by the cost model.
//!
//! Counters are collected per superstep. Phase-level counts come in two
//! flavours: aggregate totals (message counts, bytes) and *per-chunk*
//! records, which let the cost model replay the runtime's dynamic scheduler
//! to obtain a load-balance-aware makespan instead of assuming perfect
//! parallel efficiency.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Raw work record for one generation-phase scheduling chunk.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GenChunk {
    /// Active vertices scanned in this chunk.
    pub vertices: u64,
    /// Out-edges traversed.
    pub edges: u64,
    /// Messages produced.
    pub msgs: u64,
}

/// Raw work record for one processing-phase scheduling chunk (a batch of
/// vector arrays).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProcChunk {
    /// Vector-array rows reduced.
    pub rows: u64,
    /// Messages contained in those rows.
    pub msgs: u64,
    /// Bubble cells filled with the reduction identity.
    pub holes: u64,
    /// Occupied columns finalized.
    pub columns: u64,
}

/// Insertion contention profile for one superstep: how concentrated the
/// destination columns were. Built from the per-column message counts the
/// buffer tracks anyway (its insertion cursors).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct InsertProfile {
    /// Total messages inserted.
    pub total: u64,
    /// Messages in the hottest single column — a lower bound on
    /// serialization for any per-column locking scheme.
    pub max_column: u64,
    /// Sum over columns of `count²`; `sum_sq / total²` is the probability
    /// that two random insertions collide on a column, which scales the
    /// contended-atomic cost.
    pub sum_sq: f64,
}

impl InsertProfile {
    /// Build from per-column counts.
    pub fn from_counts<I: IntoIterator<Item = u64>>(counts: I) -> Self {
        let mut p = InsertProfile::default();
        for c in counts {
            p.record(c);
        }
        p
    }

    /// Record one column's message count.
    #[inline]
    pub fn record(&mut self, count: u64) {
        self.total += count;
        self.max_column = self.max_column.max(count);
        self.sum_sq += (count as f64) * (count as f64);
    }

    /// Probability that two uniformly random insertions target the same
    /// column (0 when fewer than 2 messages).
    pub fn collision_probability(&self) -> f64 {
        if self.total < 2 {
            0.0
        } else {
            self.sum_sq / (self.total as f64 * self.total as f64)
        }
    }

    /// Merge another profile (e.g. across vertex groups).
    pub fn merge(&mut self, other: &InsertProfile) {
        self.total += other.total;
        self.max_column = self.max_column.max(other.max_column);
        self.sum_sq += other.sum_sq;
    }
}

/// All events tallied for one superstep on one device.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepCounters {
    // -- message generation --
    /// Vertices that were active and scanned.
    pub active_vertices: u64,
    /// Out-edges traversed by active vertices.
    pub gen_edges: u64,
    /// Messages destined to vertices on this device.
    pub msgs_local: u64,
    /// Messages destined to the peer device.
    pub msgs_remote: u64,
    /// Per-chunk generation records, for the makespan replay.
    pub gen_chunks: Vec<GenChunk>,
    /// Insertion contention profile (locking engine; also drives the flat
    /// engine's per-vertex lock contention).
    pub insert_profile: InsertProfile,
    /// Messages routed through pipeline queues, per mover id (empty for
    /// non-pipelined runs).
    pub mover_msgs: Vec<u64>,
    /// Columns newly allocated this step (each takes one group lock).
    pub column_allocs: u64,
    /// Buffer cells reset at the start of the step (index arrays, cursors).
    pub reset_cells: u64,

    // -- pipeline backpressure / occupancy --
    /// Full-queue spin iterations workers burned waiting for mover space
    /// (backpressure: movers could not keep up with generation).
    pub queue_full_spins: u64,
    /// Worker→mover batches flushed through the SPSC queues.
    pub flush_batches: u64,
    /// Messages that travelled inside those batches (equals `msgs_local +
    /// msgs_remote` for a pipelined step; 0 otherwise).
    pub batched_msgs: u64,
    /// Empty polling rounds movers made over their queues (occupancy: high
    /// values mean movers were starved, the inverse of backpressure).
    pub mover_idle_polls: u64,

    // -- message processing --
    /// Vector-array rows reduced (lane path).
    pub proc_rows: u64,
    /// Messages reduced this step.
    pub proc_msgs: u64,
    /// Bubble cells filled with the reduction identity before lane
    /// reduction ("bubbles in the lanes due to the difference in the number
    /// of received messages for each vertex").
    pub holes_filled: u64,
    /// Per-chunk processing records.
    pub proc_chunks: Vec<ProcChunk>,
    /// Columns that held at least one message.
    pub occupied_columns: u64,

    // -- vertex update --
    /// Vertices whose update function ran.
    pub updated_vertices: u64,
    /// Vertices left active for the next superstep.
    pub next_active: u64,

    // -- memory traffic (bytes touched per phase) --
    /// Bytes read+written during generation.
    pub bytes_gen: u64,
    /// Bytes read+written during processing.
    pub bytes_proc: u64,
    /// Bytes read+written during update.
    pub bytes_update: u64,

    // -- communication --
    /// Remote messages before combining.
    pub remote_before_combine: u64,
    /// Remote messages actually sent after combining.
    pub remote_after_combine: u64,
    /// Wire bytes exchanged with the peer.
    pub comm_bytes: u64,

    // -- fault tolerance --
    /// Barrier checkpoints written at the end of this superstep (0 or 1 in
    /// practice; recovery replays drop superseded step records).
    pub checkpoints_written: u64,
    /// Encoded snapshot bytes written at the end of this superstep.
    pub checkpoint_bytes: u64,
    /// Faults the injector fired during this superstep.
    pub faults_injected: u64,

    // -- liveness --
    /// Heartbeat ticks this device emitted during the superstep (one per
    /// phase boundary; the watchdog uses staleness, this tallies volume).
    pub heartbeats: u64,
    /// Remote exchanges lost on the link during this superstep.
    pub exchange_drops: u64,
    /// Remote exchanges that hit the deadline waiting for the peer.
    pub exchange_timeouts: u64,
}

impl StepCounters {
    /// Total messages generated.
    pub fn msgs_total(&self) -> u64 {
        self.msgs_local + self.msgs_remote
    }

    /// Fold another step's counters into this one (used to total a run).
    pub fn accumulate(&mut self, other: &StepCounters) {
        self.active_vertices += other.active_vertices;
        self.gen_edges += other.gen_edges;
        self.msgs_local += other.msgs_local;
        self.msgs_remote += other.msgs_remote;
        self.gen_chunks.extend_from_slice(&other.gen_chunks);
        self.insert_profile.merge(&other.insert_profile);
        if self.mover_msgs.len() < other.mover_msgs.len() {
            self.mover_msgs.resize(other.mover_msgs.len(), 0);
        }
        for (a, b) in self.mover_msgs.iter_mut().zip(&other.mover_msgs) {
            *a += b;
        }
        self.column_allocs += other.column_allocs;
        self.reset_cells += other.reset_cells;
        self.queue_full_spins += other.queue_full_spins;
        self.flush_batches += other.flush_batches;
        self.batched_msgs += other.batched_msgs;
        self.mover_idle_polls += other.mover_idle_polls;
        self.proc_rows += other.proc_rows;
        self.proc_msgs += other.proc_msgs;
        self.holes_filled += other.holes_filled;
        self.proc_chunks.extend_from_slice(&other.proc_chunks);
        self.occupied_columns += other.occupied_columns;
        self.updated_vertices += other.updated_vertices;
        self.next_active += other.next_active;
        self.bytes_gen += other.bytes_gen;
        self.bytes_proc += other.bytes_proc;
        self.bytes_update += other.bytes_update;
        self.remote_before_combine += other.remote_before_combine;
        self.remote_after_combine += other.remote_after_combine;
        self.comm_bytes += other.comm_bytes;
        self.checkpoints_written += other.checkpoints_written;
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.faults_injected += other.faults_injected;
        self.heartbeats += other.heartbeats;
        self.exchange_drops += other.exchange_drops;
        self.exchange_timeouts += other.exchange_timeouts;
    }
}

#[derive(Debug)]
struct HeartbeatInner {
    origin: Instant,
    ticks: AtomicU64,
    last_tick_nanos: AtomicU64,
}

/// A cheaply clonable per-device liveness beacon.
///
/// The device loop calls [`Heartbeat::tick`] at every phase boundary; a
/// watchdog on another thread polls [`Heartbeat::since_last`] /
/// [`Heartbeat::is_stalled`] against a deadline. Construction counts as the
/// first tick, so a device that dies before its first phase still shows a
/// meaningful staleness instead of an unset sentinel.
#[derive(Clone, Debug)]
pub struct Heartbeat {
    inner: Arc<HeartbeatInner>,
}

impl Heartbeat {
    /// New beacon; "now" counts as the first observation.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Heartbeat {
            inner: Arc::new(HeartbeatInner {
                origin: Instant::now(),
                ticks: AtomicU64::new(0),
                last_tick_nanos: AtomicU64::new(0),
            }),
        }
    }

    /// Record a phase boundary.
    #[inline]
    pub fn tick(&self) {
        let nanos = self.inner.origin.elapsed().as_nanos() as u64;
        // Monotone max: concurrent tickers never move the beacon backwards.
        self.inner
            .last_tick_nanos
            .fetch_max(nanos, Ordering::Release);
        self.inner.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Total ticks so far.
    pub fn ticks(&self) -> u64 {
        self.inner.ticks.load(Ordering::Relaxed)
    }

    /// Time since the most recent tick (or since construction if none).
    pub fn since_last(&self) -> Duration {
        let last = Duration::from_nanos(self.inner.last_tick_nanos.load(Ordering::Acquire));
        self.inner.origin.elapsed().saturating_sub(last)
    }

    /// Whether the beacon has been silent for longer than `deadline`.
    pub fn is_stalled(&self, deadline: Duration) -> bool {
        self.since_last() > deadline
    }
}

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    /// Why the token was cancelled: 0 = not cancelled, otherwise a
    /// [`CancelReason`] discriminant.
    reason: AtomicU64,
    /// Liveness beacon ticked at every poll site, so the same watchdog
    /// that detects silent devices (PR 3) can tell a *hung* job (no polls)
    /// from a merely *slow* one (polling but not finishing).
    hb: Heartbeat,
}

/// Why a [`CancelToken`] fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// The job's wall-clock deadline passed.
    Deadline = 1,
    /// The owner is shutting down and revoked the work.
    Shutdown = 2,
    /// Cancelled explicitly by the submitter.
    Requested = 3,
}

impl CancelReason {
    /// Stable short name for protocol responses and reports.
    pub fn name(&self) -> &'static str {
        match self {
            CancelReason::Deadline => "deadline",
            CancelReason::Shutdown => "shutdown",
            CancelReason::Requested => "cancelled",
        }
    }

    fn from_u64(v: u64) -> Option<CancelReason> {
        match v {
            1 => Some(CancelReason::Deadline),
            2 => Some(CancelReason::Shutdown),
            3 => Some(CancelReason::Requested),
            _ => None,
        }
    }
}

/// A cheaply clonable cooperative cancellation token.
///
/// The engines poll [`CancelToken::poll`] at phase boundaries inside each
/// superstep and abandon the run early once the token fires; the owner
/// (e.g. the serving daemon's deadline watchdog) calls
/// [`CancelToken::cancel`] from any thread. Every poll also ticks an
/// embedded [`Heartbeat`], so the watchdog can distinguish a job that
/// stopped polling (hung inside a phase) from one that is still making
/// progress. A fired token stays fired; the first reason wins.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// New, un-fired token.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                reason: AtomicU64::new(0),
                hb: Heartbeat::new(),
            }),
        }
    }

    /// Fire the token. The first caller's reason is kept.
    pub fn cancel(&self, reason: CancelReason) {
        // Publish the reason before the flag so a poller that observes
        // `cancelled` can always read a coherent reason.
        let _ = self.inner.reason.compare_exchange(
            0,
            reason as u64,
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Poll site for the worker executing under this token: ticks the
    /// liveness beacon and reports whether the token fired. One relaxed
    /// heartbeat update plus one acquire load — cheap enough for every
    /// phase boundary.
    #[inline]
    pub fn poll(&self) -> bool {
        self.inner.hb.tick();
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Whether the token fired, without ticking the beacon (observer side).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Why the token fired (`None` while un-fired).
    pub fn reason(&self) -> Option<CancelReason> {
        CancelReason::from_u64(self.inner.reason.load(Ordering::Acquire))
    }

    /// The liveness beacon ticked by [`CancelToken::poll`] — the watchdog
    /// side of the PR 3 machinery.
    pub fn heartbeat(&self) -> &Heartbeat {
        &self.inner.hb
    }
}

/// A set of atomic tallies shared by worker threads during one phase, folded
/// into [`StepCounters`] afterwards.
#[derive(Debug, Default)]
pub struct AtomicTally {
    /// Generic counter A (phase-specific meaning).
    pub a: AtomicU64,
    /// Generic counter B.
    pub b: AtomicU64,
    /// Generic counter C.
    pub c: AtomicU64,
}

impl AtomicTally {
    /// Add to counter A.
    #[inline]
    pub fn add_a(&self, v: u64) {
        self.a.fetch_add(v, Ordering::Relaxed);
    }
    /// Add to counter B.
    #[inline]
    pub fn add_b(&self, v: u64) {
        self.b.fetch_add(v, Ordering::Relaxed);
    }
    /// Add to counter C.
    #[inline]
    pub fn add_c(&self, v: u64) {
        self.c.fetch_add(v, Ordering::Relaxed);
    }
    /// Snapshot all three counters.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.a.load(Ordering::Relaxed),
            self.b.load(Ordering::Relaxed),
            self.c.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_profile_from_counts() {
        let p = InsertProfile::from_counts([3u64, 1, 0, 4]);
        assert_eq!(p.total, 8);
        assert_eq!(p.max_column, 4);
        assert_eq!(p.sum_sq, 9.0 + 1.0 + 16.0);
    }

    #[test]
    fn collision_probability_bounds() {
        // All messages to one column: collisions certain.
        let hot = InsertProfile::from_counts([100u64]);
        assert!((hot.collision_probability() - 1.0).abs() < 1e-9);
        // Perfectly spread: probability 1/C.
        let spread = InsertProfile::from_counts(vec![1u64; 100]);
        assert!((spread.collision_probability() - 0.01).abs() < 1e-9);
        // Degenerate.
        assert_eq!(
            InsertProfile::from_counts([1u64]).collision_probability(),
            0.0
        );
    }

    #[test]
    fn profile_merge_accumulates() {
        let mut a = InsertProfile::from_counts([2u64, 2]);
        let b = InsertProfile::from_counts([5u64]);
        a.merge(&b);
        assert_eq!(a.total, 9);
        assert_eq!(a.max_column, 5);
        assert_eq!(a.sum_sq, 4.0 + 4.0 + 25.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut a = StepCounters {
            gen_edges: 10,
            msgs_local: 5,
            mover_msgs: vec![1, 2],
            gen_chunks: vec![GenChunk {
                vertices: 1,
                edges: 10,
                msgs: 5,
            }],
            ..Default::default()
        };
        let b = StepCounters {
            gen_edges: 7,
            msgs_remote: 3,
            mover_msgs: vec![4, 5, 6],
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.gen_edges, 17);
        assert_eq!(a.msgs_total(), 8);
        assert_eq!(a.mover_msgs, vec![5, 7, 6]);
        assert_eq!(a.gen_chunks.len(), 1);
    }

    #[test]
    fn pipeline_counters_accumulate() {
        let mut a = StepCounters {
            queue_full_spins: 3,
            flush_batches: 2,
            batched_msgs: 100,
            mover_idle_polls: 7,
            ..Default::default()
        };
        let b = StepCounters {
            queue_full_spins: 1,
            flush_batches: 4,
            batched_msgs: 50,
            mover_idle_polls: 3,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.queue_full_spins, 4);
        assert_eq!(a.flush_batches, 6);
        assert_eq!(a.batched_msgs, 150);
        assert_eq!(a.mover_idle_polls, 10);
    }

    #[test]
    fn liveness_counters_accumulate() {
        let mut a = StepCounters {
            heartbeats: 4,
            exchange_drops: 1,
            ..Default::default()
        };
        let b = StepCounters {
            heartbeats: 6,
            exchange_timeouts: 2,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.heartbeats, 10);
        assert_eq!(a.exchange_drops, 1);
        assert_eq!(a.exchange_timeouts, 2);
    }

    #[test]
    fn heartbeat_ticks_and_staleness() {
        let hb = Heartbeat::new();
        assert_eq!(hb.ticks(), 0);
        hb.tick();
        hb.tick();
        assert_eq!(hb.ticks(), 2);
        // Freshly ticked: not stalled against any humane deadline.
        assert!(!hb.is_stalled(Duration::from_millis(100)));
        std::thread::sleep(Duration::from_millis(15));
        assert!(hb.is_stalled(Duration::from_millis(5)));
        assert!(hb.since_last() >= Duration::from_millis(10));
        // A new tick resets staleness.
        hb.tick();
        assert!(!hb.is_stalled(Duration::from_millis(10)));
    }

    #[test]
    fn heartbeat_clones_share_state() {
        let hb = Heartbeat::new();
        let clone = hb.clone();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = clone.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        h.tick();
                    }
                });
            }
        });
        assert_eq!(hb.ticks(), 400);
    }

    #[test]
    fn atomic_tally_concurrent() {
        let t = AtomicTally::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        t.add_a(1);
                        t.add_b(2);
                    }
                });
            }
        });
        assert_eq!(t.snapshot(), (4000, 8000, 0));
    }

    #[test]
    fn cancel_token_fires_once_with_first_reason() {
        let t = CancelToken::new();
        assert!(!t.poll());
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        t.cancel(CancelReason::Deadline);
        t.cancel(CancelReason::Shutdown); // loses the race; first reason wins
        assert!(t.poll());
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
        assert_eq!(t.reason().unwrap().name(), "deadline");
    }

    #[test]
    fn cancel_token_polls_tick_the_heartbeat() {
        let t = CancelToken::new();
        let before = t.heartbeat().ticks();
        t.poll();
        t.poll();
        assert_eq!(t.heartbeat().ticks(), before + 2);
    }

    #[test]
    fn cancel_token_crosses_threads() {
        let t = CancelToken::new();
        std::thread::scope(|s| {
            let observer = t.clone();
            s.spawn(move || {
                while !observer.poll() {
                    std::hint::spin_loop();
                }
                assert_eq!(observer.reason(), Some(CancelReason::Requested));
            });
            t.cancel(CancelReason::Requested);
        });
    }
}
