//! Dynamic chunk scheduling — the real distributor and its analytic replay.
//!
//! The paper (§IV.D): "All threads dynamically retrieve these task units
//! through a mutex-protected scheduling offset. To lower the task retrieving
//! frequency and thus the scheduling overhead, a thread can obtain multiple
//! tasks each time." [`ChunkScheduler`] implements exactly that (with an
//! atomic offset, the modern equivalent of the mutex-protected counter), and
//! [`makespan`] replays a recorded list of chunk costs through the same
//! earliest-available-worker discipline to predict the phase's parallel
//! running time on a device with a different thread count than the host.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A dynamic self-scheduling counter over `0..total` in grabs of `grab`.
#[derive(Debug)]
pub struct ChunkScheduler {
    next: AtomicUsize,
    total: usize,
    grab: usize,
}

impl ChunkScheduler {
    /// Schedule `total` items in batches of `grab` (≥1).
    pub fn new(total: usize, grab: usize) -> Self {
        ChunkScheduler {
            next: AtomicUsize::new(0),
            total,
            grab: grab.max(1),
        }
    }

    /// Grab the next batch; `None` when the range is exhausted.
    #[inline]
    pub fn next_batch(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.grab, Ordering::Relaxed);
        if start >= self.total {
            None
        } else {
            Some(start..(start + self.grab).min(self.total))
        }
    }

    /// Number of batches a full drain will produce.
    pub fn num_batches(&self) -> usize {
        self.total.div_ceil(self.grab)
    }

    /// Reset for reuse in the next superstep.
    pub fn reset(&self) {
        self.next.store(0, Ordering::Relaxed);
    }
}

/// Result of an analytic makespan replay.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MakespanReport {
    /// Finishing time of the last worker (same unit as the chunk costs).
    pub makespan: f64,
    /// Sum of all chunk costs.
    pub total_work: f64,
    /// `makespan / (total_work / workers)`: 1.0 = perfectly balanced.
    pub imbalance: f64,
}

/// Replay `chunks` (costs, in device cycles or ops) through dynamic
/// self-scheduling onto `workers` virtual workers: each chunk goes to the
/// earliest-available worker, in order — the same discipline
/// [`ChunkScheduler`] induces at runtime.
///
/// # Examples
///
/// ```
/// use phigraph_device::makespan;
/// // Four unit chunks on two workers finish in two time units.
/// let r = makespan(&[1.0, 1.0, 1.0, 1.0], 2);
/// assert_eq!(r.makespan, 2.0);
/// // A single heavy chunk bounds the schedule no matter the worker count.
/// assert!(makespan(&[8.0, 1.0], 16).makespan >= 8.0);
/// ```
pub fn makespan(chunks: &[f64], workers: usize) -> MakespanReport {
    let workers = workers.max(1);
    let total_work: f64 = chunks.iter().sum();
    if chunks.is_empty() || total_work == 0.0 {
        return MakespanReport {
            makespan: 0.0,
            total_work,
            imbalance: 1.0,
        };
    }
    if workers == 1 {
        return MakespanReport {
            makespan: total_work,
            total_work,
            imbalance: 1.0,
        };
    }
    // Min-heap of worker available-times. f64 isn't Ord; order by bits of
    // the non-negative values (monotone for non-negative floats).
    #[derive(PartialEq)]
    struct T(f64);
    impl Eq for T {}
    impl PartialOrd for T {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for T {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            self.0.partial_cmp(&o.0).expect("NaN chunk cost")
        }
    }
    let mut heap: BinaryHeap<Reverse<T>> = (0..workers).map(|_| Reverse(T(0.0))).collect();
    let mut finish: f64 = 0.0;
    for &c in chunks {
        let Reverse(T(avail)) = heap.pop().expect("heap nonempty");
        let done = avail + c.max(0.0);
        finish = finish.max(done);
        heap.push(Reverse(T(done)));
    }
    let ideal = total_work / workers as f64;
    MakespanReport {
        makespan: finish,
        total_work,
        imbalance: if ideal > 0.0 { finish / ideal } else { 1.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scheduler_covers_range_exactly_once() {
        let s = ChunkScheduler::new(1000, 7);
        let covered = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    while let Some(r) = s.next_batch() {
                        covered.fetch_add((r.end - r.start) as u64, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(covered.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn scheduler_reset_allows_reuse() {
        let s = ChunkScheduler::new(10, 4);
        let mut n = 0;
        while s.next_batch().is_some() {
            n += 1;
        }
        assert_eq!(n, s.num_batches());
        s.reset();
        assert_eq!(s.next_batch(), Some(0..4));
    }

    #[test]
    fn makespan_balanced_chunks() {
        let chunks = vec![1.0; 64];
        let r = makespan(&chunks, 8);
        assert_eq!(r.makespan, 8.0);
        assert!((r.imbalance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_single_heavy_chunk_dominates() {
        let mut chunks = vec![1.0; 10];
        chunks.push(100.0);
        let r = makespan(&chunks, 4);
        // The heavy chunk arrives late and bounds the schedule.
        assert!(r.makespan >= 100.0);
        assert!(r.makespan <= 100.0 + 10.0);
        assert!(r.imbalance > 3.0);
    }

    #[test]
    fn makespan_more_workers_never_slower() {
        let chunks: Vec<f64> = (0..100).map(|i| ((i * 37) % 13) as f64 + 1.0).collect();
        let mut prev = f64::INFINITY;
        for w in [1, 2, 4, 8, 16, 64] {
            let r = makespan(&chunks, w);
            assert!(r.makespan <= prev + 1e-9, "workers={w}");
            prev = r.makespan;
        }
    }

    #[test]
    fn makespan_one_worker_is_total() {
        let chunks = vec![3.0, 4.0, 5.0];
        let r = makespan(&chunks, 1);
        assert_eq!(r.makespan, 12.0);
        assert_eq!(r.total_work, 12.0);
    }

    #[test]
    fn makespan_empty_is_zero() {
        let r = makespan(&[], 8);
        assert_eq!(r.makespan, 0.0);
    }
}
