//! Semi-Clustering (§V.B) — "a graph based clustering algorithm, typically
//! used for social network graphs … Each vertex may belong to more than one
//! semi-cluster. … In the message generation sub-step, each vertex sends
//! the top-score clusters to all of its neighbors. In the message
//! processing sub-step, each vertex combines the received clusters with the
//! clusters from its own vertex value, and sorts them according to the
//! score. … Because the message processing step is not associative and
//! commutative, and the message type is not [a] basic data type, SIMD
//! reduction is not utilized."
//!
//! Scoring follows the Pregel formulation: `S_c = (I_c − f_B·B_c) /
//! (V_c(V_c−1)/2)` with `I_c` the internal and `B_c` the boundary edge
//! weight. The graph is stored directed-symmetrized (each undirected edge
//! twice), which scales both sums by 2 uniformly and leaves the ranking
//! unchanged; the incremental update when a vertex joins a cluster needs
//! only that vertex's own adjacency.

use phigraph_core::engine::obj::ObjVertexProgram;
use phigraph_graph::{Csr, VertexId};

/// One semi-cluster: a sorted member list with cached internal/boundary
/// edge-weight sums.
#[derive(Clone, Debug, PartialEq)]
pub struct SemiCluster {
    /// Member vertex ids, ascending.
    pub members: Vec<VertexId>,
    /// Sum of directed edge weights with both endpoints inside.
    pub inner: f32,
    /// Sum of directed edge weights with exactly one endpoint inside.
    pub boundary: f32,
}

impl SemiCluster {
    /// The singleton cluster of `v`.
    pub fn singleton(v: VertexId, g: &Csr) -> Self {
        let boundary: f32 = g.edge_range(v).map(|e| 2.0 * g.weight(e)).sum();
        SemiCluster {
            members: vec![v],
            inner: 0.0,
            boundary,
        }
    }

    /// Whether `v` is a member.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.members.binary_search(&v).is_ok()
    }

    /// The Pregel semi-cluster score.
    pub fn score(&self, boundary_factor: f32) -> f32 {
        let n = self.members.len() as f32;
        if n <= 1.0 {
            return 0.0;
        }
        (self.inner - boundary_factor * self.boundary) / (n * (n - 1.0) / 2.0)
    }

    /// A new cluster with `v` added; `inner`/`boundary` updated from `v`'s
    /// adjacency (requires a symmetrized graph so both edge directions
    /// exist).
    pub fn extend_with(&self, v: VertexId, g: &Csr) -> SemiCluster {
        debug_assert!(!self.contains(v));
        let mut inner = self.inner;
        let mut boundary = self.boundary;
        for e in g.edge_range(v) {
            let u = g.targets[e];
            if u == v {
                continue;
            }
            let w = 2.0 * g.weight(e); // both directions of the undirected edge
            if self.contains(u) {
                inner += w; // u↔v edges become internal…
                boundary -= w; // …and stop being boundary
            } else {
                boundary += w; // v's other edges become boundary
            }
        }
        let mut members = self.members.clone();
        let at = members.partition_point(|&m| m < v);
        members.insert(at, v);
        SemiCluster {
            members,
            inner,
            boundary,
        }
    }
}

/// The Semi-Clustering program (object-message path).
#[derive(Clone, Debug)]
pub struct SemiClustering {
    /// Maximum vertices per semi-cluster (`M_max`).
    pub max_cluster_size: usize,
    /// Maximum clusters retained per vertex (`C_max` — "a vector containing
    /// at most a … pre-defined maximum … of semi-clusters").
    pub max_clusters_per_vertex: usize,
    /// Clusters sent per message (the "top-score clusters").
    pub max_msgs: usize,
    /// Boundary penalty factor (`f_B`).
    pub boundary_factor: f32,
    /// Superstep cap.
    pub iterations: usize,
}

impl Default for SemiClustering {
    fn default() -> Self {
        SemiClustering {
            max_cluster_size: 8,
            max_clusters_per_vertex: 4,
            max_msgs: 2,
            boundary_factor: 0.3,
            iterations: 8,
        }
    }
}

impl SemiClustering {
    /// Deterministically order clusters: score descending, then members
    /// lexicographically. Only byte-identical duplicates are dropped:
    /// clusters with equal member sets but different cached sums (the same
    /// set reached through different float-addition orders) are kept, so
    /// the candidate multiset is independent of where combining happened —
    /// this is what makes heterogeneous runs bit-equal to single-device
    /// runs.
    fn sort_clusters(&self, clusters: &mut Vec<SemiCluster>) {
        clusters.sort_by(|a, b| {
            b.score(self.boundary_factor)
                .partial_cmp(&a.score(self.boundary_factor))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.members.cmp(&b.members))
                .then_with(|| {
                    (a.inner, a.boundary)
                        .partial_cmp(&(b.inner, b.boundary))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
        });
        clusters.dedup_by(|a, b| a == b);
    }
}

impl ObjVertexProgram for SemiClustering {
    type Msg = Vec<SemiCluster>;
    type Value = Vec<SemiCluster>;
    const NAME: &'static str = "semicluster";

    fn init(&self, v: VertexId, g: &Csr) -> (Vec<SemiCluster>, bool) {
        (vec![SemiCluster::singleton(v, g)], true)
    }

    fn generate(
        &self,
        v: VertexId,
        g: &Csr,
        values: &[Vec<SemiCluster>],
        send: &mut dyn FnMut(VertexId, Vec<SemiCluster>),
    ) {
        let top: Vec<SemiCluster> = values[v as usize]
            .iter()
            .take(self.max_msgs)
            .cloned()
            .collect();
        if top.is_empty() {
            return;
        }
        for &u in g.neighbors(v) {
            send(u, top.clone());
        }
    }

    fn update(
        &self,
        v: VertexId,
        msgs: Vec<Vec<SemiCluster>>,
        value: &mut Vec<SemiCluster>,
        g: &Csr,
    ) -> bool {
        let mut candidates: Vec<SemiCluster> = value.clone();
        for list in msgs {
            for c in list {
                if c.contains(v) {
                    candidates.push(c);
                } else if c.members.len() < self.max_cluster_size {
                    candidates.push(c.extend_with(v, g));
                }
            }
        }
        self.sort_clusters(&mut candidates);
        candidates.truncate(self.max_clusters_per_vertex);
        let changed = candidates != *value;
        *value = candidates;
        changed
    }

    fn combine_remote(&self, _dst: VertexId, msgs: Vec<Vec<SemiCluster>>) -> Vec<Vec<SemiCluster>> {
        // Merge all lists bound for one vertex into a single deduplicated
        // list — the paper's remote-buffer combination via the processing
        // logic. Deduplication is lossless for the update step (which
        // dedups by member set itself), so heterogeneous results match
        // single-device results exactly while the wire volume drops.
        let mut all: Vec<SemiCluster> = msgs.into_iter().flatten().collect();
        self.sort_clusters(&mut all);
        vec![all]
    }

    fn msg_bytes(msg: &Vec<SemiCluster>) -> u64 {
        msg.iter().map(|c| 12 + 4 * c.members.len() as u64).sum()
    }

    fn max_supersteps(&self) -> Option<usize> {
        Some(self.iterations)
    }
}

/// Clustering-quality metric for tests: the fraction of (vertex, top
/// cluster co-member) pairs that share a planted community label.
pub fn community_agreement(values: &[Vec<SemiCluster>], labels: &[u32]) -> f64 {
    let mut same = 0u64;
    let mut total = 0u64;
    for (v, clusters) in values.iter().enumerate() {
        if let Some(top) = clusters.first() {
            for &m in &top.members {
                if m as usize != v {
                    total += 1;
                    if labels[m as usize] == labels[v] {
                        same += 1;
                    }
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        same as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_core::engine::obj::run_obj_single;
    use phigraph_core::engine::EngineConfig;
    use phigraph_device::DeviceSpec;
    use phigraph_graph::generators::community::{community_graph, CommunityConfig};
    use phigraph_graph::EdgeList;

    fn triangle_plus_tail() -> Csr {
        // Triangle 0-1-2 (heavy weights) with a weak tail 2-3.
        let mut el = EdgeList::new(4);
        for (a, b, w) in [(0u32, 1u32, 1.0f32), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 0.1)] {
            el.push_weighted(a, b, w);
            el.push_weighted(b, a, w);
        }
        Csr::from_edge_list(&el)
    }

    #[test]
    fn singleton_and_extend_bookkeeping() {
        let g = triangle_plus_tail();
        let c0 = SemiCluster::singleton(0, &g);
        assert_eq!(c0.members, vec![0]);
        assert_eq!(c0.inner, 0.0);
        assert_eq!(c0.boundary, 4.0); // edges 0-1, 0-2, doubled
        let c01 = c0.extend_with(1, &g);
        assert_eq!(c01.members, vec![0, 1]);
        assert_eq!(c01.inner, 2.0); // the 0-1 edge, both directions
                                    // boundary: 0-2 (2.0) + 1-2 (2.0)
        assert_eq!(c01.boundary, 4.0);
        let c012 = c01.extend_with(2, &g);
        assert_eq!(c012.inner, 6.0);
        assert!((c012.boundary - 0.2).abs() < 1e-6); // only the weak tail
    }

    #[test]
    fn triangle_scores_higher_than_tail_cluster() {
        let g = triangle_plus_tail();
        let tri = SemiCluster::singleton(0, &g)
            .extend_with(1, &g)
            .extend_with(2, &g);
        let tail = SemiCluster::singleton(2, &g).extend_with(3, &g);
        assert!(tri.score(0.3) > tail.score(0.3));
    }

    #[test]
    fn clustering_finds_the_triangle() {
        let g = triangle_plus_tail();
        let sc = SemiClustering::default();
        let out = run_obj_single(
            &sc,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        let top = &out.values[0][0];
        assert_eq!(
            top.members,
            vec![0, 1, 2],
            "top cluster should be the triangle"
        );
    }

    #[test]
    fn recovers_planted_communities_better_than_chance() {
        let cfg = CommunityConfig {
            num_vertices: 300,
            num_communities: 10,
            intra_degree: 8,
            inter_degree: 0.5,
            weighted: true,
            seed: 5,
        };
        let (g, labels) = community_graph(&cfg);
        let sc = SemiClustering::default();
        let out = run_obj_single(
            &sc,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        let agreement = community_agreement(&out.values, &labels);
        // Chance level is ~1/10; the clusterer should do far better.
        assert!(
            agreement > 0.6,
            "community agreement {agreement} barely above chance"
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (g, _) = community_graph(&CommunityConfig {
            num_vertices: 120,
            num_communities: 6,
            intra_degree: 6,
            inter_degree: 0.4,
            weighted: true,
            seed: 9,
        });
        let sc = SemiClustering::default();
        let a = run_obj_single(
            &sc,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking().with_host_threads(1),
        );
        let b = run_obj_single(
            &sc,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking().with_host_threads(8),
        );
        assert_eq!(a.values, b.values);
    }
}
