//! Personalized PageRank: the random surfer teleports back to a single
//! *source* vertex instead of jumping uniformly, so ranks measure
//! proximity to that source. The serving daemon's per-tenant "who is
//! relevant to this user" query — each tenant picks its own source over
//! the one shared graph. Same message shape as [`crate::PageRank`]
//! (`f32` shares, SIMD sum reduction, fixed iterations).

use phigraph_core::api::{GenContext, MsgSink, VertexProgram};
use phigraph_graph::{Csr, VertexId};
use phigraph_simd::Sum;

/// The personalized-PageRank vertex program.
#[derive(Clone, Debug)]
pub struct PersonalizedPageRank {
    /// Teleport target: all `1-damping` mass returns here.
    pub source: VertexId,
    /// Damping factor.
    pub damping: f32,
    /// Fixed iteration count (every vertex active every iteration).
    pub iterations: usize,
}

impl Default for PersonalizedPageRank {
    fn default() -> Self {
        PersonalizedPageRank {
            source: 0,
            damping: 0.85,
            iterations: 20,
        }
    }
}

impl PersonalizedPageRank {
    #[inline]
    fn teleport(&self, v: VertexId) -> f32 {
        if v == self.source {
            1.0 - self.damping
        } else {
            0.0
        }
    }
}

impl VertexProgram for PersonalizedPageRank {
    type Msg = f32;
    type Reduce = Sum;
    type Value = f32;
    const NAME: &'static str = "ppr";
    const ALWAYS_ACTIVE: bool = true;

    fn init(&self, v: VertexId, _g: &Csr) -> (f32, bool) {
        // All mass starts at the source; everything else holds zero until
        // rank flows in.
        (if v == self.source { 1.0 } else { 0.0 }, true)
    }

    fn generate<S: MsgSink<f32>>(&self, v: VertexId, ctx: &mut GenContext<'_, f32, S>) {
        let deg = ctx.graph.out_degree(v);
        if deg == 0 {
            return;
        }
        let share = *ctx.value(v) / deg as f32;
        if share == 0.0 {
            return;
        }
        let g = ctx.graph;
        for e in g.edge_range(v) {
            ctx.send(g.targets[e], share);
        }
    }

    fn update(&self, v: VertexId, sum: f32, value: &mut f32, _g: &Csr) -> bool {
        *value = self.teleport(v) + self.damping * sum;
        true
    }

    fn max_supersteps(&self) -> Option<usize> {
        Some(self.iterations)
    }

    /// Mass-conservation audit: ranks finite and non-negative, the source
    /// holds at least its teleport mass, and (at full stride) total mass
    /// never exceeds the single unit injected at the source.
    fn audit_step(
        &self,
        _step: usize,
        _prev: &[f32],
        cur: &[f32],
        stride: usize,
    ) -> Option<String> {
        for i in (0..cur.len()).step_by(stride.max(1)) {
            let v = cur[i];
            if !v.is_finite() {
                return Some(format!("ppr: vertex {i} rank is {v}"));
            }
            if v < 0.0 {
                return Some(format!("ppr: vertex {i} rank {v} is negative"));
            }
            if v > 1.001 {
                return Some(format!("ppr: vertex {i} rank {v} exceeds total mass 1"));
            }
        }
        if stride.max(1) == 1 {
            let total: f64 = cur.iter().map(|&v| v as f64).sum();
            if total > 1.001 {
                return Some(format!("ppr: total mass {total} exceeds 1"));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_core::engine::{run_single, EngineConfig};
    use phigraph_device::DeviceSpec;
    use phigraph_graph::generators::small::cycle;
    use phigraph_graph::EdgeList;

    /// Dense power iteration over the same recurrence, as ground truth.
    fn ppr_reference(g: &Csr, source: VertexId, damping: f32, iters: usize) -> Vec<f32> {
        let n = g.num_vertices();
        let mut rank: Vec<f32> = (0..n)
            .map(|v| if v as VertexId == source { 1.0 } else { 0.0 })
            .collect();
        for _ in 0..iters {
            let mut sums = vec![0.0f32; n];
            let mut received = vec![false; n];
            for v in 0..n as VertexId {
                let deg = g.out_degree(v);
                if deg == 0 {
                    continue;
                }
                let share = rank[v as usize] / deg as f32;
                // Zero shares are not sent (matching `generate`): their
                // targets keep their value this iteration.
                if share == 0.0 {
                    continue;
                }
                for e in g.edge_range(v) {
                    sums[g.targets[e] as usize] += share;
                    received[g.targets[e] as usize] = true;
                }
            }
            for v in 0..n {
                // Update-on-receipt: vertices with no inbound messages
                // keep their value (the engines' semantics).
                if received[v] {
                    let tele = if v as VertexId == source {
                        1.0 - damping
                    } else {
                        0.0
                    };
                    rank[v] = tele + damping * sums[v];
                }
            }
        }
        rank
    }

    #[test]
    fn matches_dense_reference() {
        let mut el = EdgeList::new(6);
        for (s, d) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 0)] {
            el.push(s, d);
        }
        let g = Csr::from_edge_list(&el);
        let ppr = PersonalizedPageRank {
            source: 2,
            damping: 0.85,
            iterations: 12,
        };
        let out = run_single(
            &ppr,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        let expect = ppr_reference(&g, 2, 0.85, 12);
        for (i, (&x, &y)) in out.values.iter().zip(&expect).enumerate() {
            assert!((x - y).abs() < 1e-4, "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn rank_decays_with_distance_from_source() {
        let g = cycle(8);
        let ppr = PersonalizedPageRank {
            source: 0,
            damping: 0.85,
            iterations: 40,
        };
        let out = run_single(
            &ppr,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        // On a directed cycle, rank falls geometrically with hop distance
        // downstream of the teleport target's successor.
        assert!(out.values[0] > out.values[4]);
        for v in 1..7 {
            assert!(
                out.values[v] > out.values[v + 1],
                "rank should decay along the cycle: v{} {} vs v{} {}",
                v,
                out.values[v],
                v + 1,
                out.values[v + 1]
            );
        }
    }

    #[test]
    fn different_sources_rank_different_vertices_first() {
        let g = cycle(6);
        let run = |source| {
            run_single(
                &PersonalizedPageRank {
                    source,
                    damping: 0.85,
                    iterations: 30,
                },
                &g,
                DeviceSpec::xeon_e5_2680(),
                &EngineConfig::locking(),
            )
            .values
        };
        let a = run(0);
        let b = run(3);
        let top = |vals: &[f32]| {
            vals.iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
                .unwrap()
                .0
        };
        assert_eq!(top(&a), 0);
        assert_eq!(top(&b), 3);
    }

    #[test]
    fn engine_modes_agree() {
        let g = cycle(12);
        let ppr = PersonalizedPageRank {
            source: 5,
            damping: 0.85,
            iterations: 15,
        };
        let spec = DeviceSpec::xeon_e5_2680();
        let lock = run_single(&ppr, &g, spec.clone(), &EngineConfig::locking());
        let pipe = run_single(&ppr, &g, spec.clone(), &EngineConfig::pipelined());
        let seq = run_single(&ppr, &g, spec, &EngineConfig::sequential());
        for v in 0..g.num_vertices() {
            assert!((lock.values[v] - pipe.values[v]).abs() < 1e-5);
            assert!((lock.values[v] - seq.values[v]).abs() < 1e-5);
        }
    }
}
