//! Weakly Connected Components via label propagation.
//!
//! Not one of the paper's five evaluation applications, but squarely in its
//! motivating class (the introduction cites connected-components work
//! [Hirschberg et al.] as target graph mining): every vertex starts with its
//! own id as label and propagates the minimum label seen; min-reduction is
//! associative and commutative, so the CSB's SIMD path applies unchanged.
//! Weak connectivity is computed by propagating along both edge directions,
//! which the program does by reading the precomputed transpose.

use phigraph_core::api::{GenContext, MsgSink, VertexProgram};
use phigraph_graph::{Csr, VertexId};
use phigraph_simd::Min;

/// The WCC vertex program. Holds the transpose so labels flow against edge
/// direction too (weak connectivity on a directed graph).
#[derive(Clone, Debug)]
pub struct Wcc {
    reverse: Csr,
}

impl Wcc {
    /// Prepare the program for `g` (builds the transpose once).
    pub fn new(g: &Csr) -> Self {
        Wcc {
            reverse: g.transpose(),
        }
    }
}

impl VertexProgram for Wcc {
    type Msg = i32;
    type Reduce = Min;
    type Value = i32;
    const NAME: &'static str = "wcc";

    fn init(&self, v: VertexId, _g: &Csr) -> (i32, bool) {
        (v as i32, true)
    }

    fn generate<S: MsgSink<i32>>(&self, v: VertexId, ctx: &mut GenContext<'_, i32, S>) {
        let label = *ctx.value(v);
        let g = ctx.graph;
        for e in g.edge_range(v) {
            ctx.send(g.targets[e], label);
        }
        for &u in self.reverse.neighbors(v) {
            ctx.send(u, label);
        }
    }

    fn update(&self, _v: VertexId, msg: i32, value: &mut i32, _g: &Csr) -> bool {
        if msg < *value {
            *value = msg;
            true
        } else {
            false
        }
    }

    fn capacity_hint(&self, v: VertexId, g: &Csr) -> Option<u32> {
        // Labels arrive along in-edges (forward sends) and out-edges
        // (reverse sends).
        Some(self.reverse.out_degree(v) as u32 + g.out_degree(v) as u32)
    }

    /// Label audit: labels only ever *decrease* (min-propagation), stay
    /// non-negative, and never exceed the vertex's own id (every vertex
    /// starts at its id and min-reduces downward).
    fn audit_step(&self, _step: usize, prev: &[i32], cur: &[i32], stride: usize) -> Option<String> {
        for i in (0..cur.len()).step_by(stride.max(1)) {
            let (p, c) = (prev[i], cur[i]);
            if c < 0 {
                return Some(format!("wcc: vertex {i} label is negative ({c})"));
            }
            if c > p {
                return Some(format!("wcc: vertex {i} label rose {p} -> {c}"));
            }
            if c > i as i32 {
                return Some(format!("wcc: vertex {i} label {c} exceeds its own id"));
            }
        }
        None
    }
}

/// Count distinct components in a WCC labelling.
pub fn component_count(labels: &[i32]) -> usize {
    let mut distinct: Vec<i32> = labels.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    distinct.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::wcc::wcc_reference;
    use phigraph_core::engine::{run_single, EngineConfig};
    use phigraph_device::DeviceSpec;
    use phigraph_graph::generators::erdos_renyi::gnm;
    use phigraph_graph::generators::small::{chain, cycle};
    use phigraph_graph::EdgeList;

    #[test]
    fn single_chain_is_one_component() {
        let g = chain(10);
        let out = run_single(
            &Wcc::new(&g),
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        assert!(out.values.iter().all(|&l| l == 0));
        assert_eq!(component_count(&out.values), 1);
    }

    #[test]
    fn disjoint_pieces_get_distinct_labels() {
        let mut el = EdgeList::new(7);
        el.push(0, 1);
        el.push(1, 2);
        el.push(3, 4);
        // 5, 6 isolated
        let g = phigraph_graph::Csr::from_edge_list(&el);
        let out = run_single(
            &Wcc::new(&g),
            &g,
            DeviceSpec::xeon_phi_se10p(),
            &EngineConfig::pipelined().with_host_threads(4),
        );
        assert_eq!(out.values[..3], [0, 0, 0]);
        assert_eq!(out.values[3..5], [3, 3]);
        assert_eq!(out.values[5], 5);
        assert_eq!(out.values[6], 6);
        assert_eq!(component_count(&out.values), 4);
    }

    #[test]
    fn weak_connectivity_crosses_edge_direction() {
        // 0 -> 1 <- 2: weakly one component even though 2 is unreachable
        // from 0 along directed edges.
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push(2, 1);
        let g = phigraph_graph::Csr::from_edge_list(&el);
        let out = run_single(
            &Wcc::new(&g),
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        assert_eq!(out.values, vec![0, 0, 0]);
    }

    #[test]
    fn matches_union_find_reference_on_random_graph() {
        let g = gnm(400, 700, 5); // sparse: several components
        let out = run_single(
            &Wcc::new(&g),
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        let expect = wcc_reference(&g);
        assert_eq!(out.values, expect);
    }

    #[test]
    fn cycle_converges_to_min_id() {
        let g = cycle(6);
        let out = run_single(
            &Wcc::new(&g),
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::flat(),
        );
        assert!(out.values.iter().all(|&l| l == 0));
    }
}
