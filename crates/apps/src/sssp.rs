//! Single-Source Shortest Paths — the paper's running example (§III,
//! Listing 1): distance initialized to a large constant except the source;
//! relaxation expressed as generate (distance + edge weight along
//! out-edges), min-reduce (SIMD), and conditional update.

use phigraph_core::api::{GenContext, MsgSink, VertexProgram};
use phigraph_graph::{Csr, VertexId};
use phigraph_simd::Min;

/// The SSSP vertex program ("applied to a positive weighted directed
/// graph").
#[derive(Clone, Debug)]
pub struct Sssp {
    /// Source vertex.
    pub source: VertexId,
}

impl VertexProgram for Sssp {
    type Msg = f32;
    type Reduce = Min;
    type Value = f32;
    const NAME: &'static str = "sssp";

    fn init(&self, v: VertexId, _g: &Csr) -> (f32, bool) {
        if v == self.source {
            (0.0, true)
        } else {
            (f32::INFINITY, false)
        }
    }

    fn generate<S: MsgSink<f32>>(&self, v: VertexId, ctx: &mut GenContext<'_, f32, S>) {
        // Listing 1: send my_dist + edge weight along every out-edge.
        let my_dist = *ctx.value(v);
        let g = ctx.graph;
        for e in g.edge_range(v) {
            ctx.send(g.targets[e], my_dist + g.weight(e));
        }
    }

    fn update(&self, _v: VertexId, msg: f32, value: &mut f32, _g: &Csr) -> bool {
        // Listing 1: distance changed => active (will send msgs).
        if msg < *value {
            *value = msg;
            true
        } else {
            false
        }
    }

    /// Distance-monotonicity audit: relaxation only ever *lowers* a
    /// distance, distances are non-negative (positive weights), never NaN,
    /// and the source stays at 0.
    fn audit_step(&self, _step: usize, prev: &[f32], cur: &[f32], stride: usize) -> Option<String> {
        for i in (0..cur.len()).step_by(stride.max(1)) {
            let (p, c) = (prev[i], cur[i]);
            if c.is_nan() || c < 0.0 {
                return Some(format!("sssp: vertex {i} distance is {c}"));
            }
            // `c` is known non-NaN here, so this is exactly `!(c <= p)`:
            // a rise, or an incomparable (NaN) previous value.
            if c > p || p.is_nan() {
                return Some(format!("sssp: vertex {i} distance rose {p} -> {c}"));
            }
        }
        let s = self.source as usize;
        if s < cur.len() && cur[s] != 0.0 {
            return Some(format!("sssp: source distance drifted to {}", cur[s]));
        }
        None
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::reference::sssp::dijkstra_reference;
    use phigraph_core::engine::{run_single, EngineConfig};
    use phigraph_device::DeviceSpec;
    use phigraph_graph::generators::erdos_renyi::gnm;
    use phigraph_graph::generators::small::weighted_diamond;
    use phigraph_graph::Csr;

    fn weighted_random(n: usize, m: usize, seed: u64) -> Csr {
        let g = gnm(n, m, seed);
        let mut el = g.to_edge_list();
        el.randomize_weights(0.1, 10.0, seed + 1);
        Csr::from_edge_list(&el)
    }

    #[test]
    fn diamond_distances() {
        let g = weighted_diamond();
        let out = run_single(
            &Sssp { source: 0 },
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        assert_eq!(out.values, vec![0.0, 1.0, 5.0, 2.0]);
    }

    #[test]
    fn matches_dijkstra_on_random_weighted_graph() {
        let g = weighted_random(400, 3000, 3);
        let out = run_single(
            &Sssp { source: 0 },
            &g,
            DeviceSpec::xeon_phi_se10p(),
            &EngineConfig::locking(),
        );
        let expect = dijkstra_reference(&g, 0);
        for v in 0..g.num_vertices() {
            let (a, b) = (out.values[v], expect[v]);
            if a.is_infinite() || b.is_infinite() {
                assert_eq!(a.is_infinite(), b.is_infinite(), "vertex {v}");
            } else {
                assert!((a - b).abs() < 1e-3, "vertex {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn scalar_and_simd_processing_agree() {
        let g = weighted_random(300, 2500, 9);
        let simd = run_single(
            &Sssp { source: 2 },
            &g,
            DeviceSpec::xeon_phi_se10p(),
            &EngineConfig::locking().with_vectorized(true),
        );
        let scalar = run_single(
            &Sssp { source: 2 },
            &g,
            DeviceSpec::xeon_phi_se10p(),
            &EngineConfig::locking().with_vectorized(false),
        );
        assert_eq!(simd.values, scalar.values);
        // And the cost model must say SIMD processing was faster.
        assert!(simd.report.sim_process() < scalar.report.sim_process());
    }
}
