//! Reference topological levels via Kahn's algorithm.

use phigraph_graph::{Csr, VertexId};
use std::collections::VecDeque;

/// Ready-level per vertex (`level[v]` = longest path from any source to
/// `v`), or `None` if the graph has a cycle. This is exactly the level the
/// BSP TopoSort converges to: a vertex becomes ready one superstep after
/// its last predecessor.
pub fn kahn_levels(g: &Csr) -> Option<Vec<u32>> {
    let n = g.num_vertices();
    let mut indeg = g.in_degrees();
    let mut level = vec![0u32; n];
    let mut q: VecDeque<VertexId> = (0..n as VertexId)
        .filter(|&v| indeg[v as usize] == 0)
        .collect();
    let mut seen = 0usize;
    while let Some(v) = q.pop_front() {
        seen += 1;
        for &u in g.neighbors(v) {
            let u = u as usize;
            level[u] = level[u].max(level[v as usize] + 1);
            indeg[u] -= 1;
            if indeg[u] == 0 {
                q.push_back(u as VertexId);
            }
        }
    }
    (seen == n).then_some(level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::dag::{layered_dag, DagConfig};
    use phigraph_graph::generators::small::{chain, cycle};

    #[test]
    fn chain_levels_are_positions() {
        let l = kahn_levels(&chain(5)).unwrap();
        assert_eq!(l, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cycles_are_rejected() {
        assert!(kahn_levels(&cycle(3)).is_none());
    }

    #[test]
    fn levels_respect_edges_on_random_dag() {
        let g = layered_dag(&DagConfig {
            num_vertices: 300,
            layers: 6,
            avg_out_degree: 5,
            fan_in_concentration: 0.3,
            seed: 2,
        });
        let l = kahn_levels(&g).unwrap();
        for (s, d) in g.edge_iter() {
            assert!(l[s as usize] < l[d as usize]);
        }
    }
}
