//! Reference BFS (frontier queue).

use phigraph_graph::{Csr, VertexId};
use std::collections::VecDeque;

/// Levels from `source`; `-1` for unreachable vertices.
pub fn bfs_reference(g: &Csr, source: VertexId) -> Vec<i32> {
    let mut level = vec![-1i32; g.num_vertices()];
    let mut q = VecDeque::new();
    level[source as usize] = 0;
    q.push_back(source);
    while let Some(v) = q.pop_front() {
        for &u in g.neighbors(v) {
            if level[u as usize] < 0 {
                level[u as usize] = level[v as usize] + 1;
                q.push_back(u);
            }
        }
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::small::{chain, cycle};

    #[test]
    fn chain_levels() {
        assert_eq!(bfs_reference(&chain(4), 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cycle_wraps() {
        assert_eq!(bfs_reference(&cycle(4), 2), vec![2, 3, 0, 1]);
    }

    #[test]
    fn unreachable_is_minus_one() {
        assert_eq!(bfs_reference(&chain(3), 2), vec![-1, -1, 0]);
    }
}
