//! Reference k-core via sequential peeling.

use phigraph_graph::{Csr, VertexId};
use std::collections::VecDeque;

/// Vertices of the k-core (undirected degrees), ascending.
pub fn kcore_reference(g: &Csr, k: u32) -> Vec<VertexId> {
    let n = g.num_vertices();
    let rev = g.transpose();
    let mut degree: Vec<u32> = (0..n as VertexId)
        .map(|v| (g.out_degree(v) + rev.out_degree(v)) as u32)
        .collect();
    let mut alive = vec![true; n];
    let mut queue: VecDeque<VertexId> = (0..n as VertexId)
        .filter(|&v| degree[v as usize] < k)
        .collect();
    for &v in &queue {
        alive[v as usize] = false;
    }
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v).iter().chain(rev.neighbors(v)) {
            let u = u as usize;
            if alive[u] {
                degree[u] -= 1;
                if degree[u] < k {
                    alive[u] = false;
                    queue.push_back(u as VertexId);
                }
            }
        }
    }
    (0..n as VertexId).filter(|&v| alive[v as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::small::{complete, cycle};

    #[test]
    fn cycle_is_its_own_2core() {
        // Directed cycle: undirected degree 2 everywhere.
        let c = kcore_reference(&cycle(6), 2);
        assert_eq!(c.len(), 6);
        assert!(kcore_reference(&cycle(6), 3).is_empty());
    }

    #[test]
    fn complete_graph_cores() {
        let g = complete(4); // undirected degree 6
        assert_eq!(kcore_reference(&g, 6).len(), 4);
        assert!(kcore_reference(&g, 7).is_empty());
    }
}
