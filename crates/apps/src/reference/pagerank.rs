//! Reference PageRank with exactly the framework's message semantics: a
//! vertex's value is updated in an iteration iff it received at least one
//! message (i.e. has an in-edge from a sending vertex).

use phigraph_graph::Csr;

/// Run `iterations` of message-passing PageRank. Vertices without in-edges
/// keep their initial value (they never receive messages), matching the
/// paper's formulation.
pub fn pagerank_reference(g: &Csr, damping: f32, iterations: usize) -> Vec<f32> {
    let n = g.num_vertices();
    let mut rank = vec![1.0f32; n];
    let mut incoming = vec![0.0f32; n];
    let mut got = vec![false; n];
    for _ in 0..iterations {
        incoming.fill(0.0);
        got.fill(false);
        for v in 0..n as u32 {
            let deg = g.out_degree(v);
            if deg == 0 {
                continue;
            }
            let share = rank[v as usize] / deg as f32;
            for &t in g.neighbors(v) {
                incoming[t as usize] += share;
                got[t as usize] = true;
            }
        }
        for v in 0..n {
            if got[v] {
                rank[v] = (1.0 - damping) + damping * incoming[v];
            }
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::small::{cycle, star};

    #[test]
    fn cycle_converges_to_one() {
        let r = pagerank_reference(&cycle(5), 0.85, 50);
        for v in r {
            assert!((v - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn star_leaves_lose_rank() {
        let r = pagerank_reference(&star(5), 0.85, 10);
        assert_eq!(r[0], 1.0);
        for &leaf in &r[1..] {
            assert!((leaf - (0.15 + 0.85 * 0.25)).abs() < 1e-6);
        }
    }

    #[test]
    fn rank_mass_is_finite_and_positive() {
        let g = phigraph_graph::generators::erdos_renyi::gnm(100, 600, 4);
        let r = pagerank_reference(&g, 0.85, 30);
        assert!(r.iter().all(|&x| x.is_finite() && x > 0.0));
    }
}
