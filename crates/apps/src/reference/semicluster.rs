//! Reference Semi-Clustering: a direct single-threaded BSP loop reusing the
//! cluster arithmetic of [`crate::semicluster`], with an explicit mailbox
//! array. Independent of the engines, so it can arbitrate between them.

use crate::semicluster::{SemiCluster, SemiClustering};
use phigraph_core::engine::obj::ObjVertexProgram;
use phigraph_graph::Csr;

/// Run Semi-Clustering sequentially and return the per-vertex cluster
/// lists.
pub fn semicluster_reference(sc: &SemiClustering, g: &Csr) -> Vec<Vec<SemiCluster>> {
    let n = g.num_vertices();
    let mut values: Vec<Vec<SemiCluster>> = Vec::with_capacity(n);
    let mut active = Vec::with_capacity(n);
    for v in 0..n as u32 {
        let (val, act) = sc.init(v, g);
        values.push(val);
        active.push(act);
    }
    for _ in 0..sc.iterations {
        let mut mailboxes: Vec<Vec<Vec<SemiCluster>>> = vec![Vec::new(); n];
        let mut any = false;
        for v in 0..n as u32 {
            if !active[v as usize] {
                continue;
            }
            sc.generate(v, g, &values, &mut |dst, msg| {
                mailboxes[dst as usize].push(msg);
                any = true;
            });
        }
        active.fill(false);
        if !any {
            break;
        }
        for v in 0..n {
            if mailboxes[v].is_empty() {
                continue;
            }
            let msgs = std::mem::take(&mut mailboxes[v]);
            active[v] = sc.update(v as u32, msgs, &mut values[v], g);
        }
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_core::engine::obj::run_obj_single;
    use phigraph_core::engine::EngineConfig;
    use phigraph_device::DeviceSpec;
    use phigraph_graph::generators::community::{community_graph, CommunityConfig};

    #[test]
    fn reference_agrees_with_engine() {
        let (g, _) = community_graph(&CommunityConfig {
            num_vertices: 150,
            num_communities: 5,
            intra_degree: 6,
            inter_degree: 0.4,
            weighted: true,
            seed: 7,
        });
        let sc = SemiClustering::default();
        let reference = semicluster_reference(&sc, &g);
        let engine = run_obj_single(
            &sc,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        assert_eq!(reference, engine.values);
    }
}
