//! Sequential reference implementations, used as correctness oracles for
//! every engine and as the Table II "Seq" baselines' ground truth.

pub mod bfs;
pub mod kcore;
pub mod pagerank;
pub mod semicluster;
pub mod sssp;
pub mod toposort;
pub mod wcc;
