//! Reference weakly-connected components via union-find, labelled with the
//! minimum vertex id per component (the label-propagation fixed point).

use phigraph_graph::Csr;

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Root at the smaller id so labels match label propagation.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi as usize] = lo;
        }
    }
}

/// Minimum-id component label per vertex.
pub fn wcc_reference(g: &Csr) -> Vec<i32> {
    let mut uf = UnionFind::new(g.num_vertices());
    for (s, d) in g.edge_iter() {
        uf.union(s, d);
    }
    (0..g.num_vertices() as u32)
        .map(|v| uf.find(v) as i32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::small::chain;
    use phigraph_graph::EdgeList;

    #[test]
    fn chain_collapses_to_zero() {
        assert_eq!(wcc_reference(&chain(5)), vec![0; 5]);
    }

    #[test]
    fn labels_are_component_minima() {
        let mut el = EdgeList::new(6);
        el.push(4, 2);
        el.push(2, 5);
        el.push(1, 3);
        let g = phigraph_graph::Csr::from_edge_list(&el);
        let labels = wcc_reference(&g);
        assert_eq!(labels, vec![0, 1, 2, 1, 2, 2]);
    }
}
