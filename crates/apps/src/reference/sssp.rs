//! Reference SSSP: binary-heap Dijkstra (valid because the paper's SSSP is
//! "applied to a positive weighted directed graph").

use phigraph_graph::{Csr, VertexId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct HeapItem {
    dist: f32,
    v: VertexId,
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, o: &Self) -> Ordering {
        // Min-heap by distance.
        o.dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then(o.v.cmp(&self.v))
    }
}

/// Shortest distances from `source` (`f32::INFINITY` when unreachable).
pub fn dijkstra_reference(g: &Csr, source: VertexId) -> Vec<f32> {
    let mut dist = vec![f32::INFINITY; g.num_vertices()];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(HeapItem {
        dist: 0.0,
        v: source,
    });
    while let Some(HeapItem { dist: d, v }) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for e in g.edge_range(v) {
            let u = g.targets[e];
            let nd = d + g.weight(e);
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(HeapItem { dist: nd, v: u });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::small::{chain, weighted_diamond};

    #[test]
    fn diamond() {
        assert_eq!(
            dijkstra_reference(&weighted_diamond(), 0),
            vec![0.0, 1.0, 5.0, 2.0]
        );
    }

    #[test]
    fn chain_unit_weights() {
        assert_eq!(dijkstra_reference(&chain(4), 0), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let d = dijkstra_reference(&chain(3), 1);
        assert!(d[0].is_infinite());
        assert_eq!(d[1], 0.0);
    }
}
