//! Workload builders for the evaluation — the synthetic stand-ins for the
//! paper's datasets (see DESIGN.md §2), at sizes scaled from "fills a Xeon
//! Phi" to "fits a laptop benchmark budget".

use phigraph_graph::generators::community::{community_graph, CommunityConfig};
use phigraph_graph::generators::dag::{layered_dag, DagConfig};
use phigraph_graph::generators::rmat::{rmat, RmatConfig};
use phigraph_graph::Csr;

/// Workload scale presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test sized (sub-second everything).
    Tiny,
    /// Default bench size (seconds per experiment).
    Small,
    /// Larger runs for the reproduction harness.
    Medium,
}

impl Scale {
    /// Parse from harness arguments.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            _ => None,
        }
    }
}

/// Pokec-like power-law graph (the PageRank/BFS/SSSP input): RMAT with
/// front-loaded hubs. Pokec is 1.6M vertices / 31M edges; these are scaled
/// replicas with the same degree skew and id-ordering property.
pub fn pokec_like(scale: Scale, seed: u64) -> Csr {
    let (s, ef) = match scale {
        Scale::Tiny => (10, 8),
        Scale::Small => (14, 12),
        Scale::Medium => (16, 16),
    };
    // Keep hub concentration Pokec-like: max degree a small multiple of
    // the mean rather than a fixed fraction of all edges (see RmatConfig).
    let cap = (ef as u32) * 12;
    rmat(&RmatConfig {
        scale: s,
        edge_factor: ef,
        degree_cap: Some(cap),
        seed,
        ..Default::default()
    })
}

/// Pokec-like graph with random positive edge weights (the SSSP input:
/// "we randomly generated weight value for each edge").
pub fn pokec_like_weighted(scale: Scale, seed: u64) -> Csr {
    let g = pokec_like(scale, seed);
    let mut el = g.to_edge_list();
    el.randomize_weights(0.1, 10.0, seed ^ 0xFEED);
    Csr::from_edge_list(&el)
}

/// DBLP-like community graph (the Semi-Clustering input): mirrored edges,
/// dense collaboration clusters. DBLP is 436K vertices / 1.1M edges.
pub fn dblp_like(scale: Scale, seed: u64) -> (Csr, Vec<u32>) {
    let (n, k) = match scale {
        Scale::Tiny => (400, 10),
        Scale::Small => (6_000, 120),
        Scale::Medium => (40_000, 800),
    };
    community_graph(&CommunityConfig {
        num_vertices: n,
        num_communities: k,
        intra_degree: 6,
        inter_degree: 0.5,
        weighted: true,
        seed,
    })
}

/// Dense layered DAG (the TopoSort input): few vertices, many edges, hot
/// fan-in destinations. The paper's DAG is 40K vertices / 200M edges
/// (edge factor 5000!); these replicas keep the vertex:edge imbalance and
/// fan-in concentration at tractable sizes.
pub fn toposort_dag(scale: Scale, seed: u64) -> Csr {
    let (n, deg) = match scale {
        Scale::Tiny => (500, 32),
        Scale::Small => (4_000, 256),
        Scale::Medium => (10_000, 1024),
    };
    layered_dag(&DagConfig {
        num_vertices: n,
        layers: 20,
        avg_out_degree: deg,
        fan_in_concentration: 0.7,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::dag::is_dag;
    use phigraph_graph::DegreeStats;

    #[test]
    fn pokec_like_is_skewed_and_front_loaded() {
        let g = pokec_like(Scale::Tiny, 1);
        let s = DegreeStats::out_degrees(&g);
        assert!(s.cv > 1.0);
        let d = g.out_degrees();
        assert!(d[0] >= d[d.len() - 1]);
    }

    #[test]
    fn weighted_variant_has_positive_weights() {
        let g = pokec_like_weighted(Scale::Tiny, 2);
        let w = g.weights.as_ref().unwrap();
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn dblp_like_is_symmetric() {
        let (g, labels) = dblp_like(Scale::Tiny, 3);
        assert!(phigraph_graph::validation::is_symmetric(&g));
        assert_eq!(labels.len(), g.num_vertices());
    }

    #[test]
    fn toposort_dag_is_dense_and_acyclic() {
        let g = toposort_dag(Scale::Tiny, 4);
        assert!(is_dag(&g));
        assert!(
            g.num_edges() > 10 * g.num_vertices(),
            "DAG should be edge-dense: {} edges / {} vertices",
            g.num_edges(),
            g.num_vertices()
        );
    }

    #[test]
    fn scales_are_ordered() {
        let t = pokec_like(Scale::Tiny, 1).num_edges();
        let s = pokec_like(Scale::Small, 1).num_edges();
        assert!(s > 4 * t);
    }
}
