//! Breadth-First Search (§V.B): "initially, the source vertex is set as
//! active, and its vertex value, level, is 0 … active vertices send their
//! level value plus 1 as messages to neighbors. Unvisited vertices which
//! receive messages set their level, using any message that is received …
//! message reduction is not needed."

use phigraph_core::api::{GenContext, MsgSink, VertexProgram};
use phigraph_graph::{Csr, VertexId};
use phigraph_simd::Min;

/// Sentinel level for unvisited vertices.
pub const UNVISITED: i32 = -1;

/// The BFS vertex program.
#[derive(Clone, Debug)]
pub struct Bfs {
    /// Traversal root.
    pub source: VertexId,
}

impl VertexProgram for Bfs {
    type Msg = i32;
    // All messages arriving at a vertex in one superstep carry the same
    // level, so "any message" and min-reduction coincide; the paper runs
    // BFS through the scalar path ("neither OpenMP or framework use SIMD
    // for message processing" for BFS), which SIMD_REDUCIBLE = false
    // selects.
    type Reduce = Min;
    type Value = i32;
    const NAME: &'static str = "bfs";
    const SIMD_REDUCIBLE: bool = false;

    fn init(&self, v: VertexId, _g: &Csr) -> (i32, bool) {
        if v == self.source {
            (0, true)
        } else {
            (UNVISITED, false)
        }
    }

    fn generate<S: MsgSink<i32>>(&self, v: VertexId, ctx: &mut GenContext<'_, i32, S>) {
        let next = *ctx.value(v) + 1;
        let g = ctx.graph;
        for e in g.edge_range(v) {
            ctx.send(g.targets[e], next);
        }
    }

    fn update(&self, _v: VertexId, level: i32, value: &mut i32, _g: &Csr) -> bool {
        if *value == UNVISITED {
            *value = level;
            true
        } else {
            false
        }
    }

    /// Level-monotonicity audit: a visited vertex's level is frozen
    /// forever, levels are never below [`UNVISITED`], and the source stays
    /// at level 0.
    fn audit_step(&self, _step: usize, prev: &[i32], cur: &[i32], stride: usize) -> Option<String> {
        for i in (0..cur.len()).step_by(stride.max(1)) {
            let (p, c) = (prev[i], cur[i]);
            if c < UNVISITED {
                return Some(format!("bfs: vertex {i} level is {c}"));
            }
            if p != UNVISITED && c != p {
                return Some(format!("bfs: visited vertex {i} level moved {p} -> {c}"));
            }
        }
        let s = self.source as usize;
        if s < cur.len() && cur[s] != 0 {
            return Some(format!("bfs: source level drifted to {}", cur[s]));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::bfs::bfs_reference;
    use phigraph_core::engine::{run_single, EngineConfig};
    use phigraph_device::DeviceSpec;
    use phigraph_graph::generators::erdos_renyi::gnm;
    use phigraph_graph::generators::small::{chain, paper_example, star};

    #[test]
    fn chain_levels() {
        let g = chain(10);
        let out = run_single(
            &Bfs { source: 0 },
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        let expect: Vec<i32> = (0..10).collect();
        assert_eq!(out.values, expect);
    }

    #[test]
    fn star_is_one_hop() {
        let g = star(6);
        let out = run_single(
            &Bfs { source: 0 },
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        assert_eq!(out.values, vec![0, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn unreachable_vertices_stay_unvisited() {
        let g = chain(5);
        let out = run_single(
            &Bfs { source: 3 },
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        assert_eq!(out.values, vec![UNVISITED, UNVISITED, UNVISITED, 0, 1]);
    }

    #[test]
    fn matches_reference_on_random_graph() {
        let g = gnm(300, 1500, 17);
        let out = run_single(
            &Bfs { source: 5 },
            &g,
            DeviceSpec::xeon_phi_se10p(),
            &EngineConfig::pipelined().with_host_threads(4),
        );
        assert_eq!(out.values, bfs_reference(&g, 5));
    }

    #[test]
    fn paper_example_levels() {
        let g = paper_example();
        let out = run_single(
            &Bfs { source: 1 },
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        assert_eq!(out.values, bfs_reference(&g, 1));
        // Spot checks: 1 -> {0,2,5}; 2 -> {3,7}; 0 -> {4,...}.
        assert_eq!(out.values[1], 0);
        assert_eq!(out.values[0], 1);
        assert_eq!(out.values[2], 1);
        assert_eq!(out.values[3], 2);
        assert_eq!(out.values[4], 2);
    }
}
