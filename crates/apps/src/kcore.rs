//! k-core decomposition (fixed k): iterated peeling of vertices whose
//! degree falls below `k`.
//!
//! Another application in the paper's motivating graph-mining class
//! (cohesive-subgraph mining, cf. the CSV citation [37]): the k-core of a
//! graph is its maximal subgraph where every vertex has degree ≥ k within
//! the subgraph. The BSP formulation is message-driven peeling: a removed
//! vertex tells each neighbor to decrement its live degree; a vertex whose
//! live degree drops below `k` removes itself next superstep. Degrees are
//! undirected (in + out), so messages flow along both edge directions via
//! the precomputed transpose, with Sum reduction on SIMD lanes.

use phigraph_core::api::{GenContext, MsgSink, VertexProgram};
use phigraph_graph::{Csr, VertexId};
use phigraph_simd::Sum;

/// Per-vertex k-core state.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KCoreValue {
    /// Neighbors still alive (undirected degree).
    pub live_degree: u32,
    /// Whether the vertex survives in the k-core.
    pub alive: bool,
}

/// The fixed-k core-peeling program.
#[derive(Clone, Debug)]
pub struct KCore {
    /// The core order to extract.
    pub k: u32,
    reverse: Csr,
    undirected_degree: Vec<u32>,
}

impl KCore {
    /// Prepare the program for `g`.
    pub fn new(g: &Csr, k: u32) -> Self {
        let reverse = g.transpose();
        let undirected_degree = (0..g.num_vertices() as VertexId)
            .map(|v| (g.out_degree(v) + reverse.out_degree(v)) as u32)
            .collect();
        KCore {
            k,
            reverse,
            undirected_degree,
        }
    }

    fn send_removal<S: MsgSink<i32>>(&self, v: VertexId, ctx: &mut GenContext<'_, KCoreValue, S>) {
        let g = ctx.graph;
        for e in g.edge_range(v) {
            ctx.send(g.targets[e], 1);
        }
        for &u in self.reverse.neighbors(v) {
            ctx.send(u, 1);
        }
    }
}

impl VertexProgram for KCore {
    type Msg = i32;
    type Reduce = Sum;
    type Value = KCoreValue;
    const NAME: &'static str = "kcore";

    fn init(&self, v: VertexId, _g: &Csr) -> (KCoreValue, bool) {
        let deg = self.undirected_degree[v as usize];
        let doomed = deg < self.k;
        (
            KCoreValue {
                live_degree: deg,
                // A vertex below k at init is "removed"; it is active so it
                // announces its removal in superstep 0.
                alive: !doomed,
            },
            doomed,
        )
    }

    fn generate<S: MsgSink<i32>>(&self, v: VertexId, ctx: &mut GenContext<'_, KCoreValue, S>) {
        // Only freshly removed vertices are ever active.
        if !ctx.value(v).alive {
            self.send_removal(v, ctx);
        }
    }

    fn update(&self, _v: VertexId, removed: i32, value: &mut KCoreValue, _g: &Csr) -> bool {
        if !value.alive {
            return false; // already out; ignore further decrements
        }
        value.live_degree = value.live_degree.saturating_sub(removed as u32);
        if value.live_degree < self.k {
            value.alive = false;
            true // announce removal next superstep
        } else {
            false
        }
    }

    fn capacity_hint(&self, v: VertexId, _g: &Csr) -> Option<u32> {
        Some(self.undirected_degree[v as usize])
    }

    /// Peeling audit: removal is irreversible (`alive` goes true→false
    /// only), live degree is monotone non-increasing and bounded by the
    /// vertex's static undirected degree.
    fn audit_step(
        &self,
        _step: usize,
        prev: &[KCoreValue],
        cur: &[KCoreValue],
        stride: usize,
    ) -> Option<String> {
        for i in (0..cur.len()).step_by(stride.max(1)) {
            let (p, c) = (prev[i], cur[i]);
            if c.alive && !p.alive {
                return Some(format!("kcore: removed vertex {i} came back alive"));
            }
            if c.live_degree > p.live_degree {
                return Some(format!(
                    "kcore: vertex {i} live degree rose {} -> {}",
                    p.live_degree, c.live_degree
                ));
            }
            if c.live_degree > self.undirected_degree[i] {
                return Some(format!(
                    "kcore: vertex {i} live degree {} exceeds static degree {}",
                    c.live_degree, self.undirected_degree[i]
                ));
            }
        }
        None
    }
}

/// Vertices surviving in the k-core.
pub fn core_members(values: &[KCoreValue]) -> Vec<VertexId> {
    values
        .iter()
        .enumerate()
        .filter(|(_, v)| v.alive)
        .map(|(i, _)| i as VertexId)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::kcore::kcore_reference;
    use phigraph_core::engine::{run_single, EngineConfig};
    use phigraph_device::DeviceSpec;
    use phigraph_graph::generators::erdos_renyi::gnm;
    use phigraph_graph::generators::small::{complete, star};
    use phigraph_graph::EdgeList;

    fn run(g: &Csr, k: u32) -> Vec<VertexId> {
        let out = run_single(
            &KCore::new(g, k),
            g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        core_members(&out.values)
    }

    #[test]
    fn complete_graph_survives_up_to_its_degree() {
        let g = complete(5); // undirected degree 8 per vertex (both dirs)
        assert_eq!(run(&g, 8).len(), 5);
        assert_eq!(run(&g, 9).len(), 0);
    }

    #[test]
    fn star_collapses_under_peeling() {
        // Leaves have degree 1; removing them strands the center.
        let g = star(6);
        assert_eq!(run(&g, 2).len(), 0);
        assert_eq!(run(&g, 1).len(), 6);
    }

    #[test]
    fn triangle_with_tail_keeps_only_the_triangle() {
        let mut el = EdgeList::new(5);
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 4)] {
            el.push(a, b);
        }
        let g = Csr::from_edge_list(&el);
        // Undirected degree: triangle members have 2 within the triangle.
        assert_eq!(run(&g, 2), vec![0, 1, 2]);
    }

    #[test]
    fn matches_peeling_reference_on_random_graphs() {
        let g = gnm(300, 1800, 13);
        for k in [2u32, 4, 6] {
            let got = run(&g, k);
            let expect = kcore_reference(&g, k);
            assert_eq!(got, expect, "k={k}");
        }
    }

    #[test]
    fn engines_agree_on_kcore() {
        let g = gnm(200, 1400, 5);
        let program = KCore::new(&g, 5);
        let a = run_single(
            &program,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        let b = run_single(
            &program,
            &g,
            DeviceSpec::xeon_phi_se10p(),
            &EngineConfig::pipelined().with_host_threads(4),
        );
        let c = run_single(
            &program,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::sequential(),
        );
        assert_eq!(a.values, b.values);
        assert_eq!(a.values, c.values);
    }
}
