#![warn(missing_docs)]
//! The five applications the paper evaluates (§V.B), implemented on the
//! phigraph programming API, plus sequential reference implementations and
//! the synthetic workloads standing in for the paper's datasets.
//!
//! | App | Messages | Reduction | Notes |
//! |-----|----------|-----------|-------|
//! | [`PageRank`](pagerank::PageRank) | `f32` rank share | sum (SIMD) | fixed iterations, all vertices active |
//! | [`Bfs`](bfs::Bfs) | `i32` level | min (scalar — "message reduction is not needed") | frontier-driven |
//! | [`Sssp`](sssp::Sssp) | `f32` distance | min (SIMD) | the paper's running example |
//! | [`TopoSort`](toposort::TopoSort) | packed `i64` | custom count-sum ⊕ level-max (SIMD) | dense DAG, hot destinations |
//! | [`SemiClustering`](semicluster::SemiClustering) | cluster lists | sort/merge (object path) | not SIMD-reducible |
//! | [`Wcc`](wcc::Wcc) | `i32` label | min (SIMD) | extra app beyond the paper's five |
//! | [`KCore`](kcore::KCore) | `i32` removal count | sum (SIMD) | extra app: message-driven core peeling |
//! | [`PersonalizedPageRank`](ppr::PersonalizedPageRank) | `f32` rank share | sum (SIMD) | extra app: per-tenant serving query |

pub mod bfs;
pub mod kcore;
pub mod pagerank;
pub mod ppr;
pub mod reference;
pub mod semicluster;
pub mod sssp;
pub mod toposort;
pub mod wcc;
pub mod workloads;

pub use bfs::Bfs;
pub use kcore::KCore;
pub use pagerank::PageRank;
pub use ppr::PersonalizedPageRank;
pub use semicluster::SemiClustering;
pub use sssp::Sssp;
pub use toposort::TopoSort;
pub use wcc::Wcc;
