//! Topological Sorting (§V.B): "initially, vertices with zero in-degree are
//! set as active … active vertices send messages containing value 1 to
//! their neighbors, and set themselves as inactive. Vertices receiving
//! messages sum up the messages, and decrease their in-degree value using
//! the sum. If a vertex's in-degree becomes 0 … it sets itself as active."
//!
//! The ordering is materialized as a *level* per vertex (the superstep at
//! which it became ready): sorting by level is a valid topological order,
//! and levels are deterministic. Messages pack the count (summed) and the
//! sender's level + 1 (maxed) into one `i64` with a custom associative +
//! commutative [`ReduceOp`], so the reduction still runs on SIMD lanes.

use phigraph_core::api::{GenContext, MsgSink, VertexProgram};
use phigraph_graph::{Csr, VertexId};
use phigraph_simd::ReduceOp;

/// Packed TopoSort message: low 32 bits = predecessor count (sum-reduced),
/// high 32 bits = candidate level (max-reduced).
#[inline]
pub fn pack(count: u32, level: u32) -> i64 {
    ((level as i64) << 32) | count as i64
}

/// Unpack a TopoSort message.
#[inline]
pub fn unpack(msg: i64) -> (u32, u32) {
    (msg as u32, (msg >> 32) as u32)
}

/// Count-sum ⊕ level-max: associative and commutative on the packed
/// representation, so the runtime may lane-reduce it like any basic type.
pub struct CountSumLevelMax;

impl ReduceOp<i64> for CountSumLevelMax {
    const NAME: &'static str = "count-sum/level-max";
    #[inline(always)]
    fn identity() -> i64 {
        pack(0, 0)
    }
    #[inline(always)]
    fn apply(a: i64, b: i64) -> i64 {
        let (ca, la) = unpack(a);
        let (cb, lb) = unpack(b);
        pack(ca + cb, la.max(lb))
    }
}

/// Per-vertex TopoSort state.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TopoValue {
    /// In-edges not yet satisfied.
    pub remaining: u32,
    /// Ready level (0 for sources); meaningful once `remaining == 0`.
    pub level: u32,
}

/// The topological-sort vertex program. Holds the graph's in-degrees,
/// computed once at construction (per-`init` counting would be quadratic).
#[derive(Clone, Debug)]
pub struct TopoSort {
    indeg: Vec<u32>,
}

impl TopoSort {
    /// Prepare the program for `g`.
    pub fn new(g: &Csr) -> Self {
        TopoSort {
            indeg: g.in_degrees(),
        }
    }
}

impl VertexProgram for TopoSort {
    type Msg = i64;
    type Reduce = CountSumLevelMax;
    type Value = TopoValue;
    const NAME: &'static str = "toposort";

    fn init(&self, v: VertexId, _g: &Csr) -> (TopoValue, bool) {
        let indeg = self.indeg[v as usize];
        (
            TopoValue {
                remaining: indeg,
                level: 0,
            },
            indeg == 0,
        )
    }

    fn generate<S: MsgSink<i64>>(&self, v: VertexId, ctx: &mut GenContext<'_, TopoValue, S>) {
        let msg = pack(1, ctx.value(v).level + 1);
        let g = ctx.graph;
        for e in g.edge_range(v) {
            ctx.send(g.targets[e], msg);
        }
    }

    fn update(&self, _v: VertexId, msg: i64, value: &mut TopoValue, _g: &Csr) -> bool {
        let (count, level) = unpack(msg);
        debug_assert!(count <= value.remaining, "more ready-signals than in-edges");
        value.remaining -= count;
        value.level = value.level.max(level);
        value.remaining == 0
    }
}

/// Check that `values` encodes a valid topological labelling of `g`: every
/// vertex became ready (`remaining == 0`) and every edge goes strictly
/// upward in level.
pub fn is_valid_topo(g: &Csr, values: &[TopoValue]) -> bool {
    values.iter().all(|v| v.remaining == 0)
        && g.edge_iter()
            .all(|(s, d)| values[s as usize].level < values[d as usize].level)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::reference::toposort::kahn_levels;
    use phigraph_core::engine::{run_single, EngineConfig};
    use phigraph_device::DeviceSpec;
    use phigraph_graph::generators::dag::{layered_dag, DagConfig};
    use phigraph_graph::generators::small::chain;

    #[test]
    fn pack_round_trip_and_reduce() {
        assert_eq!(unpack(pack(7, 9)), (7, 9));
        let r = CountSumLevelMax::apply(pack(2, 5), pack(3, 4));
        assert_eq!(unpack(r), (5, 5));
        assert_eq!(
            CountSumLevelMax::apply(CountSumLevelMax::identity(), pack(1, 3)),
            pack(1, 3)
        );
    }

    #[test]
    fn chain_levels_are_positions() {
        let g = chain(8);
        let out = run_single(
            &TopoSort::new(&g),
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        for (v, val) in out.values.iter().enumerate() {
            assert_eq!(val.remaining, 0);
            assert_eq!(val.level as usize, v);
        }
        assert!(is_valid_topo(&g, &out.values));
    }

    #[test]
    fn random_dag_levels_match_kahn() {
        let g = layered_dag(&DagConfig {
            num_vertices: 500,
            layers: 10,
            avg_out_degree: 8,
            fan_in_concentration: 0.5,
            seed: 3,
        });
        let out = run_single(
            &TopoSort::new(&g),
            &g,
            DeviceSpec::xeon_phi_se10p(),
            &EngineConfig::pipelined().with_host_threads(4),
        );
        assert!(is_valid_topo(&g, &out.values));
        let expect = kahn_levels(&g).expect("input is a DAG");
        for v in 0..g.num_vertices() {
            assert_eq!(out.values[v].level, expect[v], "vertex {v}");
        }
    }

    #[test]
    fn cyclic_graph_never_finishes_sorting() {
        use phigraph_graph::generators::small::cycle;
        let g = cycle(4);
        let out = run_single(
            &TopoSort::new(&g),
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        // No vertex has in-degree 0: nothing ever activates.
        assert!(out.values.iter().all(|v| v.remaining > 0));
        assert!(!is_valid_topo(&g, &out.values));
    }
}
