//! PageRank (§V.B): "the value associated with each vertex … is initialized
//! to 1. In each iteration, the message generation sub-step propagates the
//! PageRank value of each vertex to its neighbors, by dividing the value by
//! the number of outbound edges. The message reduction sub-step sums up the
//! received PageRank values … utilizing SIMD processing."

use phigraph_core::api::{GenContext, MsgSink, VertexProgram};
use phigraph_graph::{Csr, VertexId};
use phigraph_simd::Sum;

/// The PageRank vertex program.
#[derive(Clone, Debug)]
pub struct PageRank {
    /// Damping factor (0.85 is the classic choice).
    pub damping: f32,
    /// Fixed iteration count (the paper runs PageRank for a set number of
    /// supersteps; every vertex is active every iteration).
    pub iterations: usize,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank {
            damping: 0.85,
            iterations: 20,
        }
    }
}

impl VertexProgram for PageRank {
    type Msg = f32;
    type Reduce = Sum;
    type Value = f32;
    const NAME: &'static str = "pagerank";
    const ALWAYS_ACTIVE: bool = true;

    fn init(&self, _v: VertexId, _g: &Csr) -> (f32, bool) {
        (1.0, true)
    }

    fn generate<S: MsgSink<f32>>(&self, v: VertexId, ctx: &mut GenContext<'_, f32, S>) {
        let deg = ctx.graph.out_degree(v);
        if deg == 0 {
            return;
        }
        let share = *ctx.value(v) / deg as f32;
        let g = ctx.graph;
        for e in g.edge_range(v) {
            ctx.send(g.targets[e], share);
        }
    }

    fn update(&self, _v: VertexId, sum: f32, value: &mut f32, _g: &Csr) -> bool {
        *value = (1.0 - self.damping) + self.damping * sum;
        true
    }

    fn max_supersteps(&self) -> Option<usize> {
        Some(self.iterations)
    }

    /// Mass-conservation audit. Per vertex: ranks stay finite,
    /// non-negative, at least the teleport mass `1-d` or the untouched
    /// init value, and no single vertex can hold more than the whole
    /// graph's mass. With `stride == 1` the total mass is additionally
    /// bounded by `n` (each iteration redistributes at most the existing
    /// mass, damped), within a small f32 tolerance.
    fn audit_step(
        &self,
        _step: usize,
        _prev: &[f32],
        cur: &[f32],
        stride: usize,
    ) -> Option<String> {
        let n = cur.len() as f32;
        let floor = (1.0 - self.damping) * 0.999;
        for i in (0..cur.len()).step_by(stride.max(1)) {
            let v = cur[i];
            if !v.is_finite() {
                return Some(format!("pagerank: vertex {i} rank is {v}"));
            }
            if v < floor {
                return Some(format!(
                    "pagerank: vertex {i} rank {v} below teleport mass {floor}"
                ));
            }
            if v > n * 1.001 {
                return Some(format!(
                    "pagerank: vertex {i} rank {v} exceeds total graph mass {n}"
                ));
            }
        }
        if stride.max(1) == 1 {
            let total: f64 = cur.iter().map(|&v| v as f64).sum();
            if total > n as f64 * 1.001 {
                return Some(format!(
                    "pagerank: total mass {total} exceeds vertex count {n}"
                ));
            }
        }
        None
    }
}

/// Per-vertex state of the residual PageRank.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PrDelta {
    /// Current rank estimate.
    pub rank: f32,
    /// Rank mass received but not yet propagated to neighbors.
    pub residual: f32,
}

/// Convergence-driven (residual) PageRank: messages carry rank *increments*
/// instead of full shares, so a vertex can halt as soon as its unpropagated
/// residual drops below `epsilon` without corrupting its neighbors' sums —
/// the run terminates when the rank vector is stable rather than after a
/// fixed iteration count. Converges to the same fixed point as the paper's
/// formulation on graphs where every vertex has an in-edge. An extension
/// beyond the paper, exercising data-driven termination and the engines'
/// post-generation hook.
#[derive(Clone, Debug)]
pub struct PageRankDelta {
    /// Damping factor.
    pub damping: f32,
    /// Halt threshold on a vertex's unpropagated residual.
    pub epsilon: f32,
    /// Safety cap on supersteps.
    pub max_iterations: usize,
}

impl Default for PageRankDelta {
    fn default() -> Self {
        PageRankDelta {
            damping: 0.85,
            epsilon: 1e-4,
            max_iterations: 200,
        }
    }
}

impl VertexProgram for PageRankDelta {
    type Msg = f32;
    type Reduce = Sum;
    type Value = PrDelta;
    const NAME: &'static str = "pagerank-delta";
    const HAS_POST_GENERATE: bool = true;

    fn init(&self, _v: VertexId, _g: &Csr) -> (PrDelta, bool) {
        // Start at the teleport mass with the full initial value pending
        // propagation; the total each vertex ever sends then converges to
        // its final rank, giving the standard fixed point
        // r = (1-d) + d·Σ r_u/deg_u.
        let base = 1.0 - self.damping;
        (
            PrDelta {
                rank: base,
                residual: base,
            },
            true,
        )
    }

    fn generate<S: MsgSink<f32>>(&self, v: VertexId, ctx: &mut GenContext<'_, PrDelta, S>) {
        let deg = ctx.graph.out_degree(v);
        if deg == 0 {
            return;
        }
        let share = ctx.value(v).residual / deg as f32;
        if share == 0.0 {
            return;
        }
        let g = ctx.graph;
        for e in g.edge_range(v) {
            ctx.send(g.targets[e], share);
        }
    }

    fn post_generate(&self, _v: VertexId, value: &mut PrDelta) {
        // Everything pending has been propagated.
        value.residual = 0.0;
    }

    fn update(&self, _v: VertexId, sum: f32, value: &mut PrDelta, _g: &Csr) -> bool {
        let delta = self.damping * sum;
        value.rank += delta;
        value.residual += delta;
        value.residual.abs() > self.epsilon
    }

    fn max_supersteps(&self) -> Option<usize> {
        Some(self.max_iterations)
    }

    /// Residual-PageRank audit: rank is finite and monotone non-decreasing
    /// (updates only ever *add* damped positive mass).
    fn audit_step(
        &self,
        _step: usize,
        prev: &[PrDelta],
        cur: &[PrDelta],
        stride: usize,
    ) -> Option<String> {
        for i in (0..cur.len()).step_by(stride.max(1)) {
            let (p, c) = (prev[i], cur[i]);
            if !c.rank.is_finite() || !c.residual.is_finite() {
                return Some(format!("pagerank-delta: vertex {i} state is non-finite"));
            }
            if c.rank < p.rank * 0.999 {
                return Some(format!(
                    "pagerank-delta: vertex {i} rank decreased {} -> {}",
                    p.rank, c.rank
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::pagerank::pagerank_reference;
    use phigraph_core::engine::{run_single, EngineConfig};
    use phigraph_device::DeviceSpec;
    use phigraph_graph::generators::small::{cycle, paper_example, star};

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-4, "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_reference_on_paper_example() {
        let g = paper_example();
        let pr = PageRank {
            damping: 0.85,
            iterations: 15,
        };
        let out = run_single(
            &pr,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        let expect = pagerank_reference(&g, 0.85, 15);
        assert_close(&out.values, &expect);
    }

    #[test]
    fn cycle_ranks_are_uniform() {
        let g = cycle(8);
        let pr = PageRank::default();
        let out = run_single(
            &pr,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        for &v in &out.values {
            assert!(
                (v - 1.0).abs() < 1e-4,
                "cycle rank should converge to 1, got {v}"
            );
        }
    }

    #[test]
    fn star_center_keeps_initial_rank() {
        // The star's center has no in-edges: it never receives messages, so
        // its value stays at the init value (mirroring the paper's
        // formulation where update runs only on message receipt).
        let g = star(6);
        let pr = PageRank::default();
        let out = run_single(
            &pr,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        assert_eq!(out.values[0], 1.0);
        for v in 1..6 {
            assert!((out.values[v] - (0.15 + 0.85 / 5.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn runs_exactly_the_configured_iterations() {
        let g = cycle(4);
        let pr = PageRank {
            damping: 0.85,
            iterations: 7,
        };
        let out = run_single(
            &pr,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        assert_eq!(out.report.supersteps(), 7);
    }

    /// A graph where every vertex has an in-edge (cycle + chords), so the
    /// fixed-iteration and residual formulations share a fixed point.
    fn chorded_cycle(n: usize) -> phigraph_graph::Csr {
        let mut el = phigraph_graph::EdgeList::new(n);
        for v in 0..n {
            el.push(v as u32, ((v + 1) % n) as u32);
            if v % 3 == 0 {
                el.push(v as u32, ((v + n / 2) % n) as u32);
            }
        }
        phigraph_graph::Csr::from_edge_list(&el)
    }

    #[test]
    fn delta_variant_converges_early_and_agrees_with_fixed() {
        let g = chorded_cycle(60);
        let delta = PageRankDelta {
            damping: 0.85,
            epsilon: 1e-6,
            max_iterations: 500,
        };
        let out = run_single(
            &delta,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        assert!(
            out.report.supersteps() < 500,
            "should converge before the cap, ran {}",
            out.report.supersteps()
        );
        // Long fixed run as ground truth.
        let fixed = run_single(
            &PageRank {
                damping: 0.85,
                iterations: 150,
            },
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        for v in 0..g.num_vertices() {
            assert!(
                (out.values[v].rank - fixed.values[v]).abs() < 1e-3,
                "vertex {v}: residual {} vs fixed {}",
                out.values[v].rank,
                fixed.values[v]
            );
        }
    }

    #[test]
    fn looser_epsilon_terminates_sooner() {
        let g = chorded_cycle(60);
        let steps = |eps: f32| {
            run_single(
                &PageRankDelta {
                    damping: 0.85,
                    epsilon: eps,
                    max_iterations: 500,
                },
                &g,
                DeviceSpec::xeon_e5_2680(),
                &EngineConfig::locking(),
            )
            .report
            .supersteps()
        };
        assert!(steps(1e-1) < steps(1e-6));
    }

    #[test]
    fn delta_variant_is_engine_independent() {
        let g = chorded_cycle(40);
        let delta = PageRankDelta::default();
        let a = run_single(
            &delta,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        let b = run_single(
            &delta,
            &g,
            DeviceSpec::xeon_phi_se10p(),
            &EngineConfig::pipelined().with_host_threads(4),
        );
        let c = run_single(
            &delta,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::sequential(),
        );
        for v in 0..g.num_vertices() {
            assert!((a.values[v].rank - b.values[v].rank).abs() < 1e-3);
            assert!((a.values[v].rank - c.values[v].rank).abs() < 1e-3);
        }
    }
}
