//! Engine re-entrancy: the drivers only borrow the CSR, so any number
//! of runs can execute concurrently over one shared graph — the
//! property the serving daemon builds on. These tests run jobs
//! concurrently from plain threads and demand *bit-identical* values
//! against the same jobs run sequentially.

use std::sync::Arc;

use phigraph_apps::workloads::{pokec_like_weighted, Scale};
use phigraph_apps::{Bfs, PageRank, Sssp};
use phigraph_core::engine::{run_single, EngineConfig};
use phigraph_device::DeviceSpec;
use phigraph_graph::Csr;

fn bits_f32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn two_concurrent_jobs_match_sequential_runs_bit_for_bit() {
    let g = Arc::new(pokec_like_weighted(Scale::Tiny, 3));
    let spec = DeviceSpec::xeon_e5_2680();

    // Sequential baselines.
    let sssp_seq = run_single(
        &Sssp { source: 0 },
        &g,
        spec.clone(),
        &EngineConfig::locking(),
    );
    let pr_seq = run_single(
        &PageRank {
            damping: 0.85,
            iterations: 15,
        },
        &g,
        spec.clone(),
        &EngineConfig::pipelined(),
    );

    // The same two jobs, concurrently, over the same shared CSR.
    let (sssp_par, pr_par) = std::thread::scope(|s| {
        let g1: &Csr = &g;
        let g2: &Csr = &g;
        let spec1 = spec.clone();
        let spec2 = spec.clone();
        let h1 =
            s.spawn(move || run_single(&Sssp { source: 0 }, g1, spec1, &EngineConfig::locking()));
        let h2 = s.spawn(move || {
            run_single(
                &PageRank {
                    damping: 0.85,
                    iterations: 15,
                },
                g2,
                spec2,
                &EngineConfig::pipelined(),
            )
        });
        (h1.join().unwrap(), h2.join().unwrap())
    });

    assert_eq!(
        bits_f32(&sssp_seq.values),
        bits_f32(&sssp_par.values),
        "concurrent SSSP diverged from the sequential run"
    );
    assert_eq!(
        bits_f32(&pr_seq.values),
        bits_f32(&pr_par.values),
        "concurrent PageRank diverged from the sequential run"
    );
}

#[test]
fn many_concurrent_runs_of_the_same_job_agree() {
    let g = Arc::new(pokec_like_weighted(Scale::Tiny, 9));
    let spec = DeviceSpec::xeon_e5_2680();
    let baseline = run_single(
        &Bfs { source: 2 },
        &g,
        spec.clone(),
        &EngineConfig::locking(),
    );

    let outs: Vec<Vec<i32>> = std::thread::scope(|s| {
        (0..8)
            .map(|_| {
                let g: &Csr = &g;
                let spec = spec.clone();
                s.spawn(move || {
                    run_single(&Bfs { source: 2 }, g, spec, &EngineConfig::locking()).values
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for (i, out) in outs.iter().enumerate() {
        assert_eq!(out, &baseline.values, "run {i} diverged under concurrency");
    }
}
