//! `phigraph` — the command-line driver.
//!
//! The paper's system expects "a driver code to read the input (with the
//! help of distributed graph loading API), and to help drive the
//! parameters". This binary is that driver for the reproduction: it
//! generates workload files, inspects them, produces partitioning files,
//! and runs any of the applications under any execution configuration.
//!
//! ```text
//! phigraph generate <pokec|dblp|dag|gnm> <out.{adj|bin}> [--scale S] [--seed N]
//! phigraph info <graph.{adj|bin|txt|snap}>
//! phigraph partition <graph> <out.part> [--scheme continuous|round-robin|hybrid]
//!                    [--ratio A:B] [--blocks N] [--seed N]
//! phigraph run <app> <graph> [--engine lock|pipe|omp|seq] [--device cpu|mic]
//!              [--partition file.part | --hetero | --devices N] [--ratio A:B:...]
//!              [--source N] [--iters N] [--out values.txt]
//!              [--checkpoint-every K] [--checkpoint-dir DIR] [--resume]
//!              [--faults step:kind[:dev],...] [--max-retries N] [--backoff-ms N]
//!              [--failover migrate|retry|off] [--watchdog-ms N] [--rebalance-after N]
//!              [--integrity off|frames|full] [--scrub-every N]
//!              [--trace-out FILE] [--trace-format chrome|json|prom]
//!              [--trace-level off|phase|fine]
//! phigraph serve <graph> [--workers N] [--queue-cap N] [--engine E] [--socket PATH]
//!                [--tenants a:4:2,b:1:1] [--deadline-ms N] [--prom-out FILE]
//!                [--journal-dir DIR] [--drain] [--shed-policy off|ladder]
//!                [--integrity M] [--integrity-max M]
//!                [--metrics-sock PATH] [--metrics-every SECS] [--events-out FILE]
//! phigraph serve-chaos [--cycles N] [--seed N] [--workers N] [--queue-cap N]
//!                      [--jobs-per-cycle N] [--journal-dir DIR] [--reload-every N]
//! phigraph top <metrics.sock> [--interval SECS] [--count N] [--window 1s|10s|60s] [--raw]
//! phigraph report <report.json|events.jsonl|flight.json> [--steps] [--top N]
//! phigraph recover <checkpoint-dir> [--inspect STEP]
//! phigraph tune <app> <graph> [--probe-steps N] [--blocks N]
//! phigraph check <app> <graph> [--step-budget N]
//! phigraph bench run|compare|perturb|list ...
//! ```

mod args;
mod cmd_bench;
mod cmd_check;
mod cmd_generate;
mod cmd_info;
mod cmd_partition;
mod cmd_recover;
mod cmd_report;
mod cmd_run;
mod cmd_serve;
mod cmd_serve_chaos;
mod cmd_top;
mod cmd_tune;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate::run(rest),
        "info" => cmd_info::run(rest),
        "partition" => cmd_partition::run(rest),
        "run" => cmd_run::run(rest),
        "serve" => cmd_serve::run(rest),
        "serve-chaos" => cmd_serve_chaos::run(rest),
        "top" => cmd_top::run(rest),
        "recover" => cmd_recover::run(rest),
        "report" => cmd_report::run(rest),
        "tune" => cmd_tune::run(rest),
        "check" => cmd_check::run(rest),
        "bench" => cmd_bench::run(rest),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> &'static str {
    "phigraph — heterogeneous CPU+MIC graph processing (IPDPS'15 reproduction)

commands:
  generate <pokec|dblp|dag|gnm> <out.{adj|bin}> [--scale tiny|small|medium] [--seed N]
  info <graph.{adj|bin|txt|snap}>
  partition <graph> <out.part> [--scheme continuous|round-robin|hybrid] [--ratio A:B] [--blocks N] [--seed N]
  run <pagerank|ppr|bfs|sssp|toposort|wcc|kcore|semicluster> <graph>
      [--engine lock|pipe|omp|seq] [--device cpu|mic]
      [--partition file.part | --hetero | --devices N] [--ratio A:B[:C...]]
      [--source N] [--iters N] [--out values.txt] [--checksum]
      [--checkpoint-every K] [--checkpoint-dir DIR] [--resume]
      [--faults step:kind[:dev],...] [--max-retries N] [--backoff-ms N]
      [--failover migrate|retry|off] [--watchdog-ms N] [--rebalance-after N]
      [--integrity off|frames|full] [--scrub-every N]
      [--trace-out FILE] [--trace-format chrome|json|prom] [--trace-level off|phase|fine]
      (fault kinds: worker|mover|insert|checkpoint|exchange|crash|hang|slow
                    |crash-rank:K|partition-link:I-J
                    |bitflip-msg|bitflip-state|truncate-frame
                    |daemon-kill|worker-hang|slow-client|malformed-line;
       --devices N runs an N-rank fabric (rank 0 = CPU, ranks 1.. = MIC);
       --ratio then takes N colon-separated shares and snapshots live under
       <dir>/rank0..rankN-1; checkpoint/resume/integrity: pagerank|bfs|sssp|wcc
       with --engine lock|pipe; chrome traces load in Perfetto / chrome://tracing)
  serve <graph> [--workers N] [--queue-cap N] [--engine lock|pipe|omp|seq] [--device cpu|mic]
        [--socket PATH] [--tenants name:weight:cap,...] [--default-weight N] [--default-cap N]
        [--deadline-ms N] [--report-out FILE] [--prom-out FILE] [--trace-level off|phase|fine]
        [--journal-dir DIR] [--drain] [--shed-policy off|ladder]
        [--integrity off|frames|full] [--integrity-max off|frames|full]
        [--metrics-sock PATH] [--metrics-every SECS] [--events-out FILE]
        (line-delimited JSON jobs on stdin or the socket:
         {\"op\":\"job\",\"id\":\"q1\",\"tenant\":\"a\",\"app\":\"sssp\",\"sources\":[0,7]}
         plus ops tenant/stats/reload/shutdown; rejects carry a machine-readable
         code + retry_after_ms; {\"op\":\"stats\",\"format\":\"prom\"} scrapes the
         full Prometheus exposition mid-traffic; see docs/serving.md)
  serve-chaos [--cycles N] [--seed N] [--workers N] [--queue-cap N] [--jobs-per-cycle N]
        [--journal-dir DIR] [--reload-every N] [--engine lock|pipe|omp|seq]
        (seeded kill/restart/reload soak over the serving stack; exits nonzero
         if any job is lost, duplicated with different bytes, or corrupted;
         each killed incarnation leaves flight-c<cycle>.json in --journal-dir)
  top <metrics.sock> [--interval SECS] [--count N] [--window 1s|10s|60s] [--raw]
        (poll a daemon's --metrics-sock: per-tenant jobs/s + windowed p50/p99;
         --raw prints the Prometheus text verbatim for scripts)
  report <report.json|events.jsonl|flight.json> [--steps] [--top N]
  recover <checkpoint-dir> [--inspect STEP]
  tune <pagerank|bfs|sssp|toposort|wcc> <graph> [--probe-steps N] [--blocks N]
  check <pagerank|bfs|sssp|toposort|wcc|kcore> <graph> [--step-budget N]
  bench run [--out-dir DIR] [--area A[,B...]] [--seed N] [--samples N] [--warmup N] [--smoke]
        compare <baseline> <current> [--area A[,B...]] [--threshold X]
        perturb <in.json> <out.json> --factor F
        list
        (writes/diffs BENCH_<area>.json; compare exits nonzero on regression —
         see docs/benchmarks.md)"
}
