//! `phigraph generate` — write workload graphs to disk.

use crate::args::Args;
use phigraph_apps::workloads::{self, Scale};
use phigraph_graph::generators::erdos_renyi::gnm;
use phigraph_graph::{io, Csr};
use std::fs::File;
use std::path::Path;

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let kind = args.pos(0, "kind")?;
    let out = args.pos(1, "out")?.to_string();
    let scale =
        Scale::parse(args.flag_or("scale", "small")).ok_or("bad --scale (tiny|small|medium)")?;
    let seed: u64 = args.flag_parse("seed", 1u64)?;

    let graph = match kind {
        "pokec" => workloads::pokec_like(scale, seed),
        "pokec-weighted" => workloads::pokec_like_weighted(scale, seed),
        "dblp" => workloads::dblp_like(scale, seed).0,
        "dag" => workloads::toposort_dag(scale, seed),
        "gnm" => {
            let n: usize = args.flag_parse("vertices", 10_000usize)?;
            let m: usize = args.flag_parse("edges", 50_000usize)?;
            gnm(n, m, seed)
        }
        other => return Err(format!("unknown workload kind {other:?}")),
    };
    write_graph(&graph, &out)?;
    println!(
        "wrote {kind} graph: {} vertices, {} edges -> {out}",
        graph.num_vertices(),
        graph.num_edges()
    );
    Ok(())
}

pub(crate) fn write_graph(g: &Csr, path: &str) -> Result<(), String> {
    let f = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    match Path::new(path).extension().and_then(|e| e.to_str()) {
        Some("adj") => io::write_adjacency(g, f),
        Some("bin") => io::write_binary(g, f),
        other => return Err(format!("output extension {other:?} must be .adj or .bin")),
    }
    .map_err(|e| format!("write {path}: {e}"))
}

pub(crate) fn load_graph(path: &str) -> Result<Csr, String> {
    io::load_path(Path::new(path)).map_err(|e| format!("load {path}: {e}"))
}
