//! `phigraph serve-chaos` — the seeded survivability soak for the
//! serving daemon.
//!
//! Runs N kill/restart/reload cycles against an in-process serving pool
//! sharing one journal directory, at twice the admission capacity, with
//! faults drawn from the serving subset of the recover crate's fault
//! catalog (`daemon-kill`, `worker-hang`, `slow-client`,
//! `malformed-line`). Exits nonzero unless every admitted job reached
//! exactly one terminal outcome and every checksum matched a direct
//! single-job execution.

use crate::args::Args;
use phigraph_core::engine::ExecMode;
use phigraph_serve::{run_chaos, ChaosConfig};
use std::path::PathBuf;

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let defaults = ChaosConfig::default();
    let mode = match args.flag_or("engine", "seq") {
        "lock" => ExecMode::Locking,
        "pipe" => ExecMode::Pipelined,
        "omp" => ExecMode::Flat,
        "seq" => ExecMode::Sequential,
        other => return Err(format!("unknown engine {other:?}")),
    };
    let cfg = ChaosConfig {
        cycles: args.flag_parse("cycles", defaults.cycles)?,
        seed: args.flag_parse("seed", defaults.seed)?,
        workers: args.flag_parse("workers", defaults.workers)?,
        queue_cap: args.flag_parse("queue-cap", defaults.queue_cap)?,
        jobs_per_cycle: args.flag_parse("jobs-per-cycle", defaults.jobs_per_cycle)?,
        journal_dir: PathBuf::from(
            args.flag_or("journal-dir", &defaults.journal_dir.display().to_string()),
        ),
        reload_every: args.flag_parse("reload-every", defaults.reload_every)?,
        mode,
    };
    eprintln!(
        "serve-chaos: {} cycles, seed {}, {} workers, queue cap {}, journal {:?}",
        cfg.cycles, cfg.seed, cfg.workers, cfg.queue_cap, cfg.journal_dir
    );
    let report = run_chaos(&cfg)?;
    println!("{}", report.to_line());
    if report.ok() {
        Ok(())
    } else {
        Err(format!(
            "chaos soak failed: {} job(s) lost ({:?}), {} corrupt ({:?})",
            report.lost.len(),
            report.lost,
            report.corrupt.len(),
            report.corrupt
        ))
    }
}
