//! `phigraph info` — inspect a graph file.

use crate::args::Args;
use crate::cmd_generate::load_graph;
use phigraph_graph::analysis::{degree_assortativity, diameter_estimate, reciprocity};
use phigraph_graph::degree::{log2_histogram, top_k};
use phigraph_graph::validation::{self, weakly_connected_components};
use phigraph_graph::DegreeStats;

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let path = args.pos(0, "graph")?;
    let g = load_graph(path)?;
    g.validate().map_err(|e| format!("invalid graph: {e}"))?;

    println!("graph      {path}");
    println!("vertices   {}", g.num_vertices());
    println!("edges      {}", g.num_edges());
    println!("weighted   {}", g.weights.is_some());
    println!("self-loops {}", validation::self_loops(&g));
    println!("components {}", weakly_connected_components(&g));
    println!(
        "diameter   ≥{} (double-sweep estimate)",
        diameter_estimate(&g, 0)
    );
    println!(
        "assortativity {:.3}   reciprocity {:.3}",
        degree_assortativity(&g),
        reciprocity(&g)
    );

    let out = DegreeStats::out_degrees(&g);
    let ind = DegreeStats::in_degrees(&g);
    println!(
        "out-degree min {} max {} mean {:.2} cv {:.2} gini {:.2} top1% {:.1}%",
        out.min,
        out.max,
        out.mean,
        out.cv,
        out.gini,
        out.top1pct_share * 100.0
    );
    println!(
        "in-degree  min {} max {} mean {:.2} cv {:.2} gini {:.2} top1% {:.1}%",
        ind.min,
        ind.max,
        ind.mean,
        ind.cv,
        ind.gini,
        ind.top1pct_share * 100.0
    );

    println!("\nout-degree histogram (log2 buckets):");
    let hist = log2_histogram(&g.out_degrees());
    let max = hist.iter().copied().max().unwrap_or(1).max(1);
    for (b, &count) in hist.iter().enumerate() {
        let lo = if b == 0 { 0 } else { 1usize << (b - 1) };
        let hi = (1usize << b).saturating_sub(1);
        let bar = "#".repeat((count * 40).div_ceil(max));
        println!("  [{lo:>6}-{hi:>6}] {count:>8} {bar}");
    }

    println!("\ntop-5 out-degree hubs:");
    for (v, d) in top_k(&g.out_degrees(), 5) {
        println!("  vertex {v:>8}  degree {d}");
    }
    Ok(())
}
