//! `phigraph recover` — list and inspect checkpoint snapshots.
//!
//! Snapshots are the versioned, checksummed barrier images written by
//! `phigraph run --checkpoint-every`. This subcommand validates each one
//! with the same decoder the recovery path uses, so "OK" here means the
//! engine would accept it for `--resume`. Heterogeneous failover runs keep
//! one store per rank (`<dir>/rank0`..`<dir>/rankN-1`); all are listed.
//! The legacy 2-device layout (`<dir>/dev0`, `<dir>/dev1`) is still
//! understood; a directory mixing both layouts is listed with a warning,
//! since `--resume` would only read the `rank*` stores.
//!
//! Runs also drop a `run_report.json` into the checkpoint directory; when
//! present, the recovery and failover statistics of the run that produced
//! the snapshots are shown alongside them.

use crate::args::Args;
use phigraph_recover::{CheckpointStore, DirStore, Snapshot};
use phigraph_trace::json::Json;

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let dir = args.pos(0, "checkpoint-dir")?;
    if !std::path::Path::new(dir).is_dir() {
        return Err(format!("no checkpoint directory at {dir}"));
    }

    // A heterogeneous failover run keeps one snapshot store per rank
    // (`rank0`..`rankN-1`); older runs used `dev0`/`dev1`. Learn whichever
    // layout is present — and if both are, keep going with a warning
    // rather than refusing to show anything.
    let mut stores: Vec<(String, DirStore)> = Vec::new();
    let mut legacy: Vec<(String, DirStore)> = Vec::new();
    for r in 0..phigraph_partition::MAX_RANKS {
        let sub = format!("{dir}/rank{r}");
        if std::path::Path::new(&sub).is_dir() {
            stores.push((format!("rank{r}: "), DirStore::open(&sub)?));
        }
    }
    for dev in ["dev0", "dev1"] {
        let sub = format!("{dir}/{dev}");
        if std::path::Path::new(&sub).is_dir() {
            legacy.push((format!("{dev}: "), DirStore::open(&sub)?));
        }
    }
    if !stores.is_empty() && !legacy.is_empty() {
        println!(
            "warning: {dir} mixes per-rank (rank*) and legacy (dev*) stores; \
             listing both, but --resume would only read the rank* layout"
        );
    }
    stores.append(&mut legacy);
    if stores.is_empty() {
        stores.push((String::new(), DirStore::open(dir)?));
    }

    if let Some(which) = args.flag("inspect") {
        let step: u64 = which
            .parse()
            .map_err(|_| format!("bad --inspect value {which:?}"))?;
        let mut shown = false;
        for (label, store) in &stores {
            if store.list().contains(&step) {
                inspect(label, store, step)?;
                shown = true;
            }
        }
        if !shown {
            let have: Vec<u64> = stores.iter().flat_map(|(_, s)| s.list()).collect();
            return Err(format!(
                "no snapshot for superstep {step} in {dir} (have: {have:?})"
            ));
        }
        print_run_report(dir);
        return Ok(());
    }

    let total: usize = stores.iter().map(|(_, s)| s.list().len()).sum();
    if total == 0 {
        println!("no snapshots in {dir}");
    } else {
        println!("{total} snapshot(s) in {dir}:");
        for (label, store) in &stores {
            list(label, store);
        }
    }
    print_run_report(dir);
    Ok(())
}

fn inspect(label: &str, store: &DirStore, step: u64) -> Result<(), String> {
    let bytes = store.load(step)?;
    let snap = Snapshot::decode(&bytes).map_err(|e| format!("snapshot {step} invalid: {e}"))?;
    let n = snap.num_vertices();
    let active = snap.active.iter().filter(|&&f| f != 0).count();
    println!("{label}snapshot {}", store.path_for(step).display());
    println!("  resumes at superstep : {}", snap.superstep);
    println!("  application          : {}", snap.app);
    println!("  vertices             : {n}");
    println!("  value width          : {} bytes", snap.value_size);
    println!("  active vertices      : {active}");
    println!(
        "  encoded size         : {} bytes (checksum OK)",
        bytes.len()
    );
    Ok(())
}

fn list(label: &str, store: &DirStore) {
    for step in store.list() {
        match store.load(step).and_then(|b| {
            Snapshot::decode(&b)
                .map(|s| (s, b.len()))
                .map_err(|e| e.to_string())
        }) {
            Ok((snap, len)) => {
                let active = snap.active.iter().filter(|&&f| f != 0).count();
                println!(
                    "  {label}step {:>6}  app={:<10} vertices={:<9} active={:<9} {} bytes  OK",
                    snap.superstep,
                    snap.app,
                    snap.num_vertices(),
                    active,
                    len,
                );
            }
            Err(e) => println!("  {label}step {step:>6}  INVALID: {e}"),
        }
    }
}

/// Show the recovery, failover, and integrity statistics of the run that
/// produced the snapshots, when it left a `run_report.json` behind.
///
/// A run that crashed mid-write (or a disk that rotted) can leave a torn or
/// truncated report behind; every failure here degrades to "no report" with
/// a warning — this path must never panic, because it runs exactly when the
/// operator is trying to diagnose a broken run.
fn print_run_report(dir: &str) {
    let path = format!("{dir}/run_report.json");
    let text = match std::fs::read(&path) {
        Err(_) => return, // no report left behind: nothing to show
        Ok(bytes) => match String::from_utf8(bytes) {
            Ok(t) => t,
            Err(_) => {
                println!("warning: {path}: not valid UTF-8 (torn write?); ignoring report");
                return;
            }
        },
    };
    let doc = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            println!("warning: {path}: {e} (torn write?); ignoring report");
            return;
        }
    };
    if doc.get("schema").and_then(|s| s.as_str()) != Some(phigraph_core::export::REPORT_SCHEMA) {
        println!("warning: {path}: not a phigraph run report; ignoring");
        return;
    }
    let Some(combined) = doc.get("combined") else {
        println!("warning: {path}: missing \"combined\" section; ignoring report");
        return;
    };
    let app = combined.get("app").and_then(|a| a.as_str()).unwrap_or("?");
    let mode = combined.get("mode").and_then(|m| m.as_str()).unwrap_or("?");
    println!("\nlast run ({path}): {app}, engine {mode}");
    if let Some(r) = combined.get("recovery") {
        println!(
            "  recovery : checkpoints={} ({} bytes), rollbacks={}, retries={}, \
             corrupt_rejected={}, faults_injected={}, degraded={}",
            r.u64_or_0("checkpoints_written"),
            r.u64_or_0("checkpoint_bytes"),
            r.u64_or_0("rollbacks"),
            r.u64_or_0("retries"),
            r.u64_or_0("corrupt_snapshots_rejected"),
            r.u64_or_0("faults_injected"),
            r.u64_or_0("degraded") != 0,
        );
    }
    if let Some(f) = combined.get("failover") {
        println!(
            "  failover : crashes={} hangs={} migrations={} rebalances={} \
             drops={} timeouts={} watchdog_latency_ms={} resume_step={} \
             replayed={}/{} degraded_single={}",
            f.u64_or_0("crash_detections"),
            f.u64_or_0("hang_detections"),
            f.u64_or_0("migrations"),
            f.u64_or_0("rebalances"),
            f.u64_or_0("exchange_drops"),
            f.u64_or_0("exchange_timeouts"),
            f.u64_or_0("watchdog_latency_ms"),
            f.u64_or_0("resume_step"),
            f.u64_or_0("supersteps_replayed"),
            f.u64_or_0("supersteps_total"),
            f.u64_or_0("degraded_single") != 0,
        );
    }
    if let Some(i) = combined.get("integrity") {
        let checks =
            i.u64_or_0("frame_checks") + i.u64_or_0("group_checks") + i.u64_or_0("state_checks");
        let detections = i.u64_or_0("frame_detections")
            + i.u64_or_0("group_detections")
            + i.u64_or_0("state_detections");
        println!(
            "  integrity: checks={} detections={} quarantined={} heals={} \
             replays={} reexch={} audits={} violations={} false_pos={} scrubs={}",
            checks,
            detections,
            i.u64_or_0("quarantined_groups"),
            i.u64_or_0("group_heals"),
            i.u64_or_0("step_replays"),
            i.u64_or_0("frame_reexchanges"),
            i.u64_or_0("audits_run"),
            i.u64_or_0("audit_violations"),
            i.u64_or_0("false_positive_audits"),
            i.u64_or_0("scrub_passes"),
        );
    }
}
