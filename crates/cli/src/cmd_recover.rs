//! `phigraph recover` — list and inspect checkpoint snapshots.
//!
//! Snapshots are the versioned, checksummed barrier images written by
//! `phigraph run --checkpoint-every`. This subcommand validates each one
//! with the same decoder the recovery path uses, so "OK" here means the
//! engine would accept it for `--resume`.

use crate::args::Args;
use phigraph_recover::{CheckpointStore, DirStore, Snapshot};

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let dir = args.pos(0, "checkpoint-dir")?;
    if !std::path::Path::new(dir).is_dir() {
        return Err(format!("no checkpoint directory at {dir}"));
    }
    let store = DirStore::open(dir)?;
    let steps = store.list();
    if steps.is_empty() {
        println!("no snapshots in {dir}");
        return Ok(());
    }

    if let Some(which) = args.flag("inspect") {
        let step: u64 = which
            .parse()
            .map_err(|_| format!("bad --inspect value {which:?}"))?;
        if !steps.contains(&step) {
            return Err(format!(
                "no snapshot for superstep {step} in {dir} (have: {steps:?})"
            ));
        }
        let bytes = store.load(step)?;
        let snap = Snapshot::decode(&bytes).map_err(|e| format!("snapshot {step} invalid: {e}"))?;
        let n = snap.num_vertices();
        let active = snap.active.iter().filter(|&&f| f != 0).count();
        println!("snapshot {}", store.path_for(step).display());
        println!("  resumes at superstep : {}", snap.superstep);
        println!("  application          : {}", snap.app);
        println!("  vertices             : {n}");
        println!("  value width          : {} bytes", snap.value_size);
        println!("  active vertices      : {active}");
        println!(
            "  encoded size         : {} bytes (checksum OK)",
            bytes.len()
        );
        return Ok(());
    }

    println!("{} snapshot(s) in {dir}:", steps.len());
    for step in steps {
        match store.load(step).and_then(|b| {
            Snapshot::decode(&b)
                .map(|s| (s, b.len()))
                .map_err(|e| e.to_string())
        }) {
            Ok((snap, len)) => {
                let active = snap.active.iter().filter(|&&f| f != 0).count();
                println!(
                    "  step {:>6}  app={:<10} vertices={:<9} active={:<9} {} bytes  OK",
                    snap.superstep,
                    snap.app,
                    snap.num_vertices(),
                    active,
                    len,
                );
            }
            Err(e) => println!("  step {step:>6}  INVALID: {e}"),
        }
    }
    Ok(())
}
