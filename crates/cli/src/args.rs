//! Minimal flag parsing shared by the subcommands (positional arguments
//! plus `--flag value` pairs; no external dependency).

use std::collections::HashMap;

/// Parsed arguments: positionals in order, flags by name.
pub struct Args {
    /// Positional arguments.
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse `argv`; every `--name` consumes the following token as its
    /// value. Boolean flags use the value `"true"` when given bare at the
    /// end or followed by another flag.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let tok = &argv[i];
            if let Some(name) = tok.strip_prefix("--") {
                let value = match argv.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        i += 1;
                        v.clone()
                    }
                    _ => "true".to_string(),
                };
                if flags.insert(name.to_string(), value).is_some() {
                    return Err(format!("duplicate flag --{name}"));
                }
            } else {
                positional.push(tok.clone());
            }
            i += 1;
        }
        Ok(Args { positional, flags })
    }

    /// Positional argument `i`, or an error naming it.
    pub fn pos(&self, i: usize, name: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing <{name}>"))
    }

    /// Optional string flag.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// Flag with a default.
    pub fn flag_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.flag(name).unwrap_or(default)
    }

    /// Parsed numeric/typed flag with a default.
    pub fn flag_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value {v:?} for --{name}")),
        }
    }

    /// Boolean presence flag.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(toks: &[&str]) -> Args {
        let v: Vec<String> = toks.iter().map(|s| s.to_string()).collect();
        Args::parse(&v).unwrap()
    }

    #[test]
    fn positionals_and_flags_mix() {
        let a = parse(&["pokec", "out.bin", "--scale", "small", "--seed", "7"]);
        assert_eq!(a.pos(0, "kind").unwrap(), "pokec");
        assert_eq!(a.pos(1, "out").unwrap(), "out.bin");
        assert_eq!(a.flag("scale"), Some("small"));
        assert_eq!(a.flag_parse("seed", 0u64).unwrap(), 7);
    }

    #[test]
    fn bare_flags_are_true() {
        let a = parse(&["run", "--hetero", "--ratio", "3:5"]);
        assert!(a.has("hetero"));
        assert_eq!(a.flag("ratio"), Some("3:5"));
    }

    #[test]
    fn missing_positional_is_an_error() {
        let a = parse(&["x"]);
        assert!(a.pos(1, "out").is_err());
    }

    #[test]
    fn duplicate_flags_rejected() {
        let v: Vec<String> = ["--a", "1", "--a", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(Args::parse(&v).is_err());
    }

    #[test]
    fn flag_parse_reports_bad_values() {
        let a = parse(&["--seed", "xyz"]);
        assert!(a.flag_parse("seed", 0u64).is_err());
        assert_eq!(a.flag_parse("other", 5u32).unwrap(), 5);
    }
}
