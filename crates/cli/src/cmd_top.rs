//! `phigraph top` — poll a serving daemon's `--metrics-sock` and render
//! a refreshing per-tenant table (jobs/sec over a sliding window,
//! cumulative outcomes, windowed latency quantiles).
//!
//! Each poll opens one connection; the daemon answers with a full
//! Prometheus exposition and closes. `--raw` prints the exposition text
//! verbatim instead of the table (scripts scrape it that way), `--count
//! N` exits after N frames, `--window` picks which sliding window the
//! rate/quantile columns read (`1s`, `10s`, or `60s`).

use crate::args::Args;
use std::collections::BTreeMap;
use std::io::Read;
use std::os::unix::net::UnixStream;
use std::time::Duration;

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let sock = args.pos(0, "metrics-socket")?;
    let interval: u64 = args.flag_parse("interval", 2u64)?;
    let count: u64 = args.flag_parse("count", 0u64)?; // 0 = forever
    let window = args.flag_or("window", "10s").to_string();
    let raw = args.has("raw");

    let mut frame = 0u64;
    loop {
        let text = scrape(sock)?;
        if raw {
            print!("{text}");
        } else {
            if frame > 0 {
                // Refresh in place between frames.
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", render_table(&text, &window));
        }
        frame += 1;
        if count != 0 && frame >= count {
            return Ok(());
        }
        std::thread::sleep(Duration::from_secs(interval.max(1)));
    }
}

/// One scrape: connect, read to EOF (the daemon writes the full
/// exposition and closes).
fn scrape(path: &str) -> Result<String, String> {
    let mut s = UnixStream::connect(path).map_err(|e| format!("connect {path}: {e}"))?;
    let mut text = String::new();
    s.read_to_string(&mut text)
        .map_err(|e| format!("read {path}: {e}"))?;
    Ok(text)
}

/// One parsed exposition sample line.
struct Metric {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

impl Metric {
    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse the sample lines of a Prometheus text exposition (comments and
/// anything unparseable are skipped — `top` renders what it can).
fn parse_prom(text: &str) -> Vec<Metric> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value) = match line.rsplit_once(|c: char| c.is_whitespace()) {
            Some((h, v)) => (h.trim_end(), v),
            None => continue,
        };
        let Ok(value) = value.parse::<f64>() else {
            continue;
        };
        let (name, labels) = match head.split_once('{') {
            None => (head.to_string(), Vec::new()),
            Some((name, rest)) => {
                let Some(body) = rest.strip_suffix('}') else {
                    continue;
                };
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let Some((k, v)) = pair.split_once('=') else {
                        continue;
                    };
                    labels.push((k.trim().to_string(), v.trim().trim_matches('"').to_string()));
                }
                (name.to_string(), labels)
            }
        };
        out.push(Metric {
            name,
            labels,
            value,
        });
    }
    out
}

/// First sample matching `name` and every `(key, value)` label filter.
fn find(metrics: &[Metric], name: &str, filters: &[(&str, &str)]) -> Option<f64> {
    metrics
        .iter()
        .find(|m| m.name == name && filters.iter().all(|(k, v)| m.label(k) == Some(*v)))
        .map(|m| m.value)
}

/// Render one frame of the per-tenant table from an exposition text.
fn render_table(text: &str, window: &str) -> String {
    let metrics = parse_prom(text);
    let w: &[(&str, &str)] = &[("window", window)];
    let mut out = String::new();
    out.push_str(&format!(
        "phigraph top — window {window} — queued {:.0}, shed {:.0}, epoch {:.0}, swaps {:.0}\n",
        find(&metrics, "phigraph_serve_window_queued", w)
            .or_else(|| find(&metrics, "phigraph_serve_queued", &[]))
            .unwrap_or(0.0),
        find(&metrics, "phigraph_serve_window_shed_level", w)
            .or_else(|| find(&metrics, "phigraph_serve_shed_level", &[]))
            .unwrap_or(0.0),
        find(&metrics, "phigraph_serve_graph_epoch", &[]).unwrap_or(0.0),
        find(&metrics, "phigraph_serve_graph_swaps", &[]).unwrap_or(0.0),
    ));
    for (label, family) in [
        ("wait", "phigraph_serve_window_job_wait_us"),
        ("exec", "phigraph_serve_window_job_exec_us"),
        ("journal", "phigraph_serve_window_journal_append_us"),
    ] {
        let p50 = find(&metrics, family, &[("window", window), ("quantile", "0.5")]);
        let p99 = find(
            &metrics,
            family,
            &[("window", window), ("quantile", "0.99")],
        );
        if let (Some(p50), Some(p99)) = (p50, p99) {
            out.push_str(&format!("{label} µs p50/p99: {p50:.0}/{p99:.0}   "));
        }
    }
    if out.ends_with("   ") {
        out.truncate(out.trim_end().len());
    }
    if !out.ends_with('\n') {
        out.push('\n');
    }

    // Every tenant seen in either the cumulative or the windowed series.
    let mut tenants: BTreeMap<String, ()> = BTreeMap::new();
    for m in &metrics {
        if let Some(t) = m.label("tenant") {
            tenants.insert(t.to_string(), ());
        }
    }
    out.push_str(&format!(
        "{:<16} {:>8} {:>10} {:>10} {:>9}\n",
        "tenant", "jobs/s", "submitted", "completed", "rejected"
    ));
    for tenant in tenants.keys() {
        let t: &[(&str, &str)] = &[("tenant", tenant)];
        let rate = find(
            &metrics,
            "phigraph_serve_window_jobs_per_sec",
            &[("tenant", tenant), ("window", window)],
        );
        out.push_str(&format!(
            "{:<16} {:>8} {:>10.0} {:>10.0} {:>9.0}\n",
            tenant,
            rate.map_or("-".to_string(), |r| format!("{r:.1}")),
            find(&metrics, "phigraph_serve_jobs_submitted", t).unwrap_or(0.0),
            find(&metrics, "phigraph_serve_jobs_completed", t).unwrap_or(0.0),
            find(&metrics, "phigraph_serve_jobs_rejected", t).unwrap_or(0.0),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# HELP phigraph_serve_queued Jobs waiting in the admission queue.
# TYPE phigraph_serve_queued gauge
phigraph_serve_queued 4
phigraph_serve_graph_epoch 2
phigraph_serve_graph_swaps 1
phigraph_serve_jobs_submitted{tenant=\"gold\"} 120
phigraph_serve_jobs_completed{tenant=\"gold\"} 118
phigraph_serve_jobs_rejected{tenant=\"gold\"} 2
phigraph_serve_window_jobs_per_sec{tenant=\"gold\",window=\"10s\"} 12.5
phigraph_serve_window_queued{window=\"10s\"} 3
phigraph_serve_window_shed_level{window=\"10s\"} 1
phigraph_serve_window_job_wait_us{window=\"10s\",quantile=\"0.5\"} 127
phigraph_serve_window_job_wait_us{window=\"10s\",quantile=\"0.99\"} 901
not a metric line
";

    #[test]
    fn exposition_lines_parse_with_labels() {
        let metrics = parse_prom(SAMPLE);
        assert_eq!(
            find(&metrics, "phigraph_serve_queued", &[]),
            Some(4.0),
            "bare gauge"
        );
        assert_eq!(
            find(
                &metrics,
                "phigraph_serve_window_jobs_per_sec",
                &[("tenant", "gold"), ("window", "10s")]
            ),
            Some(12.5)
        );
        assert_eq!(find(&metrics, "no_such_family", &[]), None);
        assert!(metrics.iter().all(|m| m.name != "not"));
    }

    #[test]
    fn table_carries_rates_quantiles_and_tenant_rows() {
        let table = render_table(SAMPLE, "10s");
        assert!(table.contains("window 10s"), "{table}");
        assert!(table.contains("queued 3"), "windowed queued wins: {table}");
        assert!(table.contains("shed 1"), "{table}");
        assert!(table.contains("wait µs p50/p99: 127/901"), "{table}");
        let gold = table.lines().find(|l| l.starts_with("gold")).unwrap();
        assert!(gold.contains("12.5"), "{gold}");
        assert!(gold.contains("120") && gold.contains("118"), "{gold}");
    }

    #[test]
    fn missing_windows_degrade_to_cumulative_gauges() {
        let table = render_table(
            "phigraph_serve_queued 7\nphigraph_serve_jobs_submitted{tenant=\"a\"} 3\n",
            "10s",
        );
        assert!(table.contains("queued 7"), "{table}");
        let row = table.lines().find(|l| l.starts_with('a')).unwrap();
        assert!(row.contains('-'), "no windowed rate yet: {row}");
    }
}
