//! `phigraph report` — pretty-print a dumped run report.
//!
//! Consumes the JSON produced by `phigraph run ... --trace-out r.json
//! --trace-format json` (or the `run_report.json` a checkpointed run leaves
//! in its checkpoint directory) and reproduces the paper's Fig. 5-style
//! decomposition: per-device and per-phase simulated time, message totals,
//! and — when present — recovery and failover statistics.
//!
//! Observability artifacts degrade instead of erroring: a `--events-out`
//! JSONL log (even one still being written, with a torn final line) gets
//! an event tally with a warning, and a flight recording — including a
//! torn one from a crash mid-write — gets a postmortem summary.

use crate::args::Args;
use phigraph_serve::FLIGHT_SCHEMA;
use phigraph_trace::json::Json;

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let path = args.pos(0, "report.json")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            // Not one JSON document. An in-progress `--events-out` log
            // is JSONL (summarize what parses); a torn flight.json still
            // carries its schema marker (warn, don't fail the run).
            if looks_like_event_log(&text) {
                eprintln!("report: warning: {path}: partial/in-progress event log; summarizing the lines that parse");
                emit(&summarize_event_log(&text));
                return Ok(());
            }
            if text.contains(FLIGHT_SCHEMA) {
                eprintln!("report: warning: {path}: torn flight recording ({e}); the daemon died mid-persist");
                return Ok(());
            }
            return Err(format!("{path}: {e}"));
        }
    };
    let schema = doc.get("schema").and_then(|s| s.as_str()).unwrap_or("");
    if schema == FLIGHT_SCHEMA {
        print_flight(&doc);
        return Ok(());
    }
    if schema != phigraph_core::export::REPORT_SCHEMA {
        // A one-line event log parses as a single event object.
        if doc.get("ev").and_then(|v| v.as_str()).is_some() {
            eprintln!("report: warning: {path}: single-event log; summarizing");
            emit(&summarize_event_log(&text));
            return Ok(());
        }
        return Err(format!(
            "{path}: schema {schema:?} is not {:?} (dump one with \
             `phigraph run ... --trace-out r.json --trace-format json`)",
            phigraph_core::export::REPORT_SCHEMA
        ));
    }
    let combined = doc
        .get("combined")
        .ok_or_else(|| format!("{path}: missing combined report"))?;
    let devices: &[Json] = doc.get("devices").and_then(|d| d.as_arr()).unwrap_or(&[]);

    print_header(combined);
    if let Some(serve) = doc.get("serve") {
        // Serving-run report: the interesting decomposition is by
        // tenant, not by engine phase (a serving run has no steps).
        print_serve(serve);
        return Ok(());
    }
    print_decomposition(combined, devices);
    print_messages(combined);
    print_recovery(combined);
    print_failover(combined);
    print_integrity(combined);
    if args.has("steps") {
        let top: usize = args.flag_parse("top", usize::MAX)?;
        print_steps(combined, top);
    }
    Ok(())
}

fn str_or<'a>(j: &'a Json, key: &str, default: &'a str) -> &'a str {
    j.get(key).and_then(|v| v.as_str()).unwrap_or(default)
}

fn steps(j: &Json) -> &[Json] {
    j.get("steps").and_then(|s| s.as_arr()).unwrap_or(&[])
}

/// Sum one simulated phase time over a report's steps.
fn phase_sum(j: &Json, phase: &str) -> f64 {
    steps(j)
        .iter()
        .map(|s| s.get("times").map_or(0.0, |t| t.f64_or_0(phase)))
        .sum()
}

/// Sum one counter over a report's steps.
fn counter_sum(j: &Json, name: &str) -> u64 {
    steps(j)
        .iter()
        .map(|s| s.get("counters").map_or(0, |c| c.u64_or_0(name)))
        .sum()
}

fn print_header(combined: &Json) {
    println!(
        "run: {} on {} (engine {})",
        str_or(combined, "app", "?"),
        str_or(combined, "device", "?"),
        str_or(combined, "mode", "?"),
    );
    println!(
        "supersteps: {}   wall {:.3} s   simulated {:.4} s (exec {:.4} + comm {:.4})",
        steps(combined).len(),
        combined.f64_or_0("wall"),
        combined.f64_or_0("sim_total"),
        combined.f64_or_0("sim_exec"),
        combined.f64_or_0("sim_comm"),
    );
}

/// The Fig. 5 decomposition: simulated seconds per sub-step, per device.
fn print_decomposition(combined: &Json, devices: &[Json]) {
    println!("\nphase decomposition (simulated seconds, share of exec):");
    println!(
        "  {:<22} {:>14} {:>14} {:>14} {:>10}",
        "device", "generate", "process", "update", "comm"
    );
    let mut rows: Vec<(String, &Json)> = vec![("combined".to_string(), combined)];
    for (i, d) in devices.iter().enumerate() {
        // A single-device run dumps the same report twice; skip the echo.
        if devices.len() == 1 && steps(d).len() == steps(combined).len() {
            let label = str_or(d, "device", "?");
            if label == str_or(combined, "device", "?") {
                continue;
            }
        }
        rows.push((format!("dev{i} {}", str_or(d, "device", "?")), d));
    }
    for (label, r) in rows {
        let (gen, proc_t, upd) = (
            phase_sum(r, "gen"),
            phase_sum(r, "process"),
            phase_sum(r, "update"),
        );
        let exec = (gen + proc_t + upd).max(f64::MIN_POSITIVE);
        let comm: f64 = steps(r).iter().map(|s| s.f64_or_0("comm_time")).sum();
        println!(
            "  {:<22} {:>8.4} {:>4.0}% {:>8.4} {:>4.0}% {:>8.4} {:>4.0}% {:>10.4}",
            truncate(&label, 22),
            gen,
            100.0 * gen / exec,
            proc_t,
            100.0 * proc_t / exec,
            upd,
            100.0 * upd / exec,
            comm,
        );
    }
}

fn print_messages(combined: &Json) {
    println!("\nmessage totals:");
    let rows = [
        ("active vertices scanned", "active_vertices"),
        ("edges traversed", "gen_edges"),
        ("messages inserted locally", "msgs_local"),
        ("messages sent to peer", "msgs_remote"),
        ("messages reduced", "proc_msgs"),
        ("vertices updated", "updated_vertices"),
        ("wire bytes exchanged", "comm_bytes"),
    ];
    for (label, key) in rows {
        let v = counter_sum(combined, key);
        if v > 0 {
            println!("  {label:<28} {v}");
        }
    }
}

fn print_recovery(combined: &Json) {
    let Some(rec) = combined.get("recovery") else {
        return;
    };
    let fields = [
        "checkpoints_written",
        "checkpoint_bytes",
        "rollbacks",
        "retries",
        "corrupt_snapshots_rejected",
        "faults_injected",
        "degraded",
    ];
    if fields.iter().all(|f| rec.u64_or_0(f) == 0) {
        return;
    }
    println!("\nrecovery:");
    for f in fields {
        let v = rec.u64_or_0(f);
        if v > 0 {
            println!("  {:<28} {v}", f.replace('_', " "));
        }
    }
}

fn print_failover(combined: &Json) {
    let Some(f) = combined.get("failover") else {
        return;
    };
    let fields = [
        "crash_detections",
        "hang_detections",
        "migrations",
        "rebalances",
        "exchange_drops",
        "exchange_timeouts",
        "watchdog_latency_ms",
        "resume_step",
        "supersteps_replayed",
        "degraded_single",
    ];
    if fields.iter().all(|k| f.u64_or_0(k) == 0) {
        return;
    }
    println!("\nfailover:");
    for k in fields {
        let v = f.u64_or_0(k);
        if v > 0 {
            println!("  {:<28} {v}", k.replace('_', " "));
        }
    }
}

fn print_integrity(combined: &Json) {
    let Some(i) = combined.get("integrity") else {
        return;
    };
    let fields = [
        "frame_checks",
        "frame_detections",
        "frame_reexchanges",
        "group_checks",
        "group_detections",
        "state_checks",
        "state_detections",
        "audits_run",
        "audit_violations",
        "false_positive_audits",
        "quarantined_groups",
        "group_heals",
        "step_replays",
        "scrub_passes",
    ];
    if fields.iter().all(|k| i.u64_or_0(k) == 0) {
        return;
    }
    println!("\nintegrity:");
    for k in fields {
        let v = i.u64_or_0(k);
        if v > 0 {
            println!("  {:<28} {v}", k.replace('_', " "));
        }
    }
}

/// Tenant decomposition of a serving run (`phigraph serve` reports).
fn print_serve(serve: &Json) {
    println!(
        "\nserving pool: {} workers, queue cap {} ({} queued, {} running at shutdown)",
        serve.u64_or_0("workers"),
        serve.u64_or_0("queue_cap"),
        serve.u64_or_0("queued"),
        serve.u64_or_0("running"),
    );
    println!(
        "jobs: {} completed, {} rejected",
        serve.u64_or_0("completed"),
        serve.u64_or_0("rejected"),
    );
    let tenants = serve.get("tenants").and_then(|t| t.as_arr()).unwrap_or(&[]);
    if tenants.is_empty() {
        return;
    }
    println!("\nper-tenant decomposition:");
    println!(
        "  {:<16} {:>3} {:>3} {:>6} {:>6} {:>5} {:>5} {:>5} {:>10} {:>10} {:>8}",
        "tenant", "w", "cap", "sub", "done", "rej", "canc", "exp", "wait ms", "exec ms", "steps"
    );
    for t in tenants {
        println!(
            "  {:<16} {:>3} {:>3} {:>6} {:>6} {:>5} {:>5} {:>5} {:>10.1} {:>10.1} {:>8}",
            truncate(str_or(t, "tenant", "?"), 16),
            t.u64_or_0("weight"),
            t.u64_or_0("cap"),
            t.u64_or_0("submitted"),
            t.u64_or_0("completed"),
            t.u64_or_0("rejected"),
            t.u64_or_0("cancelled"),
            t.u64_or_0("expired"),
            t.u64_or_0("wait_us") as f64 / 1000.0,
            t.u64_or_0("exec_us") as f64 / 1000.0,
            t.u64_or_0("supersteps"),
        );
    }
}

fn print_steps(combined: &Json, top: usize) {
    println!("\nper-superstep breakdown (simulated seconds):");
    println!(
        "  {:>5} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "step", "generate", "process", "update", "comm", "msgs", "active"
    );
    for s in steps(combined).iter().take(top) {
        let t = s.get("times");
        let c = s.get("counters");
        println!(
            "  {:>5} {:>10.5} {:>10.5} {:>10.5} {:>10.5} {:>12} {:>12}",
            s.u64_or_0("step"),
            t.map_or(0.0, |t| t.f64_or_0("gen")),
            t.map_or(0.0, |t| t.f64_or_0("process")),
            t.map_or(0.0, |t| t.f64_or_0("update")),
            s.f64_or_0("comm_time"),
            c.map_or(0, |c| c.u64_or_0("proc_msgs")),
            c.map_or(0, |c| c.u64_or_0("active_vertices")),
        );
    }
}

/// Does this text look like a `--events-out` JSONL log? (Its first
/// parseable line is an object with an `"ev"` tag.)
fn looks_like_event_log(text: &str) -> bool {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .take(3)
        .any(|l| {
            Json::parse(l)
                .ok()
                .and_then(|j| j.get("ev").and_then(|v| v.as_str()).map(|_| ()))
                .is_some()
        })
}

/// Tally a JSONL event log line by line. Unparseable lines (the torn
/// tail of a crashed daemon) are counted, never fatal.
fn summarize_event_log(text: &str) -> String {
    use std::collections::BTreeMap;
    let mut by_ev: BTreeMap<String, usize> = BTreeMap::new();
    let mut by_tenant: BTreeMap<String, usize> = BTreeMap::new();
    let mut traces: std::collections::BTreeSet<String> = Default::default();
    let (mut parsed, mut torn) = (0usize, 0usize);
    let (mut first_ms, mut last_ms) = (f64::INFINITY, 0.0f64);
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(j) = Json::parse(line) else {
            torn += 1;
            continue;
        };
        let Some(ev) = j.get("ev").and_then(|v| v.as_str()) else {
            torn += 1;
            continue;
        };
        parsed += 1;
        *by_ev.entry(ev.to_string()).or_insert(0) += 1;
        if let Some(t) = j.get("tenant").and_then(|v| v.as_str()) {
            *by_tenant.entry(t.to_string()).or_insert(0) += 1;
        }
        if let Some(t) = j.get("trace").and_then(|v| v.as_str()) {
            traces.insert(t.to_string());
        }
        let ms = j.f64_or_0("t_ms");
        first_ms = first_ms.min(ms);
        last_ms = last_ms.max(ms);
    }
    let mut out = format!("event log: {parsed} event(s)");
    if torn > 0 {
        out.push_str(&format!(", {torn} torn/foreign line(s) skipped"));
    }
    if parsed > 0 && last_ms >= first_ms {
        out.push_str(&format!(
            ", spanning {:.1} ms of daemon time",
            last_ms - first_ms
        ));
    }
    out.push('\n');
    if !traces.is_empty() {
        out.push_str(&format!("distinct traces: {}\n", traces.len()));
    }
    if !by_ev.is_empty() {
        out.push_str("by event:\n");
        for (ev, n) in &by_ev {
            out.push_str(&format!("  {ev:<10} {n}\n"));
        }
    }
    if !by_tenant.is_empty() {
        out.push_str("by tenant:\n");
        for (t, n) in &by_tenant {
            out.push_str(&format!("  {:<16} {n}\n", truncate(t, 16)));
        }
    }
    out
}

/// Write to stdout ignoring errors: postmortem output is routinely
/// piped into `grep -q`/`head`, which close the pipe early — that must
/// not turn into a panic.
fn emit(s: &str) {
    use std::io::Write;
    let _ = std::io::stdout().write_all(s.as_bytes());
}

/// Postmortem summary of a flight recording (`flight.json`).
fn print_flight(doc: &Json) {
    let mut out = format!(
        "flight recording: reason {:?}, {} event(s) in the ring, {} dropped before the crash\n",
        doc.get("reason").and_then(|v| v.as_str()).unwrap_or("?"),
        doc.get("events")
            .and_then(|v| v.as_arr())
            .map_or(0, |a| a.len()),
        doc.u64_or_0("dropped"),
    );
    let events = doc.get("events").and_then(|v| v.as_arr()).unwrap_or(&[]);
    let tail = events.len().saturating_sub(10);
    if !events.is_empty() {
        out.push_str(&format!("last {} event(s):\n", events.len() - tail));
    }
    for e in &events[tail..] {
        out.push_str(&format!(
            "  {:>10.1} ms  {:<8} {:<8} id={} tenant={}\n",
            e.f64_or_0("t_ms"),
            e.get("ev").and_then(|v| v.as_str()).unwrap_or("?"),
            e.get("trace").and_then(|v| v.as_str()).unwrap_or("-"),
            e.get("id").and_then(|v| v.as_str()).unwrap_or("-"),
            e.get("tenant").and_then(|v| v.as_str()).unwrap_or("-"),
        ));
    }
    emit(&out);
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOG: &str = "\
{\"ev\":\"admit\",\"t_ms\":1.0,\"trace\":\"t1\",\"id\":\"q1\",\"tenant\":\"gold\"}
{\"ev\":\"start\",\"t_ms\":2.0,\"trace\":\"t1\",\"id\":\"q1\",\"tenant\":\"gold\"}
{\"ev\":\"done\",\"t_ms\":9.5,\"trace\":\"t1\",\"id\":\"q1\",\"tenant\":\"gold\"}
{\"ev\":\"admit\",\"t_ms\":3.0,\"trace\":\"t2\",\"id\":\"q2\",\"tenant\":\"br";

    #[test]
    fn partial_event_logs_are_recognized_and_tallied() {
        assert!(looks_like_event_log(LOG));
        assert!(!looks_like_event_log("{\"schema\":\"other\"}"));
        let summary = summarize_event_log(LOG);
        assert!(summary.contains("3 event(s)"), "{summary}");
        assert!(summary.contains("1 torn/foreign line(s)"), "{summary}");
        assert!(summary.contains("8.5 ms"), "t_ms span: {summary}");
        assert!(summary.contains("distinct traces: 1"), "{summary}");
        assert!(
            summary.contains("admit") && summary.contains("gold"),
            "{summary}"
        );
    }
}
