//! `phigraph tune` — auto-tune the pipeline split and partitioning ratio
//! for a workload (the paper's §VII future work, exposed as a command).

use crate::args::Args;
use crate::cmd_generate::load_graph;
use phigraph_apps::{Bfs, PageRank, Sssp, TopoSort, Wcc};
use phigraph_comm::PcieLink;
use phigraph_core::api::VertexProgram;
use phigraph_core::engine::EngineConfig;
use phigraph_core::tune::{
    default_pipeline_candidates, default_ratio_candidates, tune_pipeline, tune_ratio,
};
use phigraph_device::DeviceSpec;
use phigraph_graph::Csr;

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let app = args.pos(0, "app")?.to_string();
    let graph_path = args.pos(1, "graph")?;
    let g = load_graph(graph_path)?;
    let probe: usize = args.flag_parse("probe-steps", 2usize)?;
    let blocks: usize = args.flag_parse("blocks", 64usize)?;
    let iters: usize = args.flag_parse("iters", 10usize)?;
    let source: u32 = args.flag_parse("source", 0u32)?;

    match app.as_str() {
        "pagerank" => tune_app(
            &PageRank {
                damping: 0.85,
                iterations: iters,
            },
            &g,
            probe,
            blocks,
        ),
        "bfs" => tune_app(&Bfs { source }, &g, probe, blocks),
        "sssp" => tune_app(&Sssp { source }, &g, probe, blocks),
        "toposort" => tune_app(&TopoSort::new(&g), &g, probe, blocks),
        "wcc" => tune_app(&Wcc::new(&g), &g, probe, blocks),
        other => Err(format!(
            "cannot tune app {other:?} (semicluster uses the object path)"
        )),
    }
}

fn tune_app<P: VertexProgram>(
    program: &P,
    g: &Csr,
    probe: usize,
    blocks: usize,
) -> Result<(), String> {
    let mic = DeviceSpec::xeon_phi_se10p();
    let candidates = default_pipeline_candidates(&mic);
    let split = tune_pipeline(program, g, &mic, &candidates, probe);
    println!(
        "pipeline split: {} workers + {} movers (probe {:.6}s; candidates {:?})",
        split.workers, split.movers, split.predicted, candidates
    );

    let mut mic_cfg = EngineConfig::pipelined();
    mic_cfg.sim_workers = split.workers;
    mic_cfg.sim_movers = split.movers;
    let tuned = tune_ratio(
        program,
        g,
        [DeviceSpec::xeon_e5_2680(), mic],
        [EngineConfig::locking(), mic_cfg],
        PcieLink::gen2_x16(),
        &default_ratio_candidates(),
        blocks,
        probe,
    );
    println!(
        "partitioning ratio: {} (probe {:.6}s over {blocks} hybrid blocks)",
        tuned.ratio, tuned.predicted
    );
    println!(
        "re-run with: run {} <graph> --hetero --ratio {}",
        P::NAME,
        tuned.ratio
    );
    Ok(())
}
