//! `phigraph run` — execute an application over a graph file.

use crate::args::Args;
use crate::cmd_generate::load_graph;
use phigraph_apps::{Bfs, KCore, PageRank, SemiClustering, Sssp, TopoSort, Wcc};
use phigraph_comm::PcieLink;
use phigraph_core::api::VertexProgram;
use phigraph_core::engine::obj::{run_obj_hetero, run_obj_single};
use phigraph_core::engine::{run_hetero, run_single, EngineConfig, ExecMode};
use phigraph_core::metrics::RunReport;
use phigraph_device::DeviceSpec;
use phigraph_graph::Csr;
use phigraph_partition::{partition, DevicePartition, PartitionScheme, Ratio};
use std::io::Write;

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let app = args.pos(0, "app")?.to_string();
    let graph_path = args.pos(1, "graph")?;
    let g = load_graph(graph_path)?;
    let source: u32 = args.flag_parse("source", 0u32)?;
    if (source as usize) >= g.num_vertices() && g.num_vertices() > 0 {
        return Err(format!(
            "--source {source} out of range for {} vertices",
            g.num_vertices()
        ));
    }
    let iters: usize = args.flag_parse("iters", 20usize)?;

    let (report, lines) = match app.as_str() {
        "pagerank" => drive(
            &PageRank {
                damping: 0.85,
                iterations: iters,
            },
            &g,
            &args,
            |v| format!("{v:.6}"),
        )?,
        "bfs" => drive(&Bfs { source }, &g, &args, |v| v.to_string())?,
        "sssp" => drive(&Sssp { source }, &g, &args, |v| format!("{v}"))?,
        "toposort" => drive(&TopoSort::new(&g), &g, &args, |v| {
            format!("level={} remaining={}", v.level, v.remaining)
        })?,
        "wcc" => drive(&Wcc::new(&g), &g, &args, |v| v.to_string())?,
        "kcore" => {
            let k: u32 = args.flag_parse("k", 2u32)?;
            let (report, lines) = drive(&KCore::new(&g, k), &g, &args, |v| {
                format!("alive={} live_degree={}", v.alive, v.live_degree)
            })?;
            println!(
                "k-core(k={k}): {} of {} vertices survive",
                lines.iter().filter(|l| l.contains("alive=true")).count(),
                g.num_vertices()
            );
            (report, lines)
        }
        "semicluster" => drive_semicluster(&g, &args, iters)?,
        other => return Err(format!("unknown app {other:?}")),
    };

    println!("{}", report.summary());
    if let Some(out) = args.flag("out") {
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?,
        );
        for (v, line) in lines.iter().enumerate() {
            writeln!(f, "{v}\t{line}").map_err(|e| format!("write {out}: {e}"))?;
        }
        f.flush().map_err(|e| e.to_string())?;
        println!("wrote {} vertex values -> {out}", lines.len());
    }
    Ok(())
}

fn engine_config(args: &Args) -> Result<EngineConfig, String> {
    Ok(match args.flag_or("engine", "lock") {
        "lock" => EngineConfig::locking(),
        "pipe" => EngineConfig::pipelined(),
        "omp" => EngineConfig::flat(),
        "seq" => EngineConfig::sequential(),
        other => return Err(format!("unknown engine {other:?}")),
    })
}

fn device_spec(args: &Args) -> Result<DeviceSpec, String> {
    Ok(match args.flag_or("device", "cpu") {
        "cpu" => DeviceSpec::xeon_e5_2680(),
        "mic" => DeviceSpec::xeon_phi_se10p(),
        other => return Err(format!("unknown device {other:?}")),
    })
}

fn load_or_build_partition(g: &Csr, args: &Args) -> Result<DevicePartition, String> {
    if let Some(path) = args.flag("partition") {
        let f = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        let p =
            phigraph_partition::file::read_partition(f).map_err(|e| format!("read {path}: {e}"))?;
        if p.assign.len() != g.num_vertices() {
            return Err(format!(
                "partition file covers {} vertices, graph has {}",
                p.assign.len(),
                g.num_vertices()
            ));
        }
        Ok(p)
    } else {
        let ratio: Ratio = args.flag_or("ratio", "1:1").parse()?;
        Ok(partition(g, PartitionScheme::hybrid_default(), ratio, 7))
    }
}

fn drive<P: VertexProgram>(
    program: &P,
    g: &Csr,
    args: &Args,
    fmt: impl Fn(&P::Value) -> String,
) -> Result<(RunReport, Vec<String>), String> {
    let out = if args.has("hetero") || args.has("partition") {
        let p = load_or_build_partition(g, args)?;
        let mic_cfg = match engine_config(args)?.mode {
            ExecMode::Locking => EngineConfig::locking(),
            _ => EngineConfig::pipelined(),
        };
        run_hetero(
            program,
            g,
            &p,
            [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
            [EngineConfig::locking(), mic_cfg],
            PcieLink::gen2_x16(),
        )
    } else {
        run_single(program, g, device_spec(args)?, &engine_config(args)?)
    };
    let lines = out.values.iter().map(fmt).collect();
    Ok((out.report, lines))
}

fn drive_semicluster(
    g: &Csr,
    args: &Args,
    iters: usize,
) -> Result<(RunReport, Vec<String>), String> {
    let sc = SemiClustering {
        iterations: iters.min(12),
        ..Default::default()
    };
    let out = if args.has("hetero") || args.has("partition") {
        let p = load_or_build_partition(g, args)?;
        run_obj_hetero(
            &sc,
            g,
            &p,
            [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
            [EngineConfig::locking(), EngineConfig::pipelined()],
            PcieLink::gen2_x16(),
        )
    } else {
        run_obj_single(&sc, g, device_spec(args)?, &engine_config(args)?)
    };
    let lines = out
        .values
        .iter()
        .map(|clusters| match clusters.first() {
            Some(c) => format!(
                "top-cluster={:?} score={:.4}",
                c.members,
                c.score(sc.boundary_factor)
            ),
            None => "no-cluster".to_string(),
        })
        .collect();
    Ok((out.report, lines))
}
