//! `phigraph run` — execute an application over a graph file.

use crate::args::Args;
use crate::cmd_generate::load_graph;
use phigraph_apps::{
    Bfs, KCore, PageRank, PersonalizedPageRank, SemiClustering, Sssp, TopoSort, Wcc,
};
use phigraph_comm::PcieLink;
use phigraph_core::api::VertexProgram;
use phigraph_core::engine::obj::{run_obj_hetero, run_obj_single};
use phigraph_core::engine::{
    run_ranks, run_ranks_failover, run_recoverable, run_single, EngineConfig, ExecMode,
};
use phigraph_core::metrics::RunReport;
use phigraph_device::DeviceSpec;
use phigraph_graph::state::PodState;
use phigraph_graph::Csr;
use phigraph_partition::{partition_n, DevicePartition, PartitionScheme, Shares, MAX_RANKS};
use phigraph_recover::{
    CheckpointStore, DirStore, FailoverConfig, FailoverPolicy, FaultPlan, IntegrityMode,
};
use phigraph_trace::{Trace, TraceLevel};
use std::io::Write;

/// What every `drive_*` helper hands back to the dispatcher: the combined
/// report, per-device reports, formatted value lines, and — for apps with
/// POD values — the FNV-1a checksum behind `--checksum`.
type DriveResult = Result<(RunReport, Vec<RunReport>, Vec<String>, Option<u64>), String>;

/// Digest of a final value vector (shared with `phigraph serve`, so the
/// daemon's per-job checksums compare directly against one-shot runs).
type ChecksumFn<V> = fn(&[V]) -> u64;

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let app = args.pos(0, "app")?.to_string();
    let graph_path = args.pos(1, "graph")?;
    let g = load_graph(graph_path)?;
    let source: u32 = args.flag_parse("source", 0u32)?;
    if (source as usize) >= g.num_vertices() && g.num_vertices() > 0 {
        return Err(format!(
            "--source {source} out of range for {} vertices",
            g.num_vertices()
        ));
    }
    let iters: usize = args.flag_parse("iters", 20usize)?;
    let trace = build_trace(&args)?;

    let (report, device_reports, lines, checksum) = match app.as_str() {
        "pagerank" => drive_pod(
            &PageRank {
                damping: 0.85,
                iterations: iters,
            },
            &g,
            &args,
            trace.as_ref(),
            |v| format!("{v:.6}"),
        )?,
        "ppr" => drive_pod(
            &PersonalizedPageRank {
                source,
                damping: 0.85,
                iterations: iters,
            },
            &g,
            &args,
            trace.as_ref(),
            |v| format!("{v:.6}"),
        )?,
        "bfs" => drive_pod(&Bfs { source }, &g, &args, trace.as_ref(), |v| {
            v.to_string()
        })?,
        "sssp" => drive_pod(&Sssp { source }, &g, &args, trace.as_ref(), |v| {
            format!("{v}")
        })?,
        "toposort" => drive(&TopoSort::new(&g), &g, &args, trace.as_ref(), None, |v| {
            format!("level={} remaining={}", v.level, v.remaining)
        })?,
        "wcc" => drive_pod(&Wcc::new(&g), &g, &args, trace.as_ref(), |v| v.to_string())?,
        "kcore" => {
            let k: u32 = args.flag_parse("k", 2u32)?;
            let (report, devs, lines, chk) =
                drive(&KCore::new(&g, k), &g, &args, trace.as_ref(), None, |v| {
                    format!("alive={} live_degree={}", v.alive, v.live_degree)
                })?;
            println!(
                "k-core(k={k}): {} of {} vertices survive",
                lines.iter().filter(|l| l.contains("alive=true")).count(),
                g.num_vertices()
            );
            (report, devs, lines, chk)
        }
        "semicluster" => drive_semicluster(&g, &args, iters, trace.as_ref())?,
        other => return Err(format!("unknown app {other:?}")),
    };

    if args.has("checksum") {
        match checksum {
            // The same fingerprint the serving daemon reports: FNV-1a
            // over the little-endian value encoding.
            Some(c) => println!("checksum={c:#018x}"),
            None => {
                return Err(format!(
                    "--checksum is unsupported for app {app:?} (needs a plain-old-data value type)"
                ))
            }
        }
    }
    println!("{}", report.summary());
    write_trace_output(&args, trace.as_ref(), &report, &device_reports)?;
    if let Some(out) = args.flag("out") {
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?,
        );
        for (v, line) in lines.iter().enumerate() {
            writeln!(f, "{v}\t{line}").map_err(|e| format!("write {out}: {e}"))?;
        }
        f.flush().map_err(|e| e.to_string())?;
        println!("wrote {} vertex values -> {out}", lines.len());
    }
    Ok(())
}

/// Build the shared trace from `--trace-level` / `--trace-out`. Giving
/// `--trace-out` alone implies phase-level tracing.
fn build_trace(args: &Args) -> Result<Option<Trace>, String> {
    if !args.has("trace-out") && !args.has("trace-level") {
        return Ok(None);
    }
    let level: TraceLevel = args.flag_or("trace-level", "phase").parse()?;
    Ok(Some(Trace::new(level)))
}

/// Attach the shared trace (when one was requested) to an engine config.
fn attach(cfg: EngineConfig, trace: Option<&Trace>) -> EngineConfig {
    match trace {
        Some(t) => cfg.with_trace(t.clone()),
        None => cfg,
    }
}

/// Write `--trace-out` in the format selected by `--trace-format`.
fn write_trace_output(
    args: &Args,
    trace: Option<&Trace>,
    report: &RunReport,
    device_reports: &[RunReport],
) -> Result<(), String> {
    let Some(path) = args.flag("trace-out") else {
        return Ok(());
    };
    let format = args.flag_or("trace-format", "chrome");
    let text = match format {
        "chrome" => match trace {
            Some(t) => t.export_chrome(),
            None => return Err("--trace-format chrome needs --trace-level phase|fine".into()),
        },
        "json" => phigraph_core::export::run_report_json(report, device_reports),
        "prom" => {
            let snap = trace.map(|t| t.snapshot());
            phigraph_core::export::prometheus_text(report, snap.as_ref())
        }
        other => {
            return Err(format!(
                "unknown --trace-format {other:?} (expected chrome|json|prom)"
            ))
        }
    };
    std::fs::write(path, text.as_bytes()).map_err(|e| format!("write {path}: {e}"))?;
    if let Some(t) = trace {
        let snap = t.snapshot();
        println!(
            "wrote {format} trace -> {path} ({} spans on {} threads, {} dropped)",
            snap.total_spans(),
            snap.threads.len(),
            snap.total_dropped()
        );
    } else {
        println!("wrote {format} trace -> {path}");
    }
    Ok(())
}

fn engine_config(args: &Args) -> Result<EngineConfig, String> {
    Ok(match args.flag_or("engine", "lock") {
        "lock" => EngineConfig::locking(),
        "pipe" => EngineConfig::pipelined(),
        "omp" => EngineConfig::flat(),
        "seq" => EngineConfig::sequential(),
        other => return Err(format!("unknown engine {other:?}")),
    })
}

fn device_spec(args: &Args) -> Result<DeviceSpec, String> {
    Ok(match args.flag_or("device", "cpu") {
        "cpu" => DeviceSpec::xeon_e5_2680(),
        "mic" => DeviceSpec::xeon_phi_se10p(),
        other => return Err(format!("unknown device {other:?}")),
    })
}

/// `--devices N`: size of the rank fabric for hetero runs. Rank 0 models
/// the host CPU; ranks 1..N-1 model coprocessor cards.
fn device_count(args: &Args) -> Result<usize, String> {
    let n: usize = args.flag_parse("devices", 2usize)?;
    if !(2..=MAX_RANKS).contains(&n) {
        return Err(format!(
            "--devices {n} out of range (expected 2..={MAX_RANKS})"
        ));
    }
    Ok(n)
}

/// Device specs for an N-rank fabric: rank 0 is the CPU, the rest MICs.
fn fabric_specs(n: usize) -> Vec<DeviceSpec> {
    (0..n)
        .map(|r| {
            if r == 0 {
                DeviceSpec::xeon_e5_2680()
            } else {
                DeviceSpec::xeon_phi_se10p()
            }
        })
        .collect()
}

fn load_or_build_partition(g: &Csr, args: &Args, n: usize) -> Result<DevicePartition, String> {
    if let Some(path) = args.flag("partition") {
        let f = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        let p =
            phigraph_partition::file::read_partition(f).map_err(|e| format!("read {path}: {e}"))?;
        if p.assign.len() != g.num_vertices() {
            return Err(format!(
                "partition file covers {} vertices, graph has {}",
                p.assign.len(),
                g.num_vertices()
            ));
        }
        if p.num_ranks() > n {
            return Err(format!(
                "partition file assigns {} ranks but --devices is {n}",
                p.num_ranks()
            ));
        }
        Ok(p)
    } else {
        let shares: Shares = match args.flag("ratio") {
            Some(s) => s.parse()?,
            None => Shares::even(n),
        };
        if shares.num_ranks() != n {
            return Err(format!(
                "--ratio has {} parts but --devices is {n}",
                shares.num_ranks()
            ));
        }
        Ok(partition_n(
            g,
            PartitionScheme::hybrid_default(),
            &shares,
            7,
        ))
    }
}

/// Whether any fault-tolerance flag was given.
fn recovery_requested(args: &Args) -> bool {
    args.has("checkpoint-every")
        || args.has("checkpoint-dir")
        || args.has("resume")
        || args.has("faults")
        || args.has("watchdog-ms")
        || args.has("failover")
        || args.has("rebalance-after")
        || args.has("integrity")
        || args.has("scrub-every")
}

/// Fold the liveness flags into a failover configuration.
fn failover_config(args: &Args) -> Result<FailoverConfig, String> {
    let d = FailoverConfig::default();
    let policy: FailoverPolicy = args.flag_or("failover", "migrate").parse()?;
    Ok(
        d.with_watchdog_ms(args.flag_parse("watchdog-ms", d.watchdog_ms)?)
            .with_policy(policy)
            .with_rebalance_after(args.flag_parse("rebalance-after", d.rebalance_after)?),
    )
}

/// Parse `--faults step:kind[:dev],...` through the shared
/// [`FaultPlan`] spec-string parser (see `phigraph_recover::fault` for the
/// kind names; `phigraph run --help` lists them).
fn parse_fault_plan(s: &str) -> Result<FaultPlan, String> {
    let plan: FaultPlan = s.parse()?;
    if plan.faults.is_empty() {
        return Err("--faults given but no fault specs parsed".to_string());
    }
    Ok(plan)
}

/// Fold the fault-tolerance and integrity flags into an engine
/// configuration.
fn apply_recovery_flags(mut cfg: EngineConfig, args: &Args) -> Result<EngineConfig, String> {
    let defaults = cfg.recovery;
    cfg = cfg
        .with_checkpoint_every(args.flag_parse("checkpoint-every", defaults.checkpoint_every)?)
        .with_max_retries(args.flag_parse("max-retries", defaults.max_retries)?)
        .with_backoff_ms(args.flag_parse("backoff-ms", defaults.backoff_base_ms)?);
    let integrity: IntegrityMode = args.flag_or("integrity", cfg.integrity.name()).parse()?;
    let scrub_every = args.flag_parse("scrub-every", cfg.scrub_every)?;
    cfg = cfg.with_integrity(integrity).with_scrub_every(scrub_every);
    if let Some(spec) = args.flag("faults") {
        cfg = cfg.with_fault_plan(parse_fault_plan(spec)?.injector());
    }
    Ok(cfg)
}

/// Driver for the apps whose vertex value is plain-old-data: adds the
/// checkpoint/resume/fault-injection path on top of [`drive`].
fn drive_pod<P: VertexProgram>(
    program: &P,
    g: &Csr,
    args: &Args,
    trace: Option<&Trace>,
    fmt: impl Fn(&P::Value) -> String,
) -> DriveResult
where
    P::Value: PodState,
{
    if !recovery_requested(args) {
        return drive(
            program,
            g,
            args,
            trace,
            Some(phigraph_serve::values_checksum::<P::Value>),
            fmt,
        );
    }
    let cfg = attach(apply_recovery_flags(engine_config(args)?, args)?, trace);
    let out = if args.has("hetero") || args.has("partition") || args.has("devices") {
        let n = device_count(args)?;
        let p = load_or_build_partition(g, args, n)?;
        let fcfg = failover_config(args)?;
        let mic_cfg = match cfg.mode {
            ExecMode::Locking => cfg.clone(),
            _ => attach(
                apply_recovery_flags(EngineConfig::pipelined(), args)?,
                trace,
            ),
        };
        let cpu_cfg = attach(apply_recovery_flags(EngineConfig::locking(), args)?, trace);
        // All ranks share one injector so each planned fault fires once.
        let (cpu_cfg, mic_cfg) = match &cfg.fault_plan {
            Some(inj) => (
                cpu_cfg.with_fault_plan(inj.clone()),
                mic_cfg.with_fault_plan(inj.clone()),
            ),
            None => (cpu_cfg, mic_cfg),
        };
        let mut configs = vec![cpu_cfg];
        configs.resize(n, mic_cfg);
        // Each rank keeps its own snapshot store under the checkpoint dir
        // (`rank0`..`rankN-1`); a 2-device resume still accepts the legacy
        // `dev0`/`dev1` layout written by earlier versions.
        let dir = args.flag_or("checkpoint-dir", "phigraph-ckpt");
        let legacy = n == 2
            && !std::path::Path::new(&format!("{dir}/rank0")).exists()
            && std::path::Path::new(&format!("{dir}/dev0")).exists();
        let mut owned: Vec<DirStore> = (0..n)
            .map(|r| {
                let sub = if legacy {
                    format!("{dir}/dev{r}")
                } else {
                    format!("{dir}/rank{r}")
                };
                DirStore::open(sub)
            })
            .collect::<Result<_, _>>()?;
        let stores: Vec<&mut dyn CheckpointStore> = owned
            .iter_mut()
            .map(|s| s as &mut dyn CheckpointStore)
            .collect();
        let out = run_ranks_failover(
            program,
            g,
            &p,
            &fabric_specs(n),
            &configs,
            PcieLink::gen2_x16(),
            &fcfg,
            stores,
            args.has("resume"),
        );
        persist_run_report(dir, &out.report, &out.device_reports)?;
        out
    } else {
        if !matches!(cfg.mode, ExecMode::Locking | ExecMode::Pipelined) {
            return Err(
                "--checkpoint-every/--resume/--faults require --engine lock|pipe".to_string(),
            );
        }
        let dir = args.flag_or("checkpoint-dir", "phigraph-ckpt");
        let mut store = DirStore::open(dir)?;
        let out = run_recoverable(
            program,
            g,
            device_spec(args)?,
            &cfg,
            &mut store,
            args.has("resume"),
        );
        persist_run_report(dir, &out.report, &out.device_reports)?;
        out
    };
    let checksum = phigraph_serve::values_checksum(&out.values);
    let lines = out.values.iter().map(fmt).collect();
    Ok((out.report, out.device_reports, lines, Some(checksum)))
}

/// Leave a machine-readable run report next to the snapshots so that
/// `phigraph recover <dir>` can show the recovery and failover statistics
/// of the run that produced them.
fn persist_run_report(dir: &str, report: &RunReport, devices: &[RunReport]) -> Result<(), String> {
    let path = format!("{dir}/run_report.json");
    let text = phigraph_core::export::run_report_json(report, devices);
    std::fs::write(&path, text.as_bytes()).map_err(|e| format!("write {path}: {e}"))
}

fn drive<P: VertexProgram>(
    program: &P,
    g: &Csr,
    args: &Args,
    trace: Option<&Trace>,
    checksum_fn: Option<ChecksumFn<P::Value>>,
    fmt: impl Fn(&P::Value) -> String,
) -> DriveResult {
    if recovery_requested(args) {
        return Err(
            "checkpoint/fault flags are unsupported for this app's value type \
             (supported: pagerank, bfs, sssp, wcc)"
                .to_string(),
        );
    }
    let out = if args.has("hetero") || args.has("partition") || args.has("devices") {
        let n = device_count(args)?;
        let p = load_or_build_partition(g, args, n)?;
        let mic_cfg = match engine_config(args)?.mode {
            ExecMode::Locking => EngineConfig::locking(),
            _ => EngineConfig::pipelined(),
        };
        let mut configs = vec![attach(EngineConfig::locking(), trace)];
        configs.resize(n, attach(mic_cfg, trace));
        run_ranks(
            program,
            g,
            &p,
            &fabric_specs(n),
            &configs,
            PcieLink::gen2_x16(),
        )
    } else {
        run_single(
            program,
            g,
            device_spec(args)?,
            &attach(engine_config(args)?, trace),
        )
    };
    let checksum = checksum_fn.map(|f| f(&out.values));
    let lines = out.values.iter().map(fmt).collect();
    Ok((out.report, out.device_reports, lines, checksum))
}

fn drive_semicluster(g: &Csr, args: &Args, iters: usize, trace: Option<&Trace>) -> DriveResult {
    let sc = SemiClustering {
        iterations: iters.min(12),
        ..Default::default()
    };
    let out = if args.has("hetero") || args.has("partition") || args.has("devices") {
        if device_count(args)? > 2 {
            return Err(
                "semicluster runs on at most 2 devices (object messages are not \
                 yet rank-fabric aware); drop --devices or set it to 2"
                    .to_string(),
            );
        }
        let p = load_or_build_partition(g, args, 2)?;
        run_obj_hetero(
            &sc,
            g,
            &p,
            [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
            [
                attach(EngineConfig::locking(), trace),
                attach(EngineConfig::pipelined(), trace),
            ],
            PcieLink::gen2_x16(),
        )
    } else {
        run_obj_single(
            &sc,
            g,
            device_spec(args)?,
            &attach(engine_config(args)?, trace),
        )
    };
    let lines = out
        .values
        .iter()
        .map(|clusters| match clusters.first() {
            Some(c) => format!(
                "top-cluster={:?} score={:.4}",
                c.members,
                c.score(sc.boundary_factor)
            ),
            None => "no-cluster".to_string(),
        })
        .collect();
    Ok((out.report, out.device_reports, lines, None))
}
