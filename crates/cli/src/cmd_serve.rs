//! `phigraph serve` — load a graph once and answer concurrent
//! multi-tenant queries over it (line-delimited JSON on stdin/stdout,
//! or a unix socket with `--socket`).
//!
//! Survivability flags: `--journal-dir` turns on the crash-recovery job
//! journal (a restarted daemon replays incomplete jobs and re-emits
//! completed results), `--drain` requeues still-queued jobs into the
//! journal at shutdown instead of running them, `--shed-policy`
//! selects the overload ladder, and `--integrity-max` clamps per-job
//! integrity requests.
//!
//! Observability flags: `--metrics-sock <path>` serves one full
//! Prometheus scrape per connection (poll it with `phigraph top`),
//! `--metrics-every <secs>` writes periodic snapshot files,
//! `--events-out <path>` streams per-job causal trace events as JSONL,
//! and `--trace-level off` disables the histogram plane entirely
//! (it defaults to `phase` so live scrapes carry latency quantiles).

use crate::args::Args;
use crate::cmd_generate::load_graph;
use phigraph_core::engine::ExecMode;
use phigraph_device::DeviceSpec;
use phigraph_recover::IntegrityMode;
use phigraph_serve::{run_daemon, DaemonConfig, ServeConfig, ShedPolicy};
use phigraph_trace::{Trace, TraceLevel};
use std::sync::Arc;

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let graph_path = args.pos(0, "graph")?;
    let g = Arc::new(load_graph(graph_path)?);
    eprintln!(
        "serve: loaded {} ({} vertices, {} edges)",
        graph_path,
        g.num_vertices(),
        g.num_edges()
    );

    let mode = match args.flag_or("engine", "lock") {
        "lock" => ExecMode::Locking,
        "pipe" => ExecMode::Pipelined,
        "omp" => ExecMode::Flat,
        "seq" => ExecMode::Sequential,
        other => return Err(format!("unknown engine {other:?}")),
    };
    let (device, device_label) = match args.flag_or("device", "cpu") {
        "cpu" => (DeviceSpec::xeon_e5_2680(), "cpu"),
        "mic" => (DeviceSpec::xeon_phi_se10p(), "mic"),
        other => return Err(format!("unknown device {other:?}")),
    };
    // The serving daemon traces at `phase` by default: the sliding
    // windows and live quantiles need histograms. `--trace-level off`
    // opts out (the zero-cost batch-engine default).
    let trace = match args.flag_or("trace-level", "phase") {
        "off" => None,
        level => Some(Trace::new(level.parse::<TraceLevel>()?)),
    };

    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        workers: args.flag_parse("workers", defaults.workers)?,
        queue_cap: args.flag_parse("queue-cap", defaults.queue_cap)?,
        default_deadline_ms: match args.flag("deadline-ms") {
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("invalid value {v:?} for --deadline-ms"))?,
            ),
            None => None,
        },
        mode,
        device,
        default_weight: args.flag_parse("default-weight", defaults.default_weight)?,
        default_cap: args.flag_parse("default-cap", defaults.default_cap)?,
        watchdog_tick_ms: args.flag_parse("watchdog-tick-ms", defaults.watchdog_tick_ms)?,
        trace,
        // The daemon opens the journal itself (it owns recovery).
        journal: None,
        default_integrity: args
            .flag_or("integrity", defaults.default_integrity.name())
            .parse::<IntegrityMode>()?,
        integrity_max: args
            .flag_or("integrity-max", defaults.integrity_max.name())
            .parse::<IntegrityMode>()?,
        shed: args
            .flag_or("shed-policy", defaults.shed.name())
            .parse::<ShedPolicy>()?,
        // The daemon builds the event sink itself (it owns the flight
        // recorder's persistence paths).
        events: None,
    };

    let dcfg = DaemonConfig {
        socket: args.flag("socket").map(String::from),
        report_out: Some(args.flag_or("report-out", "run_report.json").to_string()),
        prom_out: args.flag("prom-out").map(String::from),
        tenants: parse_tenants(args.flag("tenants"))?,
        device_label: device_label.to_string(),
        journal_dir: args.flag("journal-dir").map(String::from),
        drain_on_exit: args.has("drain"),
        loader: Some(Arc::new(|path: &str| load_graph(path))),
        metrics_sock: args.flag("metrics-sock").map(String::from),
        metrics_every: match args.flag("metrics-every") {
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("invalid value {v:?} for --metrics-every"))?,
            ),
            None => None,
        },
        events_out: args.flag("events-out").map(String::from),
    };
    eprintln!(
        "serve: {} workers, queue cap {}, engine {}, {} tenants preconfigured",
        cfg.workers,
        cfg.queue_cap,
        cfg.mode.name(),
        dcfg.tenants.len()
    );
    run_daemon(g, cfg, dcfg)
}

/// Parse `--tenants "a:4:2,b:1:1"` (name:weight:cap, comma-separated;
/// weight and cap optional, defaulting to 1).
fn parse_tenants(flag: Option<&str>) -> Result<Vec<(String, u64, usize)>, String> {
    let Some(spec) = flag else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    for entry in spec.split(',').filter(|s| !s.is_empty()) {
        let mut parts = entry.split(':');
        let name = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| format!("empty tenant name in {entry:?}"))?;
        let weight: u64 = match parts.next() {
            Some(w) => w
                .parse()
                .map_err(|_| format!("bad weight in tenant spec {entry:?}"))?,
            None => 1,
        };
        let cap: usize = match parts.next() {
            Some(c) => c
                .parse()
                .map_err(|_| format!("bad cap in tenant spec {entry:?}"))?,
            None => 1,
        };
        if parts.next().is_some() {
            return Err(format!("tenant spec {entry:?} has too many fields"));
        }
        out.push((name.to_string(), weight.max(1), cap.max(1)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_specs_parse() {
        assert_eq!(parse_tenants(None).unwrap(), vec![]);
        assert_eq!(
            parse_tenants(Some("a:4:2,b:1:1,c")).unwrap(),
            vec![
                ("a".to_string(), 4, 2),
                ("b".to_string(), 1, 1),
                ("c".to_string(), 1, 1),
            ]
        );
        assert!(parse_tenants(Some("a:x:1")).is_err());
        assert!(parse_tenants(Some("a:1:2:3")).is_err());
    }
}
