//! `phigraph partition` — produce the paper's partitioning file.

use crate::args::Args;
use crate::cmd_generate::load_graph;
use phigraph_partition::file::write_partition;
use phigraph_partition::{partition, PartitionScheme, PartitionStats, Ratio};
use std::fs::File;

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let graph_path = args.pos(0, "graph")?;
    let out = args.pos(1, "out")?;
    let scheme = match args.flag_or("scheme", "hybrid") {
        "continuous" => PartitionScheme::Continuous,
        "round-robin" => PartitionScheme::RoundRobin,
        "hybrid" => PartitionScheme::Hybrid {
            blocks: args.flag_parse("blocks", 256usize)?,
        },
        other => return Err(format!("unknown scheme {other:?}")),
    };
    let ratio: Ratio = args.flag_or("ratio", "1:1").parse()?;
    let seed: u64 = args.flag_parse("seed", 7u64)?;

    let g = load_graph(graph_path)?;
    let p = partition(&g, scheme, ratio, seed);
    let f = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    write_partition(&p, f).map_err(|e| format!("write {out}: {e}"))?;

    let stats = PartitionStats::compute(&g, &p);
    println!(
        "partitioned {} vertices with {} @ {ratio} -> {out}",
        g.num_vertices(),
        scheme.name()
    );
    println!(
        "  CPU: {} vertices / {} edges   MIC: {} vertices / {} edges",
        stats.vertices[0], stats.edges[0], stats.vertices[1], stats.edges[1]
    );
    println!(
        "  cross edges {} ({:.1}%), edge-balance error {:.3}",
        stats.cross_edges,
        stats.cross_fraction() * 100.0,
        stats.edge_balance_error(ratio)
    );
    Ok(())
}
