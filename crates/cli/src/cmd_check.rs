//! `phigraph check` — run an application through the BSP contract checker
//! (out-of-range destinations, capacity overruns, non-finite messages,
//! non-termination) before committing to a full parallel run.

use crate::args::Args;
use crate::cmd_generate::load_graph;
use phigraph_apps::{Bfs, KCore, PageRank, Sssp, TopoSort, Wcc};
use phigraph_core::api::VertexProgram;
use phigraph_core::check::{check_program, CheckReport};
use phigraph_graph::Csr;

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let app = args.pos(0, "app")?.to_string();
    let graph_path = args.pos(1, "graph")?;
    let g = load_graph(graph_path)?;
    let budget: usize = args.flag_parse("step-budget", 10_000usize)?;
    let source: u32 = args.flag_parse("source", 0u32)?;
    let iters: usize = args.flag_parse("iters", 20usize)?;

    let report = match app.as_str() {
        "pagerank" => check(
            &PageRank {
                damping: 0.85,
                iterations: iters,
            },
            &g,
            budget,
        ),
        "bfs" => check(&Bfs { source }, &g, budget),
        "sssp" => check(&Sssp { source }, &g, budget),
        "toposort" => check(&TopoSort::new(&g), &g, budget),
        "wcc" => check(&Wcc::new(&g), &g, budget),
        "kcore" => {
            let k: u32 = args.flag_parse("k", 2u32)?;
            check(&KCore::new(&g, k), &g, budget)
        }
        other => return Err(format!("cannot check app {other:?}")),
    };

    println!(
        "checked {} supersteps, {} messages",
        report.supersteps, report.messages
    );
    if report.is_clean() {
        println!("contract check: CLEAN");
        Ok(())
    } else {
        for v in &report.violations {
            println!("violation: {v:?}");
        }
        Err(format!("{} contract violations", report.violations.len()))
    }
}

fn check<P: VertexProgram>(program: &P, g: &Csr, budget: usize) -> CheckReport {
    check_program(program, g, budget)
}
