//! `phigraph bench` — the perf-trajectory harness behind the main driver.
//!
//! Thin forwarder to [`phigraph_bench::runner`], which also backs the
//! standalone `phigraph-bench` binary; both accept the same
//! `run`/`compare`/`perturb`/`list` commands, and a regression surfaces
//! here as an `Err` (exit code 2) exactly like any other CLI failure.

pub fn run(argv: &[String]) -> Result<(), String> {
    phigraph_bench::runner::main(argv)
}
