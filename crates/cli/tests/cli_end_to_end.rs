//! End-to-end tests driving the `phigraph` binary as a subprocess:
//! generate → info → partition → run, over real files.

use std::path::PathBuf;
use std::process::{Command, Output};

fn phigraph(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_phigraph"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("phigraph-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn generate_info_partition_run_pipeline() {
    let dir = tmpdir("pipeline");
    let graph = dir.join("g.bin");
    let graph_s = graph.to_str().unwrap();

    // generate
    let o = phigraph(&[
        "generate", "pokec", graph_s, "--scale", "tiny", "--seed", "3",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("wrote pokec graph"));
    assert!(graph.exists());

    // info
    let o = phigraph(&["info", graph_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    let info = stdout(&o);
    assert!(info.contains("vertices   1024"));
    assert!(info.contains("out-degree histogram"));
    assert!(info.contains("top-5 out-degree hubs"));

    // partition
    let part = dir.join("g.part");
    let part_s = part.to_str().unwrap();
    let o = phigraph(&[
        "partition",
        graph_s,
        part_s,
        "--scheme",
        "hybrid",
        "--ratio",
        "3:5",
        "--blocks",
        "32",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("cross edges"));
    assert!(part.exists());

    // run single device
    let out_file = dir.join("bfs.txt");
    let o = phigraph(&[
        "run",
        "bfs",
        graph_s,
        "--engine",
        "pipe",
        "--device",
        "mic",
        "--out",
        out_file.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("bfs"));
    let values = std::fs::read_to_string(&out_file).unwrap();
    assert_eq!(values.lines().count(), 1024);
    assert!(
        values.lines().next().unwrap().starts_with("0\t0"),
        "source has level 0"
    );

    // run heterogeneous with the partition file
    let o = phigraph(&["run", "sssp", graph_s, "--partition", part_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("cpu-mic"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn adjacency_format_round_trips_through_cli() {
    let dir = tmpdir("adj");
    let graph = dir.join("g.adj");
    let graph_s = graph.to_str().unwrap();
    let o = phigraph(&[
        "generate",
        "gnm",
        graph_s,
        "--vertices",
        "200",
        "--edges",
        "800",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let o = phigraph(&["info", graph_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("vertices   200"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_all_apps_on_suitable_graphs() {
    let dir = tmpdir("apps");
    let pokec = dir.join("p.bin");
    let dag = dir.join("d.bin");
    let dblp = dir.join("c.bin");
    for (kind, path) in [("pokec-weighted", &pokec), ("dag", &dag), ("dblp", &dblp)] {
        let o = phigraph(&["generate", kind, path.to_str().unwrap(), "--scale", "tiny"]);
        assert!(o.status.success(), "{kind}: {}", stderr(&o));
    }
    for (app, graph, extra) in [
        ("pagerank", &pokec, vec!["--iters", "5"]),
        ("sssp", &pokec, vec!["--source", "0"]),
        ("wcc", &pokec, vec![]),
        ("kcore", &pokec, vec!["--k", "3"]),
        ("toposort", &dag, vec![]),
        ("semicluster", &dblp, vec!["--iters", "4"]),
    ] {
        let mut args = vec!["run", app, graph.to_str().unwrap()];
        args.extend(extra);
        let o = phigraph(&args);
        assert!(o.status.success(), "{app}: {}", stderr(&o));
        assert!(stdout(&o).contains(app), "{app} summary missing");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    let o = phigraph(&["run", "nosuchapp", "/nonexistent.bin"]);
    assert!(!o.status.success());
    let o = phigraph(&["frobnicate"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown command"));
    let o = phigraph(&[]);
    assert!(!o.status.success());
}

#[test]
fn run_rejects_out_of_range_source() {
    let dir = tmpdir("source");
    let graph = dir.join("g.bin");
    let o = phigraph(&[
        "generate",
        "gnm",
        graph.to_str().unwrap(),
        "--vertices",
        "10",
        "--edges",
        "20",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let o = phigraph(&["run", "bfs", graph.to_str().unwrap(), "--source", "99"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("out of range"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tune_command_reports_split_and_ratio() {
    let dir = tmpdir("tune");
    let graph = dir.join("g.bin");
    let o = phigraph(&[
        "generate",
        "pokec",
        graph.to_str().unwrap(),
        "--scale",
        "tiny",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let o = phigraph(&[
        "tune",
        "pagerank",
        graph.to_str().unwrap(),
        "--probe-steps",
        "2",
        "--blocks",
        "16",
        "--iters",
        "5",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("pipeline split:"), "{out}");
    assert!(out.contains("partitioning ratio:"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_command_reports_clean_programs() {
    let dir = tmpdir("check");
    let graph = dir.join("g.bin");
    let o = phigraph(&[
        "generate",
        "pokec",
        graph.to_str().unwrap(),
        "--scale",
        "tiny",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    for app in ["bfs", "sssp", "wcc", "kcore"] {
        let o = phigraph(&["check", app, graph.to_str().unwrap()]);
        assert!(o.status.success(), "{app}: {}", stderr(&o));
        assert!(stdout(&o).contains("contract check: CLEAN"), "{app}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
