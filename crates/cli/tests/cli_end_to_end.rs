//! End-to-end tests driving the `phigraph` binary as a subprocess:
//! generate → info → partition → run, over real files.

use std::path::PathBuf;
use std::process::{Command, Output};

fn phigraph(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_phigraph"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("phigraph-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn generate_info_partition_run_pipeline() {
    let dir = tmpdir("pipeline");
    let graph = dir.join("g.bin");
    let graph_s = graph.to_str().unwrap();

    // generate
    let o = phigraph(&[
        "generate", "pokec", graph_s, "--scale", "tiny", "--seed", "3",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("wrote pokec graph"));
    assert!(graph.exists());

    // info
    let o = phigraph(&["info", graph_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    let info = stdout(&o);
    assert!(info.contains("vertices   1024"));
    assert!(info.contains("out-degree histogram"));
    assert!(info.contains("top-5 out-degree hubs"));

    // partition
    let part = dir.join("g.part");
    let part_s = part.to_str().unwrap();
    let o = phigraph(&[
        "partition",
        graph_s,
        part_s,
        "--scheme",
        "hybrid",
        "--ratio",
        "3:5",
        "--blocks",
        "32",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("cross edges"));
    assert!(part.exists());

    // run single device
    let out_file = dir.join("bfs.txt");
    let o = phigraph(&[
        "run",
        "bfs",
        graph_s,
        "--engine",
        "pipe",
        "--device",
        "mic",
        "--out",
        out_file.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("bfs"));
    let values = std::fs::read_to_string(&out_file).unwrap();
    assert_eq!(values.lines().count(), 1024);
    assert!(
        values.lines().next().unwrap().starts_with("0\t0"),
        "source has level 0"
    );

    // run heterogeneous with the partition file
    let o = phigraph(&["run", "sssp", graph_s, "--partition", part_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("cpu-mic"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn adjacency_format_round_trips_through_cli() {
    let dir = tmpdir("adj");
    let graph = dir.join("g.adj");
    let graph_s = graph.to_str().unwrap();
    let o = phigraph(&[
        "generate",
        "gnm",
        graph_s,
        "--vertices",
        "200",
        "--edges",
        "800",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let o = phigraph(&["info", graph_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("vertices   200"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_all_apps_on_suitable_graphs() {
    let dir = tmpdir("apps");
    let pokec = dir.join("p.bin");
    let dag = dir.join("d.bin");
    let dblp = dir.join("c.bin");
    for (kind, path) in [("pokec-weighted", &pokec), ("dag", &dag), ("dblp", &dblp)] {
        let o = phigraph(&["generate", kind, path.to_str().unwrap(), "--scale", "tiny"]);
        assert!(o.status.success(), "{kind}: {}", stderr(&o));
    }
    for (app, graph, extra) in [
        ("pagerank", &pokec, vec!["--iters", "5"]),
        ("sssp", &pokec, vec!["--source", "0"]),
        ("wcc", &pokec, vec![]),
        ("kcore", &pokec, vec!["--k", "3"]),
        ("toposort", &dag, vec![]),
        ("semicluster", &dblp, vec!["--iters", "4"]),
    ] {
        let mut args = vec!["run", app, graph.to_str().unwrap()];
        args.extend(extra);
        let o = phigraph(&args);
        assert!(o.status.success(), "{app}: {}", stderr(&o));
        assert!(stdout(&o).contains(app), "{app} summary missing");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    let o = phigraph(&["run", "nosuchapp", "/nonexistent.bin"]);
    assert!(!o.status.success());
    let o = phigraph(&["frobnicate"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown command"));
    let o = phigraph(&[]);
    assert!(!o.status.success());
}

#[test]
fn run_rejects_out_of_range_source() {
    let dir = tmpdir("source");
    let graph = dir.join("g.bin");
    let o = phigraph(&[
        "generate",
        "gnm",
        graph.to_str().unwrap(),
        "--vertices",
        "10",
        "--edges",
        "20",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let o = phigraph(&["run", "bfs", graph.to_str().unwrap(), "--source", "99"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("out of range"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tune_command_reports_split_and_ratio() {
    let dir = tmpdir("tune");
    let graph = dir.join("g.bin");
    let o = phigraph(&[
        "generate",
        "pokec",
        graph.to_str().unwrap(),
        "--scale",
        "tiny",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let o = phigraph(&[
        "tune",
        "pagerank",
        graph.to_str().unwrap(),
        "--probe-steps",
        "2",
        "--blocks",
        "16",
        "--iters",
        "5",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("pipeline split:"), "{out}");
    assert!(out.contains("partitioning ratio:"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn integrity_run_heals_injected_sdc_and_matches_clean_run() {
    let dir = tmpdir("sdc");
    let graph = dir.join("g.bin");
    let graph_s = graph.to_str().unwrap();
    let o = phigraph(&[
        "generate", "pokec", graph_s, "--scale", "tiny", "--seed", "5",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));

    // Clean reference values (plain engine, no integrity machinery).
    let clean_out = dir.join("clean.txt");
    let o = phigraph(&[
        "run",
        "sssp",
        graph_s,
        "--engine",
        "lock",
        "--out",
        clean_out.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "{}", stderr(&o));

    // Inject silent corruption; full integrity must heal it in place.
    let ckpt = dir.join("ckpt");
    let healed_out = dir.join("healed.txt");
    let o = phigraph(&[
        "run",
        "sssp",
        graph_s,
        "--engine",
        "lock",
        "--integrity",
        "full",
        "--faults",
        "1:bitflip-msg,3:bitflip-state",
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
        "--out",
        healed_out.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let summary = stdout(&o);
    assert!(
        summary.contains("integrity"),
        "no integrity line: {summary}"
    );
    assert_eq!(
        std::fs::read_to_string(&clean_out).unwrap(),
        std::fs::read_to_string(&healed_out).unwrap(),
        "healed run diverged from the clean run"
    );

    // `recover` shows the integrity stats from the persisted report.
    let o = phigraph(&["recover", ckpt.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("integrity:"), "{}", stdout(&o));

    // Bad flag values are rejected with a parse error, not a panic.
    let o = phigraph(&["run", "sssp", graph_s, "--integrity", "paranoid"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown integrity mode"));
    let o = phigraph(&["run", "sssp", graph_s, "--faults", "1:nosuchkind"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown fault kind") || stderr(&o).contains("bad fault"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recover_tolerates_torn_run_report() {
    let dir = tmpdir("torn");
    let graph = dir.join("g.bin");
    let graph_s = graph.to_str().unwrap();
    let o = phigraph(&[
        "generate", "pokec", graph_s, "--scale", "tiny", "--seed", "9",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));

    let ckpt = dir.join("ckpt");
    let ckpt_s = ckpt.to_str().unwrap();
    let o = phigraph(&[
        "run",
        "bfs",
        graph_s,
        "--engine",
        "lock",
        "--checkpoint-every",
        "2",
        "--checkpoint-dir",
        ckpt_s,
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let report = ckpt.join("run_report.json");
    assert!(report.exists(), "run left no report behind");

    // Intact report: the stats are shown.
    let o = phigraph(&["recover", ckpt_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("last run"), "{}", stdout(&o));

    // Torn write (truncated mid-file): degrade to a warning, never panic.
    let full = std::fs::read_to_string(&report).unwrap();
    std::fs::write(&report, &full[..full.len() / 2]).unwrap();
    let o = phigraph(&["recover", ckpt_s]);
    assert!(o.status.success(), "torn report crashed: {}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("warning"), "{out}");
    assert!(!out.contains("last run"), "{out}");

    // Non-UTF-8 garbage.
    std::fs::write(&report, [0xff, 0xfe, 0x00, 0x01, b'{', b'x']).unwrap();
    let o = phigraph(&["recover", ckpt_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("warning"), "{}", stdout(&o));

    // Valid JSON that is not a run report (wrong schema tag).
    std::fs::write(&report, "{\"schema\":\"something-else/9\"}").unwrap();
    let o = phigraph(&["recover", ckpt_s]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(
        stdout(&o).contains("not a phigraph run report"),
        "{}",
        stdout(&o)
    );

    // Snapshot listing still works through all of the above.
    assert!(stdout(&o).contains("snapshot(s)"), "{}", stdout(&o));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_command_reports_clean_programs() {
    let dir = tmpdir("check");
    let graph = dir.join("g.bin");
    let o = phigraph(&[
        "generate",
        "pokec",
        graph.to_str().unwrap(),
        "--scale",
        "tiny",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    for app in ["bfs", "sssp", "wcc", "kcore"] {
        let o = phigraph(&["check", app, graph.to_str().unwrap()]);
        assert!(o.status.success(), "{app}: {}", stderr(&o));
        assert!(stdout(&o).contains("contract check: CLEAN"), "{app}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
