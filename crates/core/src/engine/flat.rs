//! The flat OpenMP-style baseline engine (the paper's "OMP" bars).
//!
//! "The CPU OMP and MIC OMP versions are written with OpenMP directives on
//! sequential code, with proper use of synchronization (OpenMP locks)."
//! This engine reproduces that strawman: a parallel loop over active
//! vertices updates a per-destination accumulator directly under a
//! per-destination (striped) lock — no message buffer, no SIMD, and every
//! message pays a lock acquisition. The compiler cannot vectorize the
//! reduction ("the major loops … are not vectorized … because of the random
//! memory access pattern"), which the cost model reflects by charging the
//! scalar path.

use crate::active::ActiveSet;
use crate::api::{GenContext, MsgSink, VertexProgram};
use crate::metrics::{RunOutput, RunReport, StepReport};
use crate::util::SharedSlice;
use phigraph_device::cost::GenMode;
use phigraph_device::counters::{GenChunk, InsertProfile};
use phigraph_device::pool::run_parallel_collect;
use phigraph_device::{ChunkScheduler, CostModel, DeviceSpec, StepCounters};
use phigraph_graph::{Csr, VertexId};
use phigraph_simd::{MsgValue, ReduceOp};
use phigraph_trace::Phase;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

use super::config::EngineConfig;

/// Lock stripes for destination vertices.
const STRIPES: usize = 1024;

struct FlatSink<'a, T: MsgValue> {
    locks: &'a [std::sync::Mutex<()>],
    acc: &'a SharedSlice<'a, T>,
    counts: &'a [AtomicU32],
    combine: fn(T, T) -> T,
}

impl<'a, T: MsgValue> MsgSink<T> for FlatSink<'a, T> {
    #[inline]
    fn send(&mut self, dst: VertexId, msg: T) {
        let d = dst as usize;
        let _guard = self.locks[d % STRIPES].lock().unwrap();
        // SAFETY: writes to acc[d] are serialized by the stripe lock; the
        // count update rides inside the same critical section.
        unsafe {
            let prev_count = self.counts[d].load(Ordering::Relaxed);
            let cur = self.acc.read(d);
            let next = if prev_count == 0 {
                msg
            } else {
                (self.combine)(cur, msg)
            };
            self.acc.write(d, next);
        }
        self.counts[d].fetch_add(1, Ordering::Relaxed);
    }
}

/// Run a program to completion with the flat engine on one device.
pub fn run_flat<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    spec: DeviceSpec,
    config: &EngineConfig,
) -> RunOutput<P::Value> {
    if P::ALWAYS_ACTIVE {
        assert!(
            program.max_supersteps().is_some() || config.max_supersteps.is_some(),
            "ALWAYS_ACTIVE programs must bound their supersteps"
        );
    }
    let n = graph.num_vertices();
    let threads = config.resolve_host_threads();
    let cost = CostModel::new(spec.clone());
    let locks: Vec<std::sync::Mutex<()>> =
        (0..STRIPES).map(|_| std::sync::Mutex::new(())).collect();

    let mut values = vec![P::Value::default(); n];
    let mut active = ActiveSet::new(n);
    for v in 0..n as VertexId {
        let (val, act) = program.init(v, graph);
        values[v as usize] = val;
        active.set(v, act);
    }
    let mut acc: Vec<P::Msg> = vec![P::Msg::ZERO; n];
    let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();

    let cap = run_cap(program.max_supersteps(), config.max_supersteps);
    let all_vertices: Vec<VertexId> = (0..n as VertexId).collect();
    let gen_ranges = crate::engine::device::edge_balanced_ranges(
        &all_vertices,
        graph,
        config.gen_chunk,
        spec.threads(),
    );
    let gen_ranges = &gen_ranges;
    let tracer = config.tracer("dev0", 0);
    let wall_start = Instant::now();
    let mut steps: Vec<StepReport> = Vec::new();

    for step in 0.. {
        if step >= cap || config.cancelled() {
            break;
        }
        let t0 = Instant::now();
        let _step_span = tracer.span(Phase::Superstep, step as u32);
        let mut c = StepCounters::default();
        for cnt in &counts {
            cnt.store(0, Ordering::Relaxed);
        }

        // Generation + in-place accumulate (the flat engine's whole trick).
        {
            let _g = tracer.span(Phase::Generate, step as u32);
            let sched = ChunkScheduler::new(gen_ranges.len(), 1);
            let acc_slice = SharedSlice::new(&mut acc);
            let (active_ref, counts_ref, locks_ref) = (&active, &counts[..], &locks[..]);
            let values_ref = &values;
            let results = run_parallel_collect(threads, |_| {
                let mut chunks: Vec<GenChunk> = Vec::new();
                let mut sink = FlatSink {
                    locks: locks_ref,
                    acc: &acc_slice,
                    counts: counts_ref,
                    combine: P::Reduce::apply,
                };
                while let Some(batch) = sched.next_batch() {
                    for ri in batch.clone() {
                        let mut ch = GenChunk::default();
                        let mut ctx = GenContext::new(graph, values_ref, &mut sink);
                        for v in gen_ranges[ri].clone() {
                            let v = v as VertexId;
                            if active_ref.is_active(v) {
                                ch.vertices += 1;
                                ch.edges += graph.out_degree(v) as u64;
                                program.generate(v, &mut ctx);
                            }
                        }
                        ch.msgs = ctx.sent;
                        chunks.push(ch);
                    }
                }
                chunks
            });
            for chunks in results {
                for ch in &chunks {
                    c.active_vertices += ch.vertices;
                    c.gen_edges += ch.edges;
                    c.msgs_local += ch.msgs;
                }
                c.gen_chunks.extend(chunks);
            }
        }
        if P::HAS_POST_GENERATE {
            let sched = ChunkScheduler::new(n, 512);
            let vslice = SharedSlice::new(&mut values);
            let active_ref = &active;
            phigraph_device::pool::run_parallel(threads, |_| {
                while let Some(r) = sched.next_batch() {
                    for v in r {
                        if active_ref.is_active(v as VertexId) {
                            // SAFETY: one task per vertex index.
                            unsafe { program.post_generate(v as VertexId, vslice.get_mut(v)) };
                        }
                    }
                }
            });
        }
        active.clear();

        // Contention profile from the per-destination counts.
        let mut profile = InsertProfile::default();
        let mut received = 0u64;
        for cnt in &counts {
            let k = cnt.load(Ordering::Relaxed) as u64;
            if k > 0 {
                profile.record(k);
                received += 1;
            }
        }
        c.insert_profile = profile;
        c.occupied_columns = received;
        c.bytes_gen = c.gen_edges * 8 + c.msgs_local * 64;

        // Update phase over vertices that received messages.
        {
            let _u = tracer.span(Phase::Update, step as u32);
            let sched = ChunkScheduler::new(n, 512);
            let vslice = SharedSlice::new(&mut values);
            let fslice = SharedSlice::new(active.flags_mut());
            let (counts_ref, acc_ref) = (&counts[..], &acc[..]);
            let updated: u64 = run_parallel_collect(threads, |_| {
                let mut u = 0u64;
                while let Some(r) = sched.next_batch() {
                    for v in r {
                        if counts_ref[v].load(Ordering::Relaxed) > 0 {
                            // SAFETY: one task per vertex index.
                            let act = unsafe {
                                let val = vslice.get_mut(v);
                                program.update(v as VertexId, acc_ref[v], val, graph)
                            };
                            unsafe { fslice.write(v, u8::from(act)) };
                            u += 1;
                        }
                    }
                }
                u
            })
            .into_iter()
            .sum();
            c.updated_vertices = updated;
        }
        if P::ALWAYS_ACTIVE {
            let all: Vec<VertexId> = (0..n as VertexId).collect();
            active.activate_all(&all);
        }
        active.recount();
        c.next_active = active.count();
        c.bytes_update = c.updated_vertices * (std::mem::size_of::<P::Value>() as u64 + 1);

        let times = cost.step_times(&c, GenMode::Flat, P::Msg::SIZE, false);
        let msgs = c.msgs_total();
        c.gen_chunks.clear();
        c.proc_chunks.clear();
        steps.push(StepReport {
            step,
            times,
            comm_time: 0.0,
            wall: t0.elapsed().as_secs_f64(),
            counters: c,
        });
        if msgs == 0 {
            break;
        }
    }

    // `ExecMode::Flat.name()` is the single source of the report name
    // (`"omp"`, after the paper's OMP bars).
    let report = RunReport {
        app: P::NAME.to_string(),
        device: spec.name.to_string(),
        mode: config.mode.name().to_string(),
        steps,
        wall: wall_start.elapsed().as_secs_f64(),
        ..Default::default()
    };
    RunOutput {
        values,
        device_reports: vec![report.clone()],
        report,
    }
}

pub(crate) fn run_cap(program_cap: Option<usize>, config_cap: Option<usize>) -> usize {
    match (program_cap, config_cap) {
        (Some(a), Some(b)) => a.min(b),
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => usize::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::small::{inward_star, weighted_diamond};
    use phigraph_simd::Min;

    struct Sssp;
    impl VertexProgram for Sssp {
        type Msg = f32;
        type Reduce = Min;
        type Value = f32;
        const NAME: &'static str = "sssp";
        fn init(&self, v: VertexId, _g: &Csr) -> (f32, bool) {
            if v == 0 {
                (0.0, true)
            } else {
                (f32::INFINITY, false)
            }
        }
        fn generate<S: MsgSink<f32>>(&self, v: VertexId, ctx: &mut GenContext<'_, f32, S>) {
            let my = *ctx.value(v);
            for e in ctx.graph.edge_range(v) {
                ctx.send(ctx.graph.targets[e], my + ctx.graph.weight(e));
            }
        }
        fn update(&self, _v: VertexId, msg: f32, value: &mut f32, _g: &Csr) -> bool {
            if msg < *value {
                *value = msg;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn flat_sssp_diamond() {
        let g = weighted_diamond();
        let out = run_flat(&Sssp, &g, DeviceSpec::xeon_e5_2680(), &EngineConfig::flat());
        assert_eq!(out.values, vec![0.0, 1.0, 5.0, 2.0]);
        assert_eq!(out.report.mode, "omp");
        assert!(out.report.sim_total() > 0.0);
    }

    #[test]
    fn flat_contention_profile_sees_hot_vertex() {
        // Every vertex of an inward star messages vertex 0 — but only the
        // center of an *outward* wave reaches it; use all-active init via a
        // one-step program instead: run SSSP from 0 on the inward star has
        // no out-edges from 0, so craft activity with the star reversed.
        struct AllPing;
        impl VertexProgram for AllPing {
            type Msg = f32;
            type Reduce = Min;
            type Value = f32;
            const NAME: &'static str = "ping";
            fn init(&self, _v: VertexId, _g: &Csr) -> (f32, bool) {
                (0.0, true)
            }
            fn generate<S: MsgSink<f32>>(&self, v: VertexId, ctx: &mut GenContext<'_, f32, S>) {
                for e in ctx.graph.edge_range(v) {
                    ctx.send(ctx.graph.targets[e], 1.0);
                }
            }
            fn update(&self, _v: VertexId, _m: f32, _val: &mut f32, _g: &Csr) -> bool {
                false
            }
            fn max_supersteps(&self) -> Option<usize> {
                Some(1)
            }
        }
        let g = inward_star(64);
        let out = run_flat(
            &AllPing,
            &g,
            DeviceSpec::xeon_phi_se10p(),
            &EngineConfig::flat(),
        );
        let c = &out.report.steps[0].counters;
        assert_eq!(c.insert_profile.total, 63);
        assert_eq!(c.insert_profile.max_column, 63);
        assert!((c.insert_profile.collision_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn run_cap_combines_limits() {
        assert_eq!(run_cap(Some(5), Some(3)), 3);
        assert_eq!(run_cap(None, Some(7)), 7);
        assert_eq!(run_cap(Some(2), None), 2);
        assert_eq!(run_cap(None, None), usize::MAX);
    }
}
