//! End-to-end data integrity: silent-corruption detection, quarantine, and
//! targeted self-healing across the message path.
//!
//! The detection lattice, cheapest-first:
//!
//! 1. **Frame checksums** ([`framed_exchange`]) — every remote exchange
//!    payload is sealed with an FNV length/epoch/checksum header; a corrupt
//!    frame is healed by a bounded in-place re-exchange agreed on both
//!    sides with a verdict-sync round.
//! 2. **Group checksums** — the CSB folds a commutative per-vertex-group
//!    message digest during insertion (amortized per batch); the audit
//!    between the insert barrier and processing yields a quarantine set
//!    that rung-1 healing rebuilds by *targeted regeneration* of just
//!    those groups.
//! 3. **State digests** ([`BarrierImage`]) — barrier values + active flags
//!    are digested per group; rot between barriers is healed by copying
//!    the image back group-granularly.
//! 4. **App invariant auditors** ([`VertexProgram::audit_step`]) — the
//!    semantic safety net; a violation triggers a rung-2 full-step replay
//!    from the barrier image.
//!
//! Escalation ladder: group recompute (rung 1) → full-step replay (rung 2)
//! → checkpoint rollback with bounded retries (rung 3, the existing
//! [`RecoveryPolicy`] machinery) → degraded sequential (rung 4). Every rung
//! is counted in [`IntegrityStats`], surfaced through
//! [`RunReport::integrity`].
//!
//! The whole subsystem sits behind [`IntegrityMode`]: `off` costs one
//! relaxed atomic load at each guarded site and is bit-identical to the
//! pre-integrity engine; `frames` seals only the exchange path; `full`
//! arms everything.
//!
//! [`VertexProgram::audit_step`]: crate::api::VertexProgram::audit_step
//! [`RecoveryPolicy`]: phigraph_recover::RecoveryPolicy
//! [`RunReport::integrity`]: crate::metrics::RunReport

use crate::api::VertexProgram;
use crate::engine::config::EngineConfig;
use crate::engine::device::DeviceEngine;
use phigraph_comm::exchange::{ExchangeDropped, ExchangeError, ExchangeStats, PeerInfo};
use phigraph_comm::{Endpoint, FrameHeader, WireMsg};
use phigraph_graph::state::PodState;
use phigraph_graph::SplitMix64;
use phigraph_recover::integrity::fnv1a64_seeded;
use phigraph_recover::{FaultInjector, FaultKind, IntegrityMode, IntegrityStats};
use phigraph_simd::MsgValue;
use std::time::Duration;

/// Bounded in-place re-exchange budget per superstep before a corrupt
/// frame escalates to the lock-step drop machinery.
pub const MAX_FRAME_RETRIES: u32 = 2;

/// Sampling stride for app invariant audits on scrub passes (full mode
/// audits every vertex; scrubs sample to stay cheap).
const SCRUB_AUDIT_STRIDE: usize = 4;

/// Per-run integrity context: the configured mode, the scrub cadence, and
/// the accumulated statistics.
#[derive(Clone, Debug, Default)]
pub struct IntegrityCtx {
    /// Configured detection level.
    pub mode: IntegrityMode,
    /// Scrub cadence in supersteps (0 = no scrubbing).
    pub scrub_every: usize,
    /// Everything observed so far.
    pub stats: IntegrityStats,
}

impl IntegrityCtx {
    /// Build the context from an engine configuration.
    pub fn new(config: &EngineConfig) -> Self {
        IntegrityCtx {
            mode: config.integrity,
            scrub_every: config.scrub_every,
            stats: IntegrityStats::default(),
        }
    }

    /// Whether `step` is a background scrub boundary.
    pub fn is_scrub_step(&self, step: usize) -> bool {
        self.scrub_every > 0 && step > 0 && step.is_multiple_of(self.scrub_every)
    }

    /// Whether the barrier state digest is audited at `step` (every step in
    /// full mode; scrub boundaries otherwise).
    pub fn audits_state(&self, step: usize) -> bool {
        self.mode.full() || self.is_scrub_step(step)
    }

    /// Whether the per-group message checksums are audited (full mode only
    /// — the fold must have been armed for the whole generation).
    pub fn audits_messages(&self) -> bool {
        self.mode.full()
    }

    /// Whether the app invariant auditor runs at `step`.
    pub fn audits_app(&self, step: usize) -> bool {
        self.mode.full() || self.is_scrub_step(step)
    }

    /// Sampling stride for the app auditor at `step`.
    pub fn app_stride(&self, step: usize) -> usize {
        if self.mode.full() {
            1
        } else if self.is_scrub_step(step) {
            SCRUB_AUDIT_STRIDE
        } else {
            usize::MAX
        }
    }

    /// Whether the driver must maintain a [`BarrierImage`] at all.
    pub fn needs_image(&self) -> bool {
        self.mode.full() || self.scrub_every > 0
    }
}

/// The state a superstep started from: a clone of the barrier values and
/// active flags plus a per-vertex-group digest of both. The image is what
/// rung-1 healing copies back, what targeted regeneration reads, and what
/// a rung-2 full-step replay restores.
pub struct BarrierImage<V> {
    /// Barrier vertex values (full-length).
    pub values: Vec<V>,
    /// Barrier active flags.
    pub flags: Vec<u8>,
    /// Per-group digest over (vertex id, value bytes, flag) in position
    /// order.
    group_digests: Vec<u64>,
}

/// Digest every vertex group's (id, value, flag) triples in position order.
fn state_digests<P: VertexProgram>(
    engine: &DeviceEngine<'_, P>,
    values: &[P::Value],
    flags: &[u8],
) -> Vec<u64>
where
    P::Value: PodState,
{
    let layout = engine.layout();
    let mut digests = vec![phigraph_recover::integrity::FNV_OFFSET; layout.num_groups()];
    let mut buf = Vec::with_capacity(P::Value::STATE_SIZE);
    for pos in 0..layout.num_positions() {
        let g = layout.group_of(pos as u32);
        let v = layout.order[pos];
        buf.clear();
        values[v as usize].write_le(&mut buf);
        let mut h = fnv1a64_seeded(digests[g], &v.to_le_bytes());
        h = fnv1a64_seeded(h, &buf);
        digests[g] = fnv1a64_seeded(h, &[flags[v as usize]]);
    }
    digests
}

impl<V: Copy> BarrierImage<V> {
    /// Snapshot the engine's barrier state (values + flags + digests).
    pub fn capture<P>(engine: &DeviceEngine<'_, P>) -> Self
    where
        P: VertexProgram<Value = V>,
        V: PodState,
    {
        let values = engine.values.clone();
        let flags = engine.active_flags().to_vec();
        let group_digests = state_digests(engine, &values, &flags);
        BarrierImage {
            values,
            flags,
            group_digests,
        }
    }

    /// Recompute the engine's current state digests and compare against the
    /// image: returns the groups whose state rotted since the barrier.
    pub fn audit_state<P>(&self, engine: &DeviceEngine<'_, P>) -> Vec<usize>
    where
        P: VertexProgram<Value = V>,
        V: PodState,
    {
        let cur = state_digests(engine, &engine.values, engine.active_flags());
        cur.iter()
            .zip(&self.group_digests)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(g, _)| g)
            .collect()
    }
}

/// Fold a second exchange round's stats into the first's.
fn accumulate(acc: &mut ExchangeStats, x: ExchangeStats) {
    acc.msgs_sent += x.msgs_sent;
    acc.msgs_recv += x.msgs_recv;
    acc.bytes_sent += x.bytes_sent;
    acc.bytes_recv += x.bytes_recv;
    acc.sim_time += x.sim_time;
}

/// Flip one seeded bit of one message's value bytes (wire corruption; the
/// destination id is left alone so routing stays valid and the damage is
/// genuinely *silent* without a checksum).
fn flip_payload_bit<M: MsgValue>(payload: &mut [WireMsg<M>], seed: u64) {
    if payload.is_empty() {
        return;
    }
    let mut rng = SplitMix64::seed_from_u64(seed);
    let i = rng.random_range(0u64..payload.len() as u64) as usize;
    let bit = rng.random_range(0u64..(M::SIZE as u64 * 8)) as usize;
    let mut buf = [0u8; 16];
    payload[i].value.write_le(&mut buf[..M::SIZE]);
    buf[bit / 8] ^= 1 << (bit % 8);
    payload[i].value = M::read_le(&buf[..M::SIZE]);
}

/// One superstep's remote message exchange with optional frame integrity.
///
/// With `mode.frames()` the payload is sealed ([`FrameHeader`]), exchanged,
/// and verified on receipt; a *verdict-sync* round (an empty exchange whose
/// `any_active` slot carries each rank's verdict) then lets both sides
/// agree whether to re-exchange, so healing stays lock-step. Re-exchanges
/// resend the retained clean payload and are bounded by
/// [`MAX_FRAME_RETRIES`]; past the budget the exchange fails as
/// [`ExchangeError::Dropped`], handing the corruption to the existing
/// rollback machinery. With `mode.frames()` false this is exactly the
/// plain exchange (no seal, no extra round, no overhead).
///
/// The `BitFlipMessage` / `TruncateFrame` faults fire *after* sealing —
/// the wire corrupts, not the sender — so with integrity off they model
/// genuinely silent corruption.
#[allow(clippy::too_many_arguments)]
pub fn framed_exchange<M: MsgValue>(
    ep: &Endpoint<WireMsg<M>>,
    outgoing: Vec<WireMsg<M>>,
    bytes_out: u64,
    any_active: bool,
    step_time: f64,
    deadline: Option<Duration>,
    step: u64,
    dev: u8,
    mode: IntegrityMode,
    injector: Option<&FaultInjector>,
    stats: &mut IntegrityStats,
) -> Result<(Vec<WireMsg<M>>, PeerInfo, ExchangeStats), ExchangeError> {
    // The wire faults fire whether or not frames are on: silent when off,
    // detected and healed when on.
    let fires = |k: FaultKind| injector.is_some_and(|i| i.fire(step, k, dev));
    let mut corrupt: Option<FaultKind> = None;
    if fires(FaultKind::BitFlipMessage) {
        corrupt = Some(FaultKind::BitFlipMessage);
    }
    if fires(FaultKind::TruncateFrame) {
        corrupt = Some(FaultKind::TruncateFrame);
    }

    if !mode.frames() {
        let mut payload = outgoing;
        match corrupt {
            Some(FaultKind::TruncateFrame) => payload.truncate(payload.len() / 2),
            Some(FaultKind::BitFlipMessage) => flip_payload_bit(&mut payload, step ^ 0xF00D),
            _ => {}
        }
        return ep
            .try_exchange_framed(payload, None, bytes_out, any_active, step_time, deadline)
            .map(|(msgs, _frame, peer, x)| (msgs, peer, x));
    }

    let clean = outgoing.clone();
    let mut payload = outgoing;
    let mut acc = ExchangeStats::default();
    let mut peer_info = PeerInfo::default();
    let mut incoming: Vec<WireMsg<M>> = Vec::new();
    for attempt in 0..=MAX_FRAME_RETRIES {
        // Seal over the clean payload, then let the wire fault damage the
        // transmitted copy (first attempt only: injected faults fire once).
        let frame = FrameHeader::seal(step, &payload);
        if attempt == 0 {
            match corrupt {
                Some(FaultKind::TruncateFrame) => payload.truncate(payload.len() / 2),
                Some(FaultKind::BitFlipMessage) => flip_payload_bit(&mut payload, step ^ 0xF00D),
                _ => {}
            }
        }
        let (msgs, frame_in, peer, x) = ep.try_exchange_framed(
            payload,
            Some(frame),
            bytes_out,
            any_active,
            step_time,
            deadline,
        )?;
        accumulate(&mut acc, x);
        stats.frame_checks += 1;
        let my_ok = match frame_in {
            Some(h) => match h.verify(step, &msgs) {
                Ok(()) => true,
                Err(_) => {
                    stats.frame_detections += 1;
                    false
                }
            },
            // Peer runs unframed: nothing to validate on this side.
            None => true,
        };
        // Verdict sync: both ranks learn both verdicts, so the retry
        // decision is symmetric and the lock-step protocol cannot skew.
        let (_, _, verdict, vx) =
            ep.try_exchange_framed(Vec::new(), None, 0, my_ok, 0.0, deadline)?;
        accumulate(&mut acc, vx);
        if my_ok && verdict.any_active {
            incoming = msgs;
            peer_info = peer;
            if attempt > 0 {
                stats.frame_reexchanges += 1;
            }
            return Ok((incoming, peer_info, acc));
        }
        // Someone saw a bad frame: re-exchange the retained clean payload.
        payload = clean.clone();
    }
    let _ = (incoming, peer_info);
    Err(ExchangeError::Dropped(ExchangeDropped {
        dropped_by: dev as usize,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_comm::{duplex_pair, PcieLink};
    use phigraph_recover::FaultPlan;

    fn msgs(n: u32) -> Vec<WireMsg<f32>> {
        (0..n)
            .map(|i| WireMsg {
                dst: i,
                value: i as f32 * 0.5,
            })
            .collect()
    }

    type SwapResult<M> = (
        Result<(Vec<WireMsg<M>>, PeerInfo, ExchangeStats), ExchangeError>,
        IntegrityStats,
    );

    fn swap<M: MsgValue>(
        ep: &Endpoint<WireMsg<M>>,
        out: Vec<WireMsg<M>>,
        step: u64,
        mode: IntegrityMode,
        inj: Option<&FaultInjector>,
    ) -> SwapResult<M> {
        let mut stats = IntegrityStats::default();
        let dev = ep.rank as u8;
        let r = framed_exchange(
            ep, out, 0, true, 0.0, None, step, dev, mode, inj, &mut stats,
        );
        (r, stats)
    }

    #[test]
    fn clean_framed_exchange_delivers_payloads() {
        let (a, b) = duplex_pair::<WireMsg<f32>>(PcieLink::ideal());
        let t = std::thread::spawn(move || swap(&b, msgs(3), 7, IntegrityMode::Frames, None));
        let (ra, sa) = swap(&a, msgs(5), 7, IntegrityMode::Frames, None);
        let (rb, sb) = t.join().unwrap();
        assert_eq!(ra.unwrap().0, msgs(3));
        assert_eq!(rb.unwrap().0, msgs(5));
        assert_eq!(sa.frame_checks, 1);
        assert_eq!(sb.frame_checks, 1);
        assert_eq!(sa.frame_detections + sb.frame_detections, 0);
    }

    #[test]
    fn corrupt_frame_is_detected_and_healed_by_reexchange() {
        for kind in [FaultKind::BitFlipMessage, FaultKind::TruncateFrame] {
            let (a, b) = duplex_pair::<WireMsg<f32>>(PcieLink::ideal());
            // Rank 1's outgoing payload corrupts on the wire at step 3.
            let plan = FaultPlan::new().with(3, kind, 1);
            let inj = plan.injector();
            let inj2 = inj.clone();
            let t = std::thread::spawn(move || {
                swap(&b, msgs(4), 3, IntegrityMode::Frames, Some(&inj2))
            });
            let (ra, sa) = swap(&a, msgs(2), 3, IntegrityMode::Frames, Some(&inj));
            let (rb, sb) = t.join().unwrap();
            // Receiver (rank 0) detects; both converge on the clean payload.
            assert_eq!(ra.unwrap().0, msgs(4), "healed payload after {kind:?}");
            assert_eq!(rb.unwrap().0, msgs(2));
            assert_eq!(sa.frame_detections, 1, "{kind:?} detected");
            assert_eq!(sa.frame_reexchanges, 1, "{kind:?} healed in one retry");
            assert_eq!(sb.frame_detections, 0, "sender-side frame was clean");
        }
    }

    #[test]
    fn unframed_mode_passes_corruption_silently() {
        let (a, b) = duplex_pair::<WireMsg<f32>>(PcieLink::ideal());
        let plan = FaultPlan::new().with(0, FaultKind::BitFlipMessage, 1);
        let inj = plan.injector();
        let inj2 = inj.clone();
        let t = std::thread::spawn(move || swap(&b, msgs(4), 0, IntegrityMode::Off, Some(&inj2)));
        let (ra, sa) = swap(&a, msgs(2), 0, IntegrityMode::Off, Some(&inj));
        let (rb, _) = t.join().unwrap();
        let got = ra.unwrap().0;
        assert_eq!(got.len(), 4, "silent corruption keeps the length");
        assert_ne!(got, msgs(4), "a value bit flipped undetected");
        assert_eq!(rb.unwrap().0, msgs(2));
        assert_eq!(sa.frame_checks, 0, "off mode never checks");
    }

    #[test]
    fn truncated_frame_fails_length_check_first() {
        let frame = FrameHeader::seal(5, &msgs(8));
        let short = msgs(4);
        assert!(matches!(
            frame.verify(5, &short),
            Err(phigraph_comm::FrameError::LengthMismatch { sealed: 8, got: 4 })
        ));
    }
}
