//! Heterogeneous CPU-MIC execution (§IV.A / §IV.E).
//!
//! "The system is built using MPI symmetric computing, with CPU being Rank
//! 0, and MIC being Rank 1." Both device runtimes execute the same
//! superstep in lockstep; between generation and processing they combine
//! their remote buffers per destination and exchange them over the modelled
//! PCIe link. Global termination: a superstep in which neither device
//! generated any message.

use crate::api::VertexProgram;
use crate::engine::config::EngineConfig;
use crate::engine::device::DeviceEngine;
use crate::engine::flat::run_cap;
use crate::engine::integrity::framed_exchange;
use crate::engine::seq::run_seq;
use crate::metrics::{combine_hetero, RunOutput, RunReport, StepReport};
use phigraph_comm::message::wire_bytes;
use phigraph_comm::{combine_messages, duplex_pair, Endpoint, PcieLink, WireMsg};
use phigraph_device::{CostModel, DeviceSpec, StepCounters};
use phigraph_graph::Csr;
use phigraph_partition::DevicePartition;
use phigraph_recover::{FaultKind, IntegrityStats, RecoveryStats};
use phigraph_simd::MsgValue;
use phigraph_trace::{HistKind, Phase};
use std::time::Instant;

/// Run `program` across both devices. `specs`/`configs` are indexed by
/// device (0 = CPU, 1 = MIC); `partition` assigns vertices.
///
/// # Panics
/// Panics if a `DropExchange` fault fires — install the fault plan under
/// [`run_hetero_recovering`] instead, which retries and degrades.
pub fn run_hetero<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    partition: &DevicePartition,
    specs: [DeviceSpec; 2],
    configs: [EngineConfig; 2],
    link: PcieLink,
) -> RunOutput<P::Value> {
    attempt_hetero(program, graph, partition, specs, configs, link).unwrap_or_else(|step| {
        panic!(
            "remote message exchange dropped at superstep {step} with no \
             recovery driver installed; use run_hetero_recovering"
        )
    })
}

/// [`run_hetero`] with link-failure recovery: a dropped exchange (observed
/// by both devices at the same barrier) aborts the superstep consistently,
/// and the whole run is replayed — generation is deterministic per attempt,
/// and injected faults fire once, so replay converges. After
/// `configs[0].recovery.max_retries` failed attempts the run degrades to
/// the sequential engine on device 0. Recovery events are reported in the
/// combined report's [`RunReport::recovery`].
pub fn run_hetero_recovering<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    partition: &DevicePartition,
    specs: [DeviceSpec; 2],
    configs: [EngineConfig; 2],
    link: PcieLink,
) -> RunOutput<P::Value> {
    let policy = configs[0].recovery;
    let mut stats = RecoveryStats::default();
    let mut dropped_exchanges = 0u64;
    let mut retry = 0u32;
    loop {
        match attempt_hetero(
            program,
            graph,
            partition,
            specs.clone(),
            configs.clone(),
            link,
        ) {
            Ok(mut out) => {
                stats.accumulate(&out.report.recovery);
                out.report.recovery = stats;
                out.report.failover.exchange_drops = dropped_exchanges;
                return out;
            }
            Err(_step) => {
                dropped_exchanges += 1;
                stats.faults_injected += 1;
                stats.rollbacks += 1;
                if retry >= policy.max_retries {
                    // Retry budget exhausted: degrade to one sequential
                    // device. The hetero path keeps no checkpoints (both
                    // sides would need a coordinated snapshot), so the
                    // degraded run restarts from scratch — slower, still
                    // correct.
                    stats.degraded = true;
                    let mut out = run_seq(program, graph, specs[0].clone(), &configs[0]);
                    out.report.recovery = stats;
                    out.report.failover.exchange_drops = dropped_exchanges;
                    return out;
                }
                retry += 1;
                stats.retries += 1;
                let backoff = policy.backoff_ms(retry - 1);
                if backoff > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(backoff));
                }
            }
        }
    }
}

/// One lock-step attempt. `Err(step)` means the exchange for `step` was
/// dropped; both device loops observed it at the same barrier and returned
/// consistently.
fn attempt_hetero<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    partition: &DevicePartition,
    specs: [DeviceSpec; 2],
    configs: [EngineConfig; 2],
    link: PcieLink,
) -> Result<RunOutput<P::Value>, usize> {
    assert_eq!(partition.assign.len(), graph.num_vertices());
    // Both sides must agree on the superstep cap or the lock-step exchange
    // deadlocks.
    let cap = run_cap(
        program.max_supersteps(),
        match (configs[0].max_supersteps, configs[1].max_supersteps) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        },
    );

    let (ep0, ep1) = duplex_pair::<WireMsg<P::Msg>>(link);
    let [spec0, spec1] = specs;
    let [config0, config1] = configs;
    let assign = &partition.assign;

    let (side0, side1) = std::thread::scope(|s| {
        let h0 = s.spawn(|| device_loop(program, graph, assign, 0, spec0, config0, ep0, cap));
        let h1 = s.spawn(|| device_loop(program, graph, assign, 1, spec1, config1, ep1, cap));
        (
            h0.join().expect("device 0 panicked"),
            h1.join().expect("device 1 panicked"),
        )
    });

    let (values0, report0, fail0) = side0;
    let (values1, report1, fail1) = side1;
    if let Some(step) = fail0.or(fail1) {
        debug_assert_eq!(fail0, fail1, "both sides must fail at the same barrier");
        return Err(step);
    }
    // Merge values by ownership.
    let mut values = values0;
    for (v, val) in values1.into_iter().enumerate() {
        if assign[v] == 1 {
            values[v] = val;
        }
    }
    let report = combine_hetero(P::NAME, &report0, &report1);
    Ok(RunOutput {
        values,
        report,
        device_reports: vec![report0, report1],
    })
}

/// One device's superstep loop. The third return slot is `Some(step)` when
/// the remote exchange for `step` was dropped (fault injection): the loop
/// returns early, its peer observes the identical failure at the same
/// barrier, and the caller decides whether to retry.
#[allow(clippy::too_many_arguments)]
fn device_loop<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    assign: &[u8],
    dev: u8,
    spec: DeviceSpec,
    config: EngineConfig,
    ep: Endpoint<WireMsg<P::Msg>>,
    cap: usize,
) -> (Vec<P::Value>, RunReport, Option<usize>) {
    let cost = CostModel::new(spec.clone());
    let mut engine = DeviceEngine::new(
        program,
        graph,
        spec.clone(),
        config.clone(),
        dev,
        Some(assign),
    );
    let tracer = config.tracer(&format!("dev{dev}"), dev as u32 * 1000);
    let wall_start = Instant::now();
    let mut steps: Vec<StepReport> = Vec::new();
    let mut failed: Option<usize> = None;
    let mut integ_stats = IntegrityStats::default();

    for step in 0.. {
        if step >= cap {
            break;
        }
        let t0 = Instant::now();
        let _step_span = tracer.span(Phase::Superstep, step as u32);
        let mut c: StepCounters = engine.begin_step();

        // 1. Message generation (local messages straight into the CSB,
        //    peer-bound ones into the remote buffer).
        let remote = {
            let _g = tracer.span(Phase::Generate, step as u32);
            engine.generate(&mut c)
        };
        c.remote_before_combine = remote.len() as u64;

        // 2. Combine the remote buffer per destination ("the combination
        //    result is sent to the other device as a single MPI message").
        let (combined, _) = combine_messages::<P::Msg, P::Reduce>(remote);
        c.remote_after_combine = combined.len() as u64;
        let bytes_out = wire_bytes::<P::Msg>(combined.len());

        // 3. The implicit remote message exchange. A `DropExchange` fault
        //    scheduled for this (step, device) arms a one-shot link failure
        //    that both sides observe at this barrier.
        if let Some(inj) = &config.fault_plan {
            if inj.fire(step as u64, FaultKind::DropExchange, dev) {
                ep.inject_fault();
            }
        }
        let my_any = c.msgs_total() > 0;
        let x0 = Instant::now();
        let xspan = tracer.span(Phase::Exchange, step as u32);
        // Frame integrity (when configured): seal, verify, and heal corrupt
        // frames with a bounded verdict-synced re-exchange. With integrity
        // off this is the plain lock-step exchange (and any injected wire
        // corruption passes through silently).
        let exchanged = framed_exchange(
            &ep,
            combined,
            bytes_out,
            my_any,
            0.0,
            None,
            step as u64,
            dev,
            config.integrity,
            config.fault_plan.as_ref(),
            &mut integ_stats,
        );
        let (incoming, peer_any, xstats) = match exchanged {
            Ok((msgs, peer, x)) => (msgs, peer.any_active, x),
            Err(_dropped) => {
                failed = Some(step);
                break;
            }
        };
        drop(xspan);
        config.record_hist(HistKind::ExchangeRttUs, x0.elapsed().as_micros() as u64);
        c.comm_bytes = xstats.bytes_sent + xstats.bytes_recv;

        // 4. Insert received messages, then process and update locally.
        {
            let _i = tracer.span(Phase::Insert, step as u32);
            engine.absorb_remote(&incoming, &mut c);
            engine.finalize_insertion_stats(&mut c);
        }
        {
            let _p = tracer.span(Phase::Process, step as u32);
            engine.process(&mut c);
        }
        {
            let _u = tracer.span(Phase::Update, step as u32);
            engine.update(&mut c);
        }

        let vectorized = config.vectorized && P::SIMD_REDUCIBLE;
        let times = cost.step_times(&c, config.gen_mode(&spec), P::Msg::SIZE, vectorized);
        c.gen_chunks.clear();
        c.proc_chunks.clear();
        steps.push(StepReport {
            step,
            times,
            comm_time: xstats.sim_time,
            wall: t0.elapsed().as_secs_f64(),
            counters: c,
        });
        // Global termination: nobody generated messages this superstep.
        if !my_any && !peer_any {
            break;
        }
    }

    let report = RunReport {
        app: P::NAME.to_string(),
        device: spec.name.to_string(),
        mode: "cpu-mic".to_string(),
        steps,
        wall: wall_start.elapsed().as_secs_f64(),
        integrity: integ_stats,
        ..Default::default()
    };
    (engine.values, report, failed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{GenContext, MsgSink};
    use crate::engine::run_single;
    use phigraph_graph::generators::small::chain;
    use phigraph_graph::VertexId;
    use phigraph_partition::{partition, PartitionScheme, Ratio};
    use phigraph_simd::Min;

    struct Sssp;
    impl VertexProgram for Sssp {
        type Msg = f32;
        type Reduce = Min;
        type Value = f32;
        const NAME: &'static str = "sssp";
        fn init(&self, v: VertexId, _g: &Csr) -> (f32, bool) {
            if v == 0 {
                (0.0, true)
            } else {
                (f32::INFINITY, false)
            }
        }
        fn generate<S: MsgSink<f32>>(&self, v: VertexId, ctx: &mut GenContext<'_, f32, S>) {
            let my = *ctx.value(v);
            for e in ctx.graph.edge_range(v) {
                ctx.send(ctx.graph.targets[e], my + ctx.graph.weight(e));
            }
        }
        fn update(&self, _v: VertexId, msg: f32, value: &mut f32, _g: &Csr) -> bool {
            if msg < *value {
                *value = msg;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn hetero_matches_single_device_on_chain() {
        let g = chain(40);
        let p = partition(&g, PartitionScheme::RoundRobin, Ratio::even(), 0);
        let out = run_hetero(
            &Sssp,
            &g,
            &p,
            [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
            [
                EngineConfig::locking(),
                EngineConfig::pipelined().with_host_threads(4),
            ],
            PcieLink::gen2_x16(),
        );
        let single = run_single(
            &Sssp,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        assert_eq!(out.values, single.values);
        assert_eq!(out.report.device, "CPU-MIC");
        // Round-robin on a chain: every edge crosses devices.
        assert!(out.report.sim_comm() > 0.0);
        assert!(out.report.total_comm_bytes() > 0);
    }

    #[test]
    fn dropped_exchange_is_retried_and_matches_clean_run() {
        use phigraph_recover::{FaultKind, FaultPlan};
        let g = chain(30);
        let p = partition(&g, PartitionScheme::RoundRobin, Ratio::even(), 0);
        let clean = run_single(
            &Sssp,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        let plan = FaultPlan::single(2, FaultKind::DropExchange);
        let inj = plan.injector();
        let out = run_hetero_recovering(
            &Sssp,
            &g,
            &p,
            [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
            [
                EngineConfig::locking()
                    .with_backoff_ms(0)
                    .with_fault_plan(inj.clone()),
                EngineConfig::locking().with_fault_plan(inj),
            ],
            PcieLink::gen2_x16(),
        );
        assert_eq!(out.values, clean.values);
        assert_eq!(out.report.recovery.rollbacks, 1);
        assert_eq!(out.report.recovery.retries, 1);
        assert_eq!(out.report.recovery.faults_injected, 1);
        assert!(!out.report.recovery.degraded);
        assert_eq!(out.report.device, "CPU-MIC");
    }

    #[test]
    fn exchange_faults_past_budget_degrade_to_sequential() {
        use phigraph_recover::{FaultKind, FaultPlan};
        let g = chain(20);
        let p = partition(&g, PartitionScheme::RoundRobin, Ratio::even(), 0);
        // Faults on both devices across attempts, budget of one retry.
        let plan = FaultPlan::new().with(1, FaultKind::DropExchange, 0).with(
            2,
            FaultKind::DropExchange,
            1,
        );
        let inj = plan.injector();
        let out = run_hetero_recovering(
            &Sssp,
            &g,
            &p,
            [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
            [
                EngineConfig::locking()
                    .with_backoff_ms(0)
                    .with_max_retries(1)
                    .with_fault_plan(inj.clone()),
                EngineConfig::locking().with_fault_plan(inj),
            ],
            PcieLink::gen2_x16(),
        );
        for v in 0..20 {
            assert_eq!(out.values[v], v as f32, "degraded run still correct");
        }
        assert!(out.report.recovery.degraded);
        assert_eq!(out.report.mode, "seq");
        assert!(out.report.summary().contains("DEGRADED->seq"));
    }

    #[test]
    fn recovering_driver_without_faults_is_plain_hetero() {
        let g = chain(24);
        let p = partition(&g, PartitionScheme::Continuous, Ratio::even(), 0);
        let specs = [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()];
        let configs = [EngineConfig::locking(), EngineConfig::locking()];
        let plain = run_hetero(
            &Sssp,
            &g,
            &p,
            specs.clone(),
            configs.clone(),
            PcieLink::ideal(),
        );
        let out = run_hetero_recovering(&Sssp, &g, &p, specs, configs, PcieLink::ideal());
        assert_eq!(out.values, plain.values);
        assert!(!out.report.recovery.any());
    }

    #[test]
    fn hetero_reports_per_device() {
        let g = chain(20);
        let p = partition(&g, PartitionScheme::Continuous, Ratio::even(), 0);
        let out = run_hetero(
            &Sssp,
            &g,
            &p,
            [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
            [EngineConfig::locking(), EngineConfig::locking()],
            PcieLink::gen2_x16(),
        );
        assert_eq!(out.device_reports.len(), 2);
        // Continuous split of a chain: exactly one cross edge, so exactly
        // one remote message crosses in one superstep of the whole run.
        let total_remote: u64 = out.device_reports[0]
            .steps
            .iter()
            .chain(&out.device_reports[1].steps)
            .map(|s| s.counters.remote_after_combine)
            .sum();
        assert_eq!(total_remote, 1);
    }
}
