//! Heterogeneous N-rank execution (§IV.A / §IV.E, generalized).
//!
//! "The system is built using MPI symmetric computing, with CPU being Rank
//! 0, and MIC being Rank 1." Every device runtime executes the same
//! superstep in lockstep; between generation and processing each rank
//! buckets its remote buffer per destination rank, combines each bucket
//! per destination, and exchanges the combined payloads over its per-peer
//! links (ascending peer order on every rank — sends never block, so the
//! mesh schedule is deadlock-free). Global termination: a superstep in
//! which no rank generated any message — each rank sees its own flag plus
//! every peer's, so all ranks reach the identical decision at the same
//! barrier. The classic 2-device CPU+MIC topology is the `N = 2` case of
//! this one code path.

use crate::api::VertexProgram;
use crate::engine::config::EngineConfig;
use crate::engine::device::DeviceEngine;
use crate::engine::flat::run_cap;
use crate::engine::integrity::framed_exchange;
use crate::engine::seq::run_seq;
use crate::metrics::{combine_ranks, RunOutput, RunReport, StepReport};
use phigraph_comm::message::wire_bytes;
use phigraph_comm::{combine_messages, mesh, Endpoint, PcieLink, WireMsg};
use phigraph_device::{CostModel, DeviceSpec, StepCounters};
use phigraph_graph::Csr;
use phigraph_partition::DevicePartition;
use phigraph_recover::{FaultKind, IntegrityStats, RecoveryStats};
use phigraph_simd::MsgValue;
use phigraph_trace::{HistKind, Phase};
use std::time::Instant;

/// Run `program` across `specs.len()` ranks. `specs`/`configs` are indexed
/// by rank (0 = CPU, 1.. = accelerators); `partition` assigns vertices.
///
/// # Panics
/// Panics if a `DropExchange` fault fires — install the fault plan under
/// [`run_ranks_recovering`] instead, which retries and degrades.
pub fn run_ranks<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    partition: &DevicePartition,
    specs: &[DeviceSpec],
    configs: &[EngineConfig],
    link: PcieLink,
) -> RunOutput<P::Value> {
    attempt_ranks(program, graph, partition, specs, configs, link).unwrap_or_else(|step| {
        panic!(
            "remote message exchange dropped at superstep {step} with no \
             recovery driver installed; use run_ranks_recovering"
        )
    })
}

/// Run `program` across both devices of the classic CPU+MIC pair — the
/// `N = 2` case of [`run_ranks`].
///
/// # Panics
/// Panics if a `DropExchange` fault fires — install the fault plan under
/// [`run_hetero_recovering`] instead, which retries and degrades.
pub fn run_hetero<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    partition: &DevicePartition,
    specs: [DeviceSpec; 2],
    configs: [EngineConfig; 2],
    link: PcieLink,
) -> RunOutput<P::Value> {
    run_ranks(program, graph, partition, &specs, &configs, link)
}

/// [`run_ranks`] with link-failure recovery: a dropped exchange aborts the
/// superstep consistently on every rank (a dropped link cascades dead-peer
/// errors over the survivors' links within one barrier), and the whole run
/// is replayed — generation is deterministic per attempt, and injected
/// faults fire once, so replay converges. After
/// `configs[0].recovery.max_retries` failed attempts the run degrades to
/// the sequential engine on rank 0. Recovery events are reported in the
/// combined report's [`RunReport::recovery`].
pub fn run_ranks_recovering<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    partition: &DevicePartition,
    specs: &[DeviceSpec],
    configs: &[EngineConfig],
    link: PcieLink,
) -> RunOutput<P::Value> {
    let policy = configs[0].recovery;
    let mut stats = RecoveryStats::default();
    let mut dropped_exchanges = 0u64;
    let mut retry = 0u32;
    loop {
        match attempt_ranks(program, graph, partition, specs, configs, link) {
            Ok(mut out) => {
                stats.accumulate(&out.report.recovery);
                out.report.recovery = stats;
                out.report.failover.exchange_drops = dropped_exchanges;
                return out;
            }
            Err(_step) => {
                dropped_exchanges += 1;
                stats.faults_injected += 1;
                stats.rollbacks += 1;
                if retry >= policy.max_retries {
                    // Retry budget exhausted: degrade to one sequential
                    // device. The hetero path keeps no checkpoints (all
                    // ranks would need a coordinated snapshot), so the
                    // degraded run restarts from scratch — slower, still
                    // correct.
                    stats.degraded = true;
                    let mut out = run_seq(program, graph, specs[0].clone(), &configs[0]);
                    out.report.recovery = stats;
                    out.report.failover.exchange_drops = dropped_exchanges;
                    return out;
                }
                retry += 1;
                stats.retries += 1;
                let backoff = policy.backoff_ms(retry - 1);
                if backoff > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(backoff));
                }
            }
        }
    }
}

/// [`run_hetero`] with link-failure recovery — the `N = 2` case of
/// [`run_ranks_recovering`].
pub fn run_hetero_recovering<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    partition: &DevicePartition,
    specs: [DeviceSpec; 2],
    configs: [EngineConfig; 2],
    link: PcieLink,
) -> RunOutput<P::Value> {
    run_ranks_recovering(program, graph, partition, &specs, &configs, link)
}

/// One lock-step attempt over the full fabric. `Err(step)` is the earliest
/// superstep whose exchange was dropped: the rank with the poisoned link
/// fails at that barrier, and its peers observe dead links at the same or
/// the following barrier — the minimum is the authoritative failure point.
fn attempt_ranks<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    partition: &DevicePartition,
    specs: &[DeviceSpec],
    configs: &[EngineConfig],
    link: PcieLink,
) -> Result<RunOutput<P::Value>, usize> {
    assert_eq!(partition.assign.len(), graph.num_vertices());
    assert!(specs.len() >= 2, "heterogeneous runs need at least 2 ranks");
    assert_eq!(specs.len(), configs.len(), "one config per rank");
    let n_ranks = specs.len();
    // All ranks must agree on the superstep cap or the lock-step exchange
    // deadlocks.
    let cap = run_cap(
        program.max_supersteps(),
        configs.iter().filter_map(|c| c.max_supersteps).min(),
    );

    let ranks: Vec<usize> = (0..n_ranks).collect();
    let sides = mesh::<WireMsg<P::Msg>>(link, &ranks);
    let assign = &partition.assign;

    let outs: Vec<(Vec<P::Value>, RunReport, Option<usize>)> = std::thread::scope(|s| {
        let handles: Vec<_> = sides
            .into_iter()
            .enumerate()
            .map(|(r, eps)| {
                let spec = specs[r].clone();
                let config = configs[r].clone();
                s.spawn(move || device_loop(program, graph, assign, r, spec, config, eps, cap))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank loop panicked"))
            .collect()
    });

    if let Some(step) = outs.iter().filter_map(|(_, _, f)| *f).min() {
        return Err(step);
    }
    // Merge values by ownership.
    let mut iter = outs.into_iter();
    let (mut values, report0, _) = iter.next().expect("rank 0 output");
    let mut reports = vec![report0];
    for (r, (vals, report, _)) in iter.enumerate() {
        let r = (r + 1) as u8;
        for (v, val) in vals.into_iter().enumerate() {
            if assign[v] == r {
                values[v] = val;
            }
        }
        reports.push(report);
    }
    let report = combine_ranks(P::NAME, &reports);
    Ok(RunOutput {
        values,
        report,
        device_reports: reports,
    })
}

/// One rank's superstep loop. The third return slot is `Some(step)` when a
/// remote exchange for `step` was dropped (fault injection): the loop
/// returns early, its peers observe dead links at the same (or next)
/// barrier, and the caller decides whether to retry.
#[allow(clippy::too_many_arguments)]
fn device_loop<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    assign: &[u8],
    rank: usize,
    spec: DeviceSpec,
    config: EngineConfig,
    eps: Vec<Endpoint<WireMsg<P::Msg>>>,
    cap: usize,
) -> (Vec<P::Value>, RunReport, Option<usize>) {
    let dev = rank as u8;
    let cost = CostModel::new(spec.clone());
    let mut engine = DeviceEngine::new(
        program,
        graph,
        spec.clone(),
        config.clone(),
        dev,
        Some(assign),
    );
    let tracer = config.tracer(&format!("dev{dev}"), dev as u32 * 1000);
    // Destination rank → link position (eps are ascending by peer id).
    let max_rank = eps.iter().map(|e| e.peer).max().unwrap_or(0).max(rank);
    let mut bucket_of = vec![usize::MAX; max_rank + 1];
    for (i, ep) in eps.iter().enumerate() {
        bucket_of[ep.peer] = i;
    }
    let wall_start = Instant::now();
    let mut steps: Vec<StepReport> = Vec::new();
    let mut failed: Option<usize> = None;
    let mut integ_stats = IntegrityStats::default();

    for step in 0.. {
        if step >= cap {
            break;
        }
        let t0 = Instant::now();
        let _step_span = tracer.span(Phase::Superstep, step as u32);
        let mut c: StepCounters = engine.begin_step();

        // 1. Message generation (local messages straight into the CSB,
        //    peer-bound ones into the remote buffer).
        let remote = {
            let _g = tracer.span(Phase::Generate, step as u32);
            engine.generate(&mut c)
        };
        c.remote_before_combine = remote.len() as u64;

        // 2. Bucket the remote buffer by destination rank (generation
        //    order preserved within each bucket) and combine each bucket
        //    per destination ("the combination result is sent to the other
        //    device as a single MPI message" — one such message per peer).
        let mut buckets: Vec<Vec<WireMsg<P::Msg>>> = (0..eps.len()).map(|_| Vec::new()).collect();
        for m in remote {
            buckets[bucket_of[assign[m.dst as usize] as usize]].push(m);
        }
        let mut outgoing: Vec<Vec<WireMsg<P::Msg>>> = Vec::with_capacity(eps.len());
        for b in buckets {
            let (combined, _) = combine_messages::<P::Msg, P::Reduce>(b);
            c.remote_after_combine += combined.len() as u64;
            outgoing.push(combined);
        }

        // 3. The implicit remote message exchange, one framed exchange per
        //    link in ascending peer order. A `DropExchange` fault scheduled
        //    for this (step, rank) arms a one-shot failure of the rank's
        //    first link that both of its ends observe at this barrier.
        if let Some(inj) = &config.fault_plan {
            if inj.fire(step as u64, FaultKind::DropExchange, dev) {
                eps[0].inject_fault();
            }
        }
        let my_any = c.msgs_total() > 0;
        let mut peer_any = false;
        let mut comm_time = 0.0;
        let mut incoming_all: Vec<Vec<WireMsg<P::Msg>>> = Vec::with_capacity(eps.len());
        let x0 = Instant::now();
        let xspan = tracer.span(Phase::Exchange, step as u32);
        // Frame integrity (when configured): seal, verify, and heal corrupt
        // frames with a bounded verdict-synced re-exchange. With integrity
        // off this is the plain lock-step exchange (and any injected wire
        // corruption passes through silently).
        for (ep, out_msgs) in eps.iter().zip(outgoing) {
            let bytes_out = wire_bytes::<P::Msg>(out_msgs.len());
            let exchanged = framed_exchange(
                ep,
                out_msgs,
                bytes_out,
                my_any,
                0.0,
                None,
                step as u64,
                dev,
                config.integrity,
                config.fault_plan.as_ref(),
                &mut integ_stats,
            );
            match exchanged {
                Ok((msgs, peer, x)) => {
                    peer_any |= peer.any_active;
                    c.comm_bytes += x.bytes_sent + x.bytes_recv;
                    comm_time += x.sim_time;
                    incoming_all.push(msgs);
                }
                Err(_dropped) => {
                    failed = Some(step);
                    break;
                }
            }
        }
        if failed.is_some() {
            break;
        }
        drop(xspan);
        config.record_hist(HistKind::ExchangeRttUs, x0.elapsed().as_micros() as u64);

        // 4. Insert received messages (per peer, ascending), then process
        //    and update locally.
        {
            let _i = tracer.span(Phase::Insert, step as u32);
            for incoming in &incoming_all {
                engine.absorb_remote(incoming, &mut c);
            }
            engine.finalize_insertion_stats(&mut c);
        }
        {
            let _p = tracer.span(Phase::Process, step as u32);
            engine.process(&mut c);
        }
        {
            let _u = tracer.span(Phase::Update, step as u32);
            engine.update(&mut c);
        }

        let vectorized = config.vectorized && P::SIMD_REDUCIBLE;
        let times = cost.step_times(&c, config.gen_mode(&spec), P::Msg::SIZE, vectorized);
        c.gen_chunks.clear();
        c.proc_chunks.clear();
        steps.push(StepReport {
            step,
            times,
            comm_time,
            wall: t0.elapsed().as_secs_f64(),
            counters: c,
        });
        // Global termination: nobody generated messages this superstep.
        if !my_any && !peer_any {
            break;
        }
    }

    let report = RunReport {
        app: P::NAME.to_string(),
        device: spec.name.to_string(),
        mode: "cpu-mic".to_string(),
        steps,
        wall: wall_start.elapsed().as_secs_f64(),
        integrity: integ_stats,
        ..Default::default()
    };
    (engine.values, report, failed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{GenContext, MsgSink};
    use crate::engine::run_single;
    use phigraph_graph::generators::small::chain;
    use phigraph_graph::VertexId;
    use phigraph_partition::{partition, partition_n, PartitionScheme, Ratio, Shares};
    use phigraph_simd::Min;

    struct Sssp;
    impl VertexProgram for Sssp {
        type Msg = f32;
        type Reduce = Min;
        type Value = f32;
        const NAME: &'static str = "sssp";
        fn init(&self, v: VertexId, _g: &Csr) -> (f32, bool) {
            if v == 0 {
                (0.0, true)
            } else {
                (f32::INFINITY, false)
            }
        }
        fn generate<S: MsgSink<f32>>(&self, v: VertexId, ctx: &mut GenContext<'_, f32, S>) {
            let my = *ctx.value(v);
            for e in ctx.graph.edge_range(v) {
                ctx.send(ctx.graph.targets[e], my + ctx.graph.weight(e));
            }
        }
        fn update(&self, _v: VertexId, msg: f32, value: &mut f32, _g: &Csr) -> bool {
            if msg < *value {
                *value = msg;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn hetero_matches_single_device_on_chain() {
        let g = chain(40);
        let p = partition(&g, PartitionScheme::RoundRobin, Ratio::even(), 0);
        let out = run_hetero(
            &Sssp,
            &g,
            &p,
            [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
            [
                EngineConfig::locking(),
                EngineConfig::pipelined().with_host_threads(4),
            ],
            PcieLink::gen2_x16(),
        );
        let single = run_single(
            &Sssp,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        assert_eq!(out.values, single.values);
        assert_eq!(out.report.device, "CPU-MIC");
        // Round-robin on a chain: every edge crosses devices.
        assert!(out.report.sim_comm() > 0.0);
        assert!(out.report.total_comm_bytes() > 0);
    }

    #[test]
    fn three_and_four_rank_fabrics_match_single_device() {
        let g = chain(40);
        let single = run_single(
            &Sssp,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        for n in [3usize, 4] {
            let p = partition_n(&g, PartitionScheme::RoundRobin, &Shares::even(n), 0);
            let specs: Vec<DeviceSpec> = (0..n)
                .map(|r| {
                    if r == 0 {
                        DeviceSpec::xeon_e5_2680()
                    } else {
                        DeviceSpec::xeon_phi_se10p()
                    }
                })
                .collect();
            let configs = vec![EngineConfig::locking(); n];
            let out = run_ranks(&Sssp, &g, &p, &specs, &configs, PcieLink::gen2_x16());
            assert_eq!(out.values, single.values, "{n} ranks");
            assert_eq!(out.device_reports.len(), n);
            assert_eq!(out.report.device, format!("CPU-MICx{}", n - 1));
            assert!(out.report.total_comm_bytes() > 0, "{n} ranks");
        }
    }

    #[test]
    fn dropped_exchange_is_retried_and_matches_clean_run() {
        use phigraph_recover::{FaultKind, FaultPlan};
        let g = chain(30);
        let p = partition(&g, PartitionScheme::RoundRobin, Ratio::even(), 0);
        let clean = run_single(
            &Sssp,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        let plan = FaultPlan::single(2, FaultKind::DropExchange);
        let inj = plan.injector();
        let out = run_hetero_recovering(
            &Sssp,
            &g,
            &p,
            [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
            [
                EngineConfig::locking()
                    .with_backoff_ms(0)
                    .with_fault_plan(inj.clone()),
                EngineConfig::locking().with_fault_plan(inj),
            ],
            PcieLink::gen2_x16(),
        );
        assert_eq!(out.values, clean.values);
        assert_eq!(out.report.recovery.rollbacks, 1);
        assert_eq!(out.report.recovery.retries, 1);
        assert_eq!(out.report.recovery.faults_injected, 1);
        assert!(!out.report.recovery.degraded);
        assert_eq!(out.report.device, "CPU-MIC");
    }

    #[test]
    fn three_rank_dropped_exchange_is_retried() {
        use phigraph_recover::{FaultKind, FaultPlan};
        let g = chain(30);
        let p = partition_n(&g, PartitionScheme::RoundRobin, &Shares::even(3), 0);
        let clean = run_single(
            &Sssp,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        // Rank 1 drops its first link (to rank 0) at superstep 2; ranks 0
        // and 2 observe the dead fabric and all three retry consistently.
        let plan = FaultPlan::new().with(2, FaultKind::DropExchange, 1);
        let inj = plan.injector();
        let specs = vec![
            DeviceSpec::xeon_e5_2680(),
            DeviceSpec::xeon_phi_se10p(),
            DeviceSpec::xeon_phi_se10p(),
        ];
        let configs = vec![
            EngineConfig::locking()
                .with_backoff_ms(0)
                .with_fault_plan(inj.clone());
            3
        ];
        let out = run_ranks_recovering(&Sssp, &g, &p, &specs, &configs, PcieLink::gen2_x16());
        assert_eq!(out.values, clean.values);
        assert_eq!(out.report.recovery.rollbacks, 1);
        assert_eq!(out.report.recovery.retries, 1);
        assert!(!out.report.recovery.degraded);
    }

    #[test]
    fn exchange_faults_past_budget_degrade_to_sequential() {
        use phigraph_recover::{FaultKind, FaultPlan};
        let g = chain(20);
        let p = partition(&g, PartitionScheme::RoundRobin, Ratio::even(), 0);
        // Faults on both devices across attempts, budget of one retry.
        let plan = FaultPlan::new().with(1, FaultKind::DropExchange, 0).with(
            2,
            FaultKind::DropExchange,
            1,
        );
        let inj = plan.injector();
        let out = run_hetero_recovering(
            &Sssp,
            &g,
            &p,
            [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
            [
                EngineConfig::locking()
                    .with_backoff_ms(0)
                    .with_max_retries(1)
                    .with_fault_plan(inj.clone()),
                EngineConfig::locking().with_fault_plan(inj),
            ],
            PcieLink::gen2_x16(),
        );
        for v in 0..20 {
            assert_eq!(out.values[v], v as f32, "degraded run still correct");
        }
        assert!(out.report.recovery.degraded);
        assert_eq!(out.report.mode, "seq");
        assert!(out.report.summary().contains("DEGRADED->seq"));
    }

    #[test]
    fn recovering_driver_without_faults_is_plain_hetero() {
        let g = chain(24);
        let p = partition(&g, PartitionScheme::Continuous, Ratio::even(), 0);
        let specs = [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()];
        let configs = [EngineConfig::locking(), EngineConfig::locking()];
        let plain = run_hetero(
            &Sssp,
            &g,
            &p,
            specs.clone(),
            configs.clone(),
            PcieLink::ideal(),
        );
        let out = run_hetero_recovering(&Sssp, &g, &p, specs, configs, PcieLink::ideal());
        assert_eq!(out.values, plain.values);
        assert!(!out.report.recovery.any());
    }

    #[test]
    fn hetero_reports_per_device() {
        let g = chain(20);
        let p = partition(&g, PartitionScheme::Continuous, Ratio::even(), 0);
        let out = run_hetero(
            &Sssp,
            &g,
            &p,
            [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
            [EngineConfig::locking(), EngineConfig::locking()],
            PcieLink::gen2_x16(),
        );
        assert_eq!(out.device_reports.len(), 2);
        // Continuous split of a chain: exactly one cross edge, so exactly
        // one remote message crosses in one superstep of the whole run.
        let total_remote: u64 = out.device_reports[0]
            .steps
            .iter()
            .chain(&out.device_reports[1].steps)
            .map(|s| s.counters.remote_after_combine)
            .sum();
        assert_eq!(total_remote, 1);
    }
}
