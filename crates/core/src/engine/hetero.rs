//! Heterogeneous CPU-MIC execution (§IV.A / §IV.E).
//!
//! "The system is built using MPI symmetric computing, with CPU being Rank
//! 0, and MIC being Rank 1." Both device runtimes execute the same
//! superstep in lockstep; between generation and processing they combine
//! their remote buffers per destination and exchange them over the modelled
//! PCIe link. Global termination: a superstep in which neither device
//! generated any message.

use crate::api::VertexProgram;
use crate::engine::config::EngineConfig;
use crate::engine::device::DeviceEngine;
use crate::engine::flat::run_cap;
use crate::metrics::{combine_hetero, RunOutput, RunReport, StepReport};
use phigraph_comm::message::wire_bytes;
use phigraph_comm::{combine_messages, duplex_pair, Endpoint, PcieLink, WireMsg};
use phigraph_device::{CostModel, DeviceSpec, StepCounters};
use phigraph_graph::Csr;
use phigraph_partition::DevicePartition;
use phigraph_simd::MsgValue;
use std::time::Instant;

/// Run `program` across both devices. `specs`/`configs` are indexed by
/// device (0 = CPU, 1 = MIC); `partition` assigns vertices.
pub fn run_hetero<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    partition: &DevicePartition,
    specs: [DeviceSpec; 2],
    configs: [EngineConfig; 2],
    link: PcieLink,
) -> RunOutput<P::Value> {
    assert_eq!(partition.assign.len(), graph.num_vertices());
    // Both sides must agree on the superstep cap or the lock-step exchange
    // deadlocks.
    let cap = run_cap(
        program.max_supersteps(),
        match (configs[0].max_supersteps, configs[1].max_supersteps) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        },
    );

    let (ep0, ep1) = duplex_pair::<WireMsg<P::Msg>>(link);
    let [spec0, spec1] = specs;
    let [config0, config1] = configs;
    let assign = &partition.assign;

    let (side0, side1) = std::thread::scope(|s| {
        let h0 = s.spawn(|| device_loop(program, graph, assign, 0, spec0, config0, ep0, cap));
        let h1 = s.spawn(|| device_loop(program, graph, assign, 1, spec1, config1, ep1, cap));
        (
            h0.join().expect("device 0 panicked"),
            h1.join().expect("device 1 panicked"),
        )
    });

    let (values0, report0) = side0;
    let (values1, report1) = side1;
    // Merge values by ownership.
    let mut values = values0;
    for (v, val) in values1.into_iter().enumerate() {
        if assign[v] == 1 {
            values[v] = val;
        }
    }
    let report = combine_hetero(P::NAME, &report0, &report1);
    RunOutput {
        values,
        report,
        device_reports: vec![report0, report1],
    }
}

#[allow(clippy::too_many_arguments)]
fn device_loop<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    assign: &[u8],
    dev: u8,
    spec: DeviceSpec,
    config: EngineConfig,
    ep: Endpoint<WireMsg<P::Msg>>,
    cap: usize,
) -> (Vec<P::Value>, RunReport) {
    let cost = CostModel::new(spec.clone());
    let mut engine = DeviceEngine::new(
        program,
        graph,
        spec.clone(),
        config.clone(),
        dev,
        Some(assign),
    );
    let wall_start = Instant::now();
    let mut steps: Vec<StepReport> = Vec::new();

    for step in 0.. {
        if step >= cap {
            break;
        }
        let t0 = Instant::now();
        let mut c: StepCounters = engine.begin_step();

        // 1. Message generation (local messages straight into the CSB,
        //    peer-bound ones into the remote buffer).
        let remote = engine.generate(&mut c);
        c.remote_before_combine = remote.len() as u64;

        // 2. Combine the remote buffer per destination ("the combination
        //    result is sent to the other device as a single MPI message").
        let (combined, _) = combine_messages::<P::Msg, P::Reduce>(remote);
        c.remote_after_combine = combined.len() as u64;
        let bytes_out = wire_bytes::<P::Msg>(combined.len());

        // 3. The implicit remote message exchange.
        let my_any = c.msgs_total() > 0;
        let (incoming, peer_any, xstats) = ep.exchange(combined, bytes_out, my_any);
        c.comm_bytes = xstats.bytes_sent + xstats.bytes_recv;

        // 4. Insert received messages, then process and update locally.
        engine.absorb_remote(&incoming, &mut c);
        engine.finalize_insertion_stats(&mut c);
        engine.process(&mut c);
        engine.update(&mut c);

        let vectorized = config.vectorized && P::SIMD_REDUCIBLE;
        let times = cost.step_times(&c, config.gen_mode(&spec), P::Msg::SIZE, vectorized);
        c.gen_chunks.clear();
        c.proc_chunks.clear();
        steps.push(StepReport {
            step,
            times,
            comm_time: xstats.sim_time,
            wall: t0.elapsed().as_secs_f64(),
            counters: c,
        });
        // Global termination: nobody generated messages this superstep.
        if !my_any && !peer_any {
            break;
        }
    }

    let report = RunReport {
        app: P::NAME.to_string(),
        device: spec.name.to_string(),
        mode: "cpu-mic".to_string(),
        steps,
        wall: wall_start.elapsed().as_secs_f64(),
    };
    (engine.values, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{GenContext, MsgSink};
    use crate::engine::run_single;
    use phigraph_graph::generators::small::chain;
    use phigraph_graph::VertexId;
    use phigraph_partition::{partition, PartitionScheme, Ratio};
    use phigraph_simd::Min;

    struct Sssp;
    impl VertexProgram for Sssp {
        type Msg = f32;
        type Reduce = Min;
        type Value = f32;
        const NAME: &'static str = "sssp";
        fn init(&self, v: VertexId, _g: &Csr) -> (f32, bool) {
            if v == 0 {
                (0.0, true)
            } else {
                (f32::INFINITY, false)
            }
        }
        fn generate<S: MsgSink<f32>>(&self, v: VertexId, ctx: &mut GenContext<'_, f32, S>) {
            let my = *ctx.value(v);
            for e in ctx.graph.edge_range(v) {
                ctx.send(ctx.graph.targets[e], my + ctx.graph.weight(e));
            }
        }
        fn update(&self, _v: VertexId, msg: f32, value: &mut f32, _g: &Csr) -> bool {
            if msg < *value {
                *value = msg;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn hetero_matches_single_device_on_chain() {
        let g = chain(40);
        let p = partition(&g, PartitionScheme::RoundRobin, Ratio::even(), 0);
        let out = run_hetero(
            &Sssp,
            &g,
            &p,
            [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
            [
                EngineConfig::locking(),
                EngineConfig::pipelined().with_host_threads(4),
            ],
            PcieLink::gen2_x16(),
        );
        let single = run_single(
            &Sssp,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        assert_eq!(out.values, single.values);
        assert_eq!(out.report.device, "CPU-MIC");
        // Round-robin on a chain: every edge crosses devices.
        assert!(out.report.sim_comm() > 0.0);
        assert!(out.report.total_comm_bytes() > 0);
    }

    #[test]
    fn hetero_reports_per_device() {
        let g = chain(20);
        let p = partition(&g, PartitionScheme::Continuous, Ratio::even(), 0);
        let out = run_hetero(
            &Sssp,
            &g,
            &p,
            [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
            [EngineConfig::locking(), EngineConfig::locking()],
            PcieLink::gen2_x16(),
        );
        assert_eq!(out.device_reports.len(), 2);
        // Continuous split of a chain: exactly one cross edge, so exactly
        // one remote message crosses in one superstep of the whole run.
        let total_remote: u64 = out.device_reports[0]
            .steps
            .iter()
            .chain(&out.device_reports[1].steps)
            .map(|s| s.counters.remote_after_combine)
            .sum();
        assert_eq!(total_remote, 1);
    }
}
