//! The object-message execution path.
//!
//! "SIMD processing of messages only applies to messages with basic data
//! types … and are limited to associative and commutative reductions."
//! Semi-Clustering violates both (its messages are cluster lists, its
//! processing is a sort), so the paper routes it through scalar message
//! processing. This module is that path: per-vertex mailboxes instead of
//! the CSB, a fused scalar process+update step, and the same four execution
//! strategies and heterogeneous driver as the POD path.

use crate::active::ActiveSet;
use crate::engine::config::{EngineConfig, ExecMode};
use crate::engine::flat::run_cap;
use crate::metrics::{combine_hetero, RunOutput, RunReport, StepReport};
use crate::queues::QueueMatrix;
use phigraph_comm::{duplex_pair, Endpoint, PcieLink};
use phigraph_device::cost::GenMode;
use phigraph_device::counters::{GenChunk, InsertProfile, ProcChunk};
use phigraph_device::pool::run_parallel_collect;
use phigraph_device::{ChunkScheduler, CostModel, DeviceSpec, StepCounters};
use phigraph_graph::{Csr, VertexId};
use std::time::Instant;

/// A vertex program whose messages are arbitrary (cloneable) objects.
pub trait ObjVertexProgram: Send + Sync + 'static {
    /// Message type (e.g. a list of semi-clusters).
    type Msg: Clone + Send + Sync + 'static;
    /// Per-vertex state.
    type Value: Clone + Send + Sync + Default + 'static;

    /// Application name.
    const NAME: &'static str;

    /// Initial value and active flag.
    fn init(&self, v: VertexId, g: &Csr) -> (Self::Value, bool);

    /// Generate messages for active vertex `v` by calling `send`.
    fn generate(
        &self,
        v: VertexId,
        g: &Csr,
        values: &[Self::Value],
        send: &mut dyn FnMut(VertexId, Self::Msg),
    );

    /// Process the received messages and update the vertex; return the new
    /// active flag. (Message processing and vertex updating are fused: the
    /// processing here is not an elementwise reduction.)
    fn update(&self, v: VertexId, msgs: Vec<Self::Msg>, value: &mut Self::Value, g: &Csr) -> bool;

    /// Combine messages bound for one remote vertex before the exchange
    /// (the paper invokes the processing function; default keeps all).
    fn combine_remote(&self, _dst: VertexId, msgs: Vec<Self::Msg>) -> Vec<Self::Msg> {
        msgs
    }

    /// Wire size of one message, for communication accounting.
    fn msg_bytes(msg: &Self::Msg) -> u64;

    /// Superstep cap.
    fn max_supersteps(&self) -> Option<usize> {
        None
    }
}

/// Nominal message size fed to the cost model (lanes = 1 either way, since
/// object messages never fit a SIMD register).
const OBJ_MSG_SIZE: usize = 128;

struct ObjEngine<'g, P: ObjVertexProgram> {
    program: &'g P,
    graph: &'g Csr,
    config: EngineConfig,
    spec: DeviceSpec,
    dev: u8,
    assign: Option<&'g [u8]>,
    owned: Vec<VertexId>,
    values: Vec<P::Value>,
    active: ActiveSet,
    mailboxes: Vec<std::sync::Mutex<Vec<P::Msg>>>,
    host_threads: usize,
    gen_ranges: Vec<std::ops::Range<usize>>,
}

impl<'g, P: ObjVertexProgram> ObjEngine<'g, P> {
    fn new(
        program: &'g P,
        graph: &'g Csr,
        spec: DeviceSpec,
        config: EngineConfig,
        dev: u8,
        assign: Option<&'g [u8]>,
    ) -> Self {
        let n = graph.num_vertices();
        let owned: Vec<VertexId> = match assign {
            None => (0..n as VertexId).collect(),
            Some(a) => (0..n as VertexId)
                .filter(|&v| a[v as usize] == dev)
                .collect(),
        };
        let mut values = vec![P::Value::default(); n];
        let mut active = ActiveSet::new(n);
        for &v in &owned {
            let (val, act) = program.init(v, graph);
            values[v as usize] = val;
            active.set(v, act);
        }
        let host_threads = config.resolve_host_threads();
        let gen_ranges = crate::engine::device::edge_balanced_ranges(
            &owned,
            graph,
            config.gen_chunk,
            spec.threads(),
        );
        ObjEngine {
            program,
            graph,
            spec,
            config,
            dev,
            assign,
            owned,
            values,
            active,
            mailboxes: (0..n).map(|_| std::sync::Mutex::new(Vec::new())).collect(),
            host_threads,
            gen_ranges,
        }
    }

    /// Generation. Returns peer-bound `(dst, msg)` pairs.
    fn generate(&mut self, c: &mut StepCounters) -> Vec<(VertexId, P::Msg)> {
        let remote = match self.config.mode {
            ExecMode::Pipelined => self.generate_pipelined(c),
            _ => self.generate_locking(c),
        };
        c.msgs_remote = remote.len() as u64;
        self.active.clear();
        remote
    }

    fn generate_locking(&mut self, c: &mut StepCounters) -> Vec<(VertexId, P::Msg)> {
        let sched = ChunkScheduler::new(self.gen_ranges.len(), 1);
        let ranges = &self.gen_ranges;
        let (program, graph) = (self.program, self.graph);
        let (owned, values, active) = (&self.owned, &self.values, &self.active);
        let mailboxes = &self.mailboxes;
        let (assign, dev) = (self.assign, self.dev);
        let threads = if self.config.mode == ExecMode::Sequential {
            1
        } else {
            self.host_threads
        };
        let results = run_parallel_collect(threads, |_| {
            let mut chunks: Vec<GenChunk> = Vec::new();
            let mut remote: Vec<(VertexId, P::Msg)> = Vec::new();
            let mut local = 0u64;
            let mut bytes = 0u64;
            while let Some(batch) = sched.next_batch() {
                for ri in batch {
                    let mut ch = GenChunk::default();
                    for i in ranges[ri].clone() {
                        let v = owned[i];
                        if !active.is_active(v) {
                            continue;
                        }
                        ch.vertices += 1;
                        ch.edges += graph.out_degree(v) as u64;
                        let mut send = |dst: VertexId, msg: P::Msg| {
                            ch.msgs += 1;
                            bytes += 4 + P::msg_bytes(&msg);
                            let is_local = assign.is_none_or(|a| a[dst as usize] == dev);
                            if is_local {
                                mailboxes[dst as usize].lock().unwrap().push(msg);
                                local += 1;
                            } else {
                                remote.push((dst, msg));
                            }
                        };
                        program.generate(v, graph, values, &mut send);
                    }
                    chunks.push(ch);
                }
            }
            (chunks, remote, local, bytes)
        });
        let mut remote = Vec::new();
        for (chunks, r, local, bytes) in results {
            for ch in &chunks {
                c.active_vertices += ch.vertices;
                c.gen_edges += ch.edges;
            }
            c.gen_chunks.extend(chunks);
            c.msgs_local += local;
            c.bytes_gen += bytes;
            remote.extend(r);
        }
        c.bytes_gen += c.gen_edges * 8;
        remote
    }

    fn generate_pipelined(&mut self, c: &mut StepCounters) -> Vec<(VertexId, P::Msg)> {
        let host = self.host_threads;
        let real_movers = (host / 4).max(1);
        let real_workers = host.saturating_sub(real_movers).max(1);
        let (_, sim_movers) = self.config.pipeline_split(&self.spec);
        let queues = QueueMatrix::<(VertexId, P::Msg)>::new(real_workers, real_movers, 1024);
        let sched = ChunkScheduler::new(self.gen_ranges.len(), 1);
        let ranges = &self.gen_ranges;
        let (program, graph) = (self.program, self.graph);
        let (owned, values, active) = (&self.owned, &self.values, &self.active);
        let mailboxes = &self.mailboxes;
        let (assign, dev) = (self.assign, self.dev);
        let queues_ref = &queues;
        let sched = &sched;

        type MoverOut<M> = (Vec<(VertexId, M)>, u64, Vec<u64>, u64);
        let (worker_out, mover_out): (Vec<Vec<GenChunk>>, Vec<MoverOut<P::Msg>>) =
            std::thread::scope(|s| {
                let workers: Vec<_> = (0..real_workers)
                    .map(|w| {
                        s.spawn(move || {
                            let mut chunks = Vec::new();
                            while let Some(batch) = sched.next_batch() {
                                for ri in batch {
                                    let mut ch = GenChunk::default();
                                    for i in ranges[ri].clone() {
                                        let v = owned[i];
                                        if !active.is_active(v) {
                                            continue;
                                        }
                                        ch.vertices += 1;
                                        ch.edges += graph.out_degree(v) as u64;
                                        let mut send = |dst: VertexId, msg: P::Msg| {
                                            ch.msgs += 1;
                                            let m = dst as usize % queues_ref.movers;
                                            // SAFETY: worker w is queue
                                            // (w, m)'s only producer.
                                            unsafe { queues_ref.queue(w, m).push((dst, msg)) };
                                        };
                                        program.generate(v, graph, values, &mut send);
                                    }
                                    chunks.push(ch);
                                }
                            }
                            queues_ref.close_worker(w);
                            chunks
                        })
                    })
                    .collect();
                let movers: Vec<_> = (0..real_movers)
                    .map(|m| {
                        s.spawn(move || {
                            let mut remote: Vec<(VertexId, P::Msg)> = Vec::new();
                            let mut local = 0u64;
                            let mut bytes = 0u64;
                            let mut classes = vec![0u64; sim_movers];
                            let mut buf: Vec<(VertexId, P::Msg)> = Vec::with_capacity(128);
                            loop {
                                let mut moved = false;
                                for w in 0..real_workers {
                                    buf.clear();
                                    // SAFETY: mover m is the only consumer.
                                    let n =
                                        unsafe { queues_ref.queue(w, m).pop_batch(&mut buf, 128) };
                                    if n > 0 {
                                        moved = true;
                                        for (dst, msg) in buf.drain(..) {
                                            classes[dst as usize % sim_movers] += 1;
                                            bytes += 4 + P::msg_bytes(&msg);
                                            let is_local =
                                                assign.is_none_or(|a| a[dst as usize] == dev);
                                            if is_local {
                                                mailboxes[dst as usize].lock().unwrap().push(msg);
                                                local += 1;
                                            } else {
                                                remote.push((dst, msg));
                                            }
                                        }
                                    }
                                }
                                if !moved {
                                    if queues_ref.mover_done(m) {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                            }
                            (remote, local, classes, bytes)
                        })
                    })
                    .collect();
                (
                    workers
                        .into_iter()
                        .map(|h| h.join().expect("worker panicked"))
                        .collect(),
                    movers
                        .into_iter()
                        .map(|h| h.join().expect("mover panicked"))
                        .collect(),
                )
            });

        let mut remote = Vec::new();
        c.mover_msgs = vec![0u64; sim_movers];
        for chunks in worker_out {
            for ch in &chunks {
                c.active_vertices += ch.vertices;
                c.gen_edges += ch.edges;
            }
            c.gen_chunks.extend(chunks);
        }
        for (r, local, classes, bytes) in mover_out {
            remote.extend(r);
            c.msgs_local += local;
            c.bytes_gen += bytes;
            for (a, b) in c.mover_msgs.iter_mut().zip(classes) {
                *a += b;
            }
        }
        c.bytes_gen += c.gen_edges * 8;
        remote
    }

    fn absorb_remote(&mut self, incoming: Vec<(VertexId, P::Msg)>, c: &mut StepCounters) {
        let grain = (incoming.len() / (self.spec.threads() * 8).max(1)).clamp(8, 512) as u64;
        let mut left = incoming.len() as u64;
        while left > 0 {
            let batch = left.min(grain);
            c.gen_chunks.push(GenChunk {
                vertices: 0,
                edges: 0,
                msgs: batch,
            });
            left -= batch;
        }
        for (dst, msg) in incoming {
            c.bytes_gen += 4 + P::msg_bytes(&msg);
            self.mailboxes[dst as usize].lock().unwrap().push(msg);
        }
    }

    /// Fused process + update over non-empty mailboxes.
    fn process_update(&mut self, c: &mut StepCounters) {
        // Contention profile from mailbox sizes.
        let mut profile = InsertProfile::default();
        for &v in &self.owned {
            let len = self.mailboxes[v as usize].lock().unwrap().len() as u64;
            if len > 0 {
                profile.record(len);
                c.occupied_columns += 1;
            }
        }
        c.insert_profile = profile;

        let sched = ChunkScheduler::new(self.gen_ranges.len(), 1);
        let ranges = &self.gen_ranges;
        let (program, graph) = (self.program, self.graph);
        let owned = &self.owned;
        let mailboxes = &self.mailboxes;
        let vslice = crate::util::SharedSlice::new(&mut self.values);
        let fslice = crate::util::SharedSlice::new(self.active.flags_mut());
        let threads = if self.config.mode == ExecMode::Sequential {
            1
        } else {
            self.host_threads
        };
        let results = run_parallel_collect(threads, |_| {
            let mut out: Vec<ProcChunk> = Vec::new();
            let mut updated = 0u64;
            while let Some(batch) = sched.next_batch() {
                for ri in batch {
                    let mut chunk = ProcChunk::default();
                    for i in ranges[ri].clone() {
                        let v = owned[i];
                        let msgs = std::mem::take(&mut *mailboxes[v as usize].lock().unwrap());
                        if msgs.is_empty() {
                            continue;
                        }
                        chunk.msgs += msgs.len() as u64;
                        chunk.rows += msgs.len() as u64;
                        chunk.columns += 1;
                        // SAFETY: each vertex index is visited by one task.
                        let act = unsafe {
                            let val = vslice.get_mut(v as usize);
                            program.update(v, msgs, val, graph)
                        };
                        unsafe { fslice.write(v as usize, u8::from(act)) };
                        updated += 1;
                    }
                    out.push(chunk);
                }
            }
            (out, updated)
        });
        for (chunks, updated) in results {
            for chunk in &chunks {
                c.proc_msgs += chunk.msgs;
                c.proc_rows += chunk.rows;
            }
            c.updated_vertices += updated;
            c.proc_chunks.extend(chunks);
        }
        self.active.recount();
        c.next_active = self.active.count();
        c.bytes_proc = c.proc_msgs * OBJ_MSG_SIZE as u64;
        c.bytes_update = c.updated_vertices * std::mem::size_of::<P::Value>() as u64;
    }

    fn gen_mode(&self) -> GenMode {
        match self.config.mode {
            ExecMode::Sequential => GenMode::Sequential,
            ExecMode::Flat => GenMode::Flat,
            ExecMode::Locking => GenMode::Locking,
            ExecMode::Pipelined => {
                let (w, m) = self.config.pipeline_split(&self.spec);
                GenMode::Pipelined {
                    workers: w,
                    movers: m,
                }
            }
        }
    }
}

/// Run an object-message program on a single device.
pub fn run_obj_single<P: ObjVertexProgram>(
    program: &P,
    graph: &Csr,
    spec: DeviceSpec,
    config: &EngineConfig,
) -> RunOutput<P::Value> {
    let cost = CostModel::new(spec.clone());
    let mut engine = ObjEngine::new(program, graph, spec.clone(), config.clone(), 0, None);
    let cap = run_cap(program.max_supersteps(), config.max_supersteps);
    let wall_start = Instant::now();
    let mut steps = Vec::new();
    for step in 0.. {
        if step >= cap {
            break;
        }
        let t0 = Instant::now();
        let mut c = StepCounters::default();
        let remote = engine.generate(&mut c);
        debug_assert!(remote.is_empty());
        engine.process_update(&mut c);
        let mut times = cost.step_times(&c, engine.gen_mode(), OBJ_MSG_SIZE, false);
        // Object messages are processed by branch-heavy merge/sort code,
        // not lane reductions — recost that phase.
        times.total -= times.process;
        times.process = cost.obj_process_time(&c);
        times.total += times.process;
        let msgs = c.msgs_total();
        c.gen_chunks.clear();
        c.proc_chunks.clear();
        steps.push(StepReport {
            step,
            times,
            comm_time: 0.0,
            wall: t0.elapsed().as_secs_f64(),
            counters: c,
        });
        if msgs == 0 {
            break;
        }
    }
    let report = RunReport {
        app: P::NAME.to_string(),
        device: spec.name.to_string(),
        mode: config.mode.name().to_string(),
        steps,
        wall: wall_start.elapsed().as_secs_f64(),
        ..Default::default()
    };
    RunOutput {
        values: engine.values,
        device_reports: vec![report.clone()],
        report,
    }
}

/// Run an object-message program across both devices.
pub fn run_obj_hetero<P: ObjVertexProgram>(
    program: &P,
    graph: &Csr,
    partition: &phigraph_partition::DevicePartition,
    specs: [DeviceSpec; 2],
    configs: [EngineConfig; 2],
    link: PcieLink,
) -> RunOutput<P::Value> {
    let cap = run_cap(
        program.max_supersteps(),
        match (configs[0].max_supersteps, configs[1].max_supersteps) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        },
    );
    let (ep0, ep1) = duplex_pair::<(VertexId, P::Msg)>(link);
    let [spec0, spec1] = specs;
    let [config0, config1] = configs;
    let assign = &partition.assign;

    let (side0, side1) = std::thread::scope(|s| {
        let h0 = s.spawn(|| obj_device_loop(program, graph, assign, 0, spec0, config0, ep0, cap));
        let h1 = s.spawn(|| obj_device_loop(program, graph, assign, 1, spec1, config1, ep1, cap));
        (
            h0.join().expect("dev0 panicked"),
            h1.join().expect("dev1 panicked"),
        )
    });
    let (values0, r0) = side0;
    let (values1, r1) = side1;
    let mut values = values0;
    for (v, val) in values1.into_iter().enumerate() {
        if assign[v] == 1 {
            values[v] = val;
        }
    }
    let report = combine_hetero(P::NAME, &r0, &r1);
    RunOutput {
        values,
        report,
        device_reports: vec![r0, r1],
    }
}

#[allow(clippy::too_many_arguments)]
fn obj_device_loop<P: ObjVertexProgram>(
    program: &P,
    graph: &Csr,
    assign: &[u8],
    dev: u8,
    spec: DeviceSpec,
    config: EngineConfig,
    ep: Endpoint<(VertexId, P::Msg)>,
    cap: usize,
) -> (Vec<P::Value>, RunReport) {
    let cost = CostModel::new(spec.clone());
    let mut engine = ObjEngine::new(
        program,
        graph,
        spec.clone(),
        config.clone(),
        dev,
        Some(assign),
    );
    let wall_start = Instant::now();
    let mut steps = Vec::new();
    for step in 0.. {
        if step >= cap {
            break;
        }
        let t0 = Instant::now();
        let mut c = StepCounters::default();
        let mut remote = engine.generate(&mut c);
        c.remote_before_combine = remote.len() as u64;
        // Per-destination combine via the program hook.
        remote.sort_by_key(|&(d, _)| d);
        let mut combined: Vec<(VertexId, P::Msg)> = Vec::with_capacity(remote.len());
        let mut i = 0;
        while i < remote.len() {
            let dst = remote[i].0;
            let mut group = Vec::new();
            while i < remote.len() && remote[i].0 == dst {
                group.push(remote[i].1.clone());
                i += 1;
            }
            for m in program.combine_remote(dst, group) {
                combined.push((dst, m));
            }
        }
        c.remote_after_combine = combined.len() as u64;
        let bytes_out: u64 = combined.iter().map(|(_, m)| 4 + P::msg_bytes(m)).sum();
        let my_any = c.msgs_total() > 0;
        let (incoming, peer_any, xstats) = ep.exchange(combined, bytes_out, my_any);
        c.comm_bytes = xstats.bytes_sent + xstats.bytes_recv;
        engine.absorb_remote(incoming, &mut c);
        engine.process_update(&mut c);
        let mut times = cost.step_times(&c, engine.gen_mode(), OBJ_MSG_SIZE, false);
        times.total -= times.process;
        times.process = cost.obj_process_time(&c);
        times.total += times.process;
        c.gen_chunks.clear();
        c.proc_chunks.clear();
        steps.push(StepReport {
            step,
            times,
            comm_time: xstats.sim_time,
            wall: t0.elapsed().as_secs_f64(),
            counters: c,
        });
        if !my_any && !peer_any {
            break;
        }
    }
    let report = RunReport {
        app: P::NAME.to_string(),
        device: spec.name.to_string(),
        mode: "cpu-mic".to_string(),
        steps,
        wall: wall_start.elapsed().as_secs_f64(),
        ..Default::default()
    };
    (engine.values, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::small::chain;
    use phigraph_partition::{partition, PartitionScheme, Ratio};

    /// A toy object-message program: each vertex forwards a growing path
    /// list; value = longest path seen.
    struct PathRelay;
    impl ObjVertexProgram for PathRelay {
        type Msg = Vec<u32>;
        type Value = Vec<u32>;
        const NAME: &'static str = "relay";
        fn init(&self, v: VertexId, _g: &Csr) -> (Vec<u32>, bool) {
            (vec![v], v == 0)
        }
        fn generate(
            &self,
            v: VertexId,
            g: &Csr,
            values: &[Vec<u32>],
            send: &mut dyn FnMut(VertexId, Vec<u32>),
        ) {
            for &d in g.neighbors(v) {
                send(d, values[v as usize].clone());
            }
        }
        fn update(&self, v: VertexId, msgs: Vec<Vec<u32>>, value: &mut Vec<u32>, _g: &Csr) -> bool {
            let best = msgs.into_iter().max_by_key(|m| m.len()).unwrap();
            let mut path = best;
            path.push(v);
            if path.len() > value.len() {
                *value = path;
                true
            } else {
                false
            }
        }
        fn msg_bytes(msg: &Vec<u32>) -> u64 {
            4 * msg.len() as u64
        }
    }

    #[test]
    fn obj_single_builds_paths() {
        let g = chain(6);
        for config in [
            EngineConfig::locking(),
            EngineConfig::pipelined().with_host_threads(4),
            EngineConfig::flat(),
            EngineConfig::sequential(),
        ] {
            let out = run_obj_single(&PathRelay, &g, DeviceSpec::xeon_e5_2680(), &config);
            assert_eq!(
                out.values[5],
                vec![0, 1, 2, 3, 4, 5],
                "mode {:?}",
                config.mode
            );
        }
    }

    #[test]
    fn obj_hetero_matches_single() {
        let g = chain(12);
        let p = partition(&g, PartitionScheme::RoundRobin, Ratio::even(), 0);
        let single = run_obj_single(
            &PathRelay,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::locking(),
        );
        let hetero = run_obj_hetero(
            &PathRelay,
            &g,
            &p,
            [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
            [EngineConfig::locking(), EngineConfig::locking()],
            PcieLink::gen2_x16(),
        );
        assert_eq!(single.values, hetero.values);
        assert!(hetero.report.sim_comm() > 0.0);
    }
}
