//! Recovering single-device driver: barrier checkpointing, deterministic
//! fault injection, rollback/replay with bounded retries, and sequential
//! graceful degradation.
//!
//! The BSP structure makes fault tolerance cheap: the only live state at a
//! superstep barrier is the vertex values, the active flags, and the step
//! index — message buffers are rebuilt from scratch by
//! [`DeviceEngine::begin_step`] every superstep, so nothing mid-flight needs
//! saving. A snapshot is therefore a versioned, checksummed byte image of
//! exactly that state, written through a pluggable [`CheckpointStore`].
//!
//! Faults follow a *transient fail-stop* model: an injected fault (a dead
//! worker or mover, a poisoned insert) is detected at a phase boundary, the
//! dirty engine is discarded, and the run rolls back to the newest valid
//! checkpoint (corrupt snapshots are rejected by checksum and the previous
//! one is used). Replay is bounded by [`RecoveryPolicy::max_retries`] with
//! exponential backoff; past the budget the run degrades to the sequential
//! engine resumed from the last good barrier, so the computation still
//! finishes — slower, never wrong.

use crate::api::VertexProgram;
use crate::engine::config::{EngineConfig, ExecMode};
use crate::engine::device::DeviceEngine;
use crate::engine::flat::run_cap;
use crate::engine::integrity::{BarrierImage, IntegrityCtx};
use crate::engine::seq::run_seq_resume;
use crate::metrics::{RunOutput, RunReport, StepReport};
use phigraph_device::{CostModel, DeviceSpec, StepCounters};
use phigraph_graph::state::{decode_state_slice, encode_state_slice, PodState};
use phigraph_graph::Csr;
use phigraph_recover::{
    latest_valid_snapshot, CheckpointStore, FaultInjector, FaultKind, RecoveryPolicy,
    RecoveryStats, Snapshot,
};
use phigraph_simd::MsgValue;
use phigraph_trace::{HistKind, Phase, ThreadTracer};
use std::time::Instant;

/// A resume point decoded from a snapshot: next step, values, active flags.
type ResumePoint<V> = (usize, Vec<V>, Vec<u8>);

/// Validate a decoded snapshot against the program/graph and unpack it.
/// Mismatches (wrong app, wrong value width, wrong vertex count) are
/// counted as rejections, exactly like checksum failures: the snapshot
/// cannot seed this run.
fn decode_resume<P: VertexProgram>(
    snap: &Snapshot,
    n: usize,
    stats: &mut RecoveryStats,
) -> Option<ResumePoint<P::Value>>
where
    P::Value: PodState,
{
    if snap.app != P::NAME
        || snap.value_size as usize != P::Value::STATE_SIZE
        || snap.active.len() != n
    {
        stats.corrupt_snapshots_rejected += 1;
        return None;
    }
    match decode_state_slice::<P::Value>(&snap.values, n) {
        Some(values) => Some((snap.superstep as usize, values, snap.active.clone())),
        None => {
            stats.corrupt_snapshots_rejected += 1;
            None
        }
    }
}

/// Load the newest store snapshot that validates for this program.
fn load_resume<P: VertexProgram>(
    store: &dyn CheckpointStore,
    n: usize,
    stats: &mut RecoveryStats,
) -> Option<ResumePoint<P::Value>>
where
    P::Value: PodState,
{
    let snap = latest_valid_snapshot(store, stats)?;
    decode_resume::<P>(&snap, n, stats)
}

/// Execute one superstep's phases with the defined injection sites. A
/// returned `Err` is a detected fail-stop (or an SDC that rung-1 healing
/// could not contain): the step's partial work must be discarded and the
/// engine considered dirty.
///
/// The silent-corruption sites (`BitFlipState`, `BitFlipMessage`) fire
/// whether or not integrity checking is on — with it off the damage
/// propagates undetected, which is exactly the failure mode the detection
/// lattice exists to close. With `integrity full` the state digest audit
/// heals rotted barrier state group-granularly, and the message checksum
/// audit quarantines and *regenerates* just the corrupted vertex groups
/// (rung 1) instead of rolling the run back.
#[allow(clippy::too_many_arguments)]
fn execute_step<P: VertexProgram>(
    engine: &mut DeviceEngine<'_, P>,
    c: &mut StepCounters,
    injector: Option<&FaultInjector>,
    step: u64,
    tracer: &ThreadTracer,
    integ: &mut IntegrityCtx,
    image: Option<&BarrierImage<P::Value>>,
    stats: &mut RecoveryStats,
) -> Result<(), FaultKind>
where
    P::Value: PodState,
{
    let fires = |k: FaultKind| injector.is_some_and(|i| i.fire(step, k, 0));
    // SDC site A: a bit of barrier state rots silently between barriers.
    if fires(FaultKind::BitFlipState) && engine.flip_state_bit(step ^ 0x5DC1_57A7).is_some() {
        stats.faults_injected += 1;
        c.faults_injected += 1;
    }
    // State digest audit (every step in full mode, scrub boundaries
    // otherwise). Rung 1: heal rotted groups straight from the image.
    if let Some(img) = image {
        if integ.audits_state(step as usize) {
            integ.stats.state_checks += 1;
            if integ.is_scrub_step(step as usize) {
                integ.stats.scrub_passes += 1;
            }
            let bad = img.audit_state(engine);
            if !bad.is_empty() {
                integ.stats.state_detections += bad.len() as u64;
                integ.stats.quarantined_groups += bad.len() as u64;
                engine.heal_state_groups(&bad, &img.values, &img.flags);
                if img.audit_state(engine).is_empty() {
                    integ.stats.group_heals += bad.len() as u64;
                } else {
                    // The image itself cannot reproduce its own digest:
                    // escalate to rollback.
                    return Err(FaultKind::BitFlipState);
                }
            }
        }
    }
    // Site 1: a worker thread dies during generation (detected at join).
    if fires(FaultKind::KillWorker) {
        return Err(FaultKind::KillWorker);
    }
    let remote = {
        let _g = tracer.span(Phase::Generate, step as u32);
        engine.generate(c)
    };
    debug_assert!(
        remote.is_empty(),
        "single-device recoverable run produced remote messages"
    );
    // SDC site B: a buffered message bit flips inside the CSB.
    if fires(FaultKind::BitFlipMessage) && engine.corrupt_message_cell(step ^ 0x0B17_F117).is_some()
    {
        stats.faults_injected += 1;
        c.faults_injected += 1;
    }
    // Site 2: a mover dies while draining its SPSC queues.
    if fires(FaultKind::KillMover) {
        return Err(FaultKind::KillMover);
    }
    engine.finalize_insertion_stats(c);
    // Site 3: a poisoned CSB insert surfaces at stat finalization.
    if fires(FaultKind::PoisonInsert) {
        return Err(FaultKind::PoisonInsert);
    }
    // Group checksum audit between the insert barrier and processing.
    // Rung 1: quarantine mismatched groups and regenerate only them.
    if integ.audits_messages() {
        if let Some(img) = image {
            integ.stats.group_checks += 1;
            let bad = engine.audit_message_groups();
            if !bad.is_empty() {
                integ.stats.group_detections += bad.len() as u64;
                integ.stats.quarantined_groups += bad.len() as u64;
                engine.reset_message_groups(&bad);
                engine.regenerate_groups(&bad, &img.values, &img.flags);
                engine.finalize_insertion_stats(c);
                if engine.audit_message_groups().is_empty() {
                    integ.stats.group_heals += bad.len() as u64;
                } else {
                    // Regeneration could not reproduce the checksums:
                    // escalate to rollback.
                    return Err(FaultKind::BitFlipMessage);
                }
            }
        }
    }
    {
        let _p = tracer.span(Phase::Process, step as u32);
        engine.process(c);
    }
    {
        let _u = tracer.span(Phase::Update, step as u32);
        engine.update(c);
    }
    Ok(())
}

/// Encode and persist a barrier snapshot for `next_step`. The
/// `CorruptCheckpoint` fault flips payload bytes *after* encoding (the
/// write path breaks, not the engine), so the damage is only discovered by
/// the checksum when recovery later tries to read the snapshot back.
#[allow(clippy::too_many_arguments)]
fn write_checkpoint<P: VertexProgram>(
    engine: &DeviceEngine<'_, P>,
    next_step: u64,
    step: u64,
    store: &mut dyn CheckpointStore,
    policy: &RecoveryPolicy,
    injector: Option<&FaultInjector>,
    stats: &mut RecoveryStats,
    c: &mut StepCounters,
) where
    P::Value: PodState,
{
    let snap = Snapshot {
        superstep: next_step,
        app: P::NAME.to_string(),
        value_size: P::Value::STATE_SIZE as u16,
        values: encode_state_slice(&engine.values),
        active: engine.active_flags().to_vec(),
    };
    let mut bytes = snap.encode();
    if injector.is_some_and(|i| i.fire(step, FaultKind::CorruptCheckpoint, 0)) {
        // Smear a couple of payload bytes; the trailing FNV checksum will
        // reject the snapshot at recovery time.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let last = bytes.len() - 1;
        bytes[last] ^= 0xAA;
        stats.faults_injected += 1;
        c.faults_injected += 1;
    }
    if store.save(next_step, &bytes).is_ok() {
        stats.checkpoints_written += 1;
        stats.checkpoint_bytes += bytes.len() as u64;
        c.checkpoints_written += 1;
        c.checkpoint_bytes += bytes.len() as u64;
        // Bounded storage: drop the oldest snapshots past the keep window.
        if policy.keep_snapshots > 0 {
            let _ = store.retain_newest(policy.keep_snapshots);
        }
    }
    // A failed save is not fatal: the run continues, protected by the
    // previous checkpoint.
}

/// Run `program` on a single device with checkpointing and recovery.
///
/// Behaves like [`run_single`] for the framework modes, plus:
///
/// * every [`RecoveryPolicy::checkpoint_every`] supersteps the barrier
///   state is snapshotted into `store`;
/// * faults from [`EngineConfig::fault_plan`] fire at their injection
///   sites; each detected fault rolls the run back to the newest valid
///   checkpoint and replays (bounded retries, exponential backoff);
/// * after the retry budget the run degrades to the sequential engine from
///   the last good barrier ([`RecoveryStats::degraded`]);
/// * with `resume = true`, the run starts from the newest valid snapshot
///   already in `store` instead of from `init` (the CLI's `--resume`).
///
/// All recovery events are surfaced in [`RunReport::recovery`] and the
/// per-step checkpoint counters.
///
/// [`run_single`]: crate::engine::run_single
pub fn run_recoverable<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    spec: DeviceSpec,
    config: &EngineConfig,
    store: &mut dyn CheckpointStore,
    resume: bool,
) -> RunOutput<P::Value>
where
    P::Value: PodState,
{
    assert!(
        matches!(config.mode, ExecMode::Locking | ExecMode::Pipelined),
        "the recovering driver runs the framework modes; use run_single for flat/seq"
    );
    let n = graph.num_vertices();
    let cap = run_cap(program.max_supersteps(), config.max_supersteps);
    let cost = CostModel::new(spec.clone());
    let policy = config.recovery;
    let injector = config.fault_plan.clone();
    let mut stats = RecoveryStats::default();
    let mut integ = IntegrityCtx::new(config);

    let mut resume_state: Option<ResumePoint<P::Value>> = if resume {
        load_resume::<P>(store, n, &mut stats)
    } else {
        None
    };

    let tracer = config.tracer("dev0", 0);
    let wall_start = Instant::now();
    let mut steps: Vec<StepReport> = Vec::new();
    let mut retry: u32 = 0;
    let mut final_values: Option<Vec<P::Value>> = None;

    'attempt: while final_values.is_none() {
        let mut engine = DeviceEngine::new(program, graph, spec.clone(), config.clone(), 0, None);
        let start_step = match resume_state.take() {
            Some((step, vals, flags)) => {
                engine.restore(vals, &flags);
                step
            }
            None => 0,
        };
        // Drop step reports past the rollback point (replayed steps get
        // fresh reports).
        steps.retain(|s| s.step < start_step);
        // Arm the CSB checksums and take the first barrier image.
        if integ.audits_messages() {
            engine.set_integrity_audit(true);
        }
        let mut image: Option<BarrierImage<P::Value>> = if integ.needs_image() {
            Some(BarrierImage::capture(&engine))
        } else {
            None
        };

        for step in start_step..cap {
            let t0 = Instant::now();
            let _step_span = tracer.span(Phase::Superstep, step as u32);
            let mut c = engine.begin_step();
            let mut step_err = execute_step(
                &mut engine,
                &mut c,
                injector.as_ref(),
                step as u64,
                &tracer,
                &mut integ,
                image.as_ref(),
                &mut stats,
            )
            .err();
            // App invariant audit (the semantic safety net). A violation is
            // rung 2: restore the barrier image and replay the whole step
            // once. A bit-identical replay means the invariant fired on
            // clean data (false positive) and the result is accepted; a
            // persistent violation after a differing replay escalates to
            // rollback.
            if step_err.is_none() {
                if let Some(img) = &image {
                    if integ.audits_app(step) {
                        integ.stats.audits_run += 1;
                        let stride = integ.app_stride(step);
                        if program
                            .audit_step(step, &img.values, &engine.values, stride)
                            .is_some()
                        {
                            integ.stats.audit_violations += 1;
                            integ.stats.step_replays += 1;
                            let suspect = encode_state_slice(&engine.values);
                            engine.restore(img.values.clone(), &img.flags);
                            c = engine.begin_step();
                            step_err = execute_step(
                                &mut engine,
                                &mut c,
                                injector.as_ref(),
                                step as u64,
                                &tracer,
                                &mut integ,
                                image.as_ref(),
                                &mut stats,
                            )
                            .err();
                            if step_err.is_none() {
                                let replayed = encode_state_slice(&engine.values);
                                if replayed == suspect {
                                    // The recompute confirms the state: the
                                    // alarm was spurious.
                                    integ.stats.false_positive_audits += 1;
                                } else if program
                                    .audit_step(step, &img.values, &engine.values, stride)
                                    .is_some()
                                {
                                    step_err = Some(FaultKind::BitFlipState);
                                }
                            }
                        }
                    }
                }
            }
            if step_err.is_some() {
                stats.faults_injected += 1;
                stats.rollbacks += 1;
                if retry >= policy.max_retries {
                    // Retry budget exhausted: graceful degradation. Replay
                    // the rest sequentially from the last good barrier.
                    stats.degraded = true;
                    let seq_resume = load_resume::<P>(store, n, &mut stats);
                    let seq_start = seq_resume.as_ref().map_or(0, |(s, _, _)| *s);
                    let seq_out = run_seq_resume(program, graph, spec.clone(), config, seq_resume);
                    steps.retain(|s| s.step < seq_start);
                    steps.extend(seq_out.report.steps);
                    final_values = Some(seq_out.values);
                    continue 'attempt;
                }
                retry += 1;
                stats.retries += 1;
                let backoff = policy.backoff_ms(retry - 1);
                if backoff > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(backoff));
                }
                // Roll back: newest valid snapshot, or superstep 0 when no
                // checkpoint survives.
                resume_state = load_resume::<P>(store, n, &mut stats);
                continue 'attempt;
            }

            let vectorized = config.vectorized && P::SIMD_REDUCIBLE;
            let times = cost.step_times(&c, config.gen_mode(&spec), P::Msg::SIZE, vectorized);
            let msgs = c.msgs_total();
            // The barrier after `update` is the consistency point: snapshot
            // the state that step `step + 1` will start from.
            if policy.is_checkpoint_step(step as u64 + 1) {
                let ck0 = Instant::now();
                let _ck = tracer.span(Phase::Checkpoint, step as u32);
                write_checkpoint(
                    &engine,
                    step as u64 + 1,
                    step as u64,
                    store,
                    &policy,
                    injector.as_ref(),
                    &mut stats,
                    &mut c,
                );
                config.record_hist(
                    HistKind::CheckpointWriteUs,
                    ck0.elapsed().as_micros() as u64,
                );
            }
            c.gen_chunks.clear();
            c.proc_chunks.clear();
            steps.push(StepReport {
                step,
                times,
                comm_time: 0.0,
                wall: t0.elapsed().as_secs_f64(),
                counters: c,
            });
            // The barrier after update is the next step's reference state.
            if let Some(img) = image.as_mut() {
                *img = BarrierImage::capture(&engine);
            }
            if msgs == 0 {
                break;
            }
        }
        final_values = Some(engine.values);
    }

    let report = RunReport {
        app: P::NAME.to_string(),
        device: spec.name.to_string(),
        mode: config.mode.name().to_string(),
        steps,
        wall: wall_start.elapsed().as_secs_f64(),
        recovery: stats,
        integrity: integ.stats,
        ..Default::default()
    };
    RunOutput {
        values: final_values.expect("attempt loop always produces values"),
        device_reports: vec![report.clone()],
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{GenContext, MsgSink};
    use crate::engine::run_single;
    use phigraph_graph::generators::small::chain;
    use phigraph_graph::VertexId;
    use phigraph_recover::{FaultPlan, MemStore};
    use phigraph_simd::Min;

    struct Sssp;
    impl VertexProgram for Sssp {
        type Msg = f32;
        type Reduce = Min;
        type Value = f32;
        const NAME: &'static str = "sssp";
        fn init(&self, v: VertexId, _g: &Csr) -> (f32, bool) {
            if v == 0 {
                (0.0, true)
            } else {
                (f32::INFINITY, false)
            }
        }
        fn generate<S: MsgSink<f32>>(&self, v: VertexId, ctx: &mut GenContext<'_, f32, S>) {
            let my = *ctx.value(v);
            for e in ctx.graph.edge_range(v) {
                ctx.send(ctx.graph.targets[e], my + ctx.graph.weight(e));
            }
        }
        fn update(&self, _v: VertexId, msg: f32, value: &mut f32, _g: &Csr) -> bool {
            if msg < *value {
                *value = msg;
                true
            } else {
                false
            }
        }
    }

    fn cfg() -> EngineConfig {
        EngineConfig::locking()
            .with_checkpoint_every(2)
            .with_backoff_ms(0)
    }

    #[test]
    fn fault_free_recoverable_matches_plain_run() {
        let g = chain(20);
        let spec = DeviceSpec::xeon_e5_2680();
        let plain = run_single(&Sssp, &g, spec.clone(), &EngineConfig::locking());
        let mut store = MemStore::new();
        let out = run_recoverable(&Sssp, &g, spec, &cfg(), &mut store, false);
        assert_eq!(out.values, plain.values);
        assert!(out.report.recovery.checkpoints_written > 0);
        assert_eq!(out.report.recovery.rollbacks, 0);
        assert_eq!(
            out.report.total_checkpoints(),
            out.report.recovery.checkpoints_written
        );
        // Bounded storage: the keep window holds.
        assert!(store.list().len() <= cfg().recovery.keep_snapshots);
    }

    #[test]
    fn kill_worker_rolls_back_and_replays_identically() {
        let g = chain(20);
        let spec = DeviceSpec::xeon_e5_2680();
        let clean = run_single(&Sssp, &g, spec.clone(), &EngineConfig::locking());
        for kind in [
            FaultKind::KillWorker,
            FaultKind::KillMover,
            FaultKind::PoisonInsert,
        ] {
            let plan = FaultPlan::single(7, kind);
            let config = cfg().with_fault_plan(plan.injector());
            let mut store = MemStore::new();
            let out = run_recoverable(&Sssp, &g, spec.clone(), &config, &mut store, false);
            assert_eq!(out.values, clean.values, "bit-identical after {kind:?}");
            assert_eq!(out.report.recovery.rollbacks, 1);
            assert_eq!(out.report.recovery.retries, 1);
            assert_eq!(out.report.recovery.faults_injected, 1);
            assert!(!out.report.recovery.degraded);
            // Replayed steps get fresh reports: indices stay monotone.
            for w in out.report.steps.windows(2) {
                assert_eq!(w[1].step, w[0].step + 1);
            }
        }
    }

    #[test]
    fn fault_before_first_checkpoint_restarts_from_scratch() {
        let g = chain(12);
        let spec = DeviceSpec::xeon_e5_2680();
        let plan = FaultPlan::single(0, FaultKind::KillWorker);
        let config = cfg().with_fault_plan(plan.injector());
        let mut store = MemStore::new();
        let out = run_recoverable(&Sssp, &g, spec, &config, &mut store, false);
        for v in 0..12 {
            assert_eq!(out.values[v], v as f32);
        }
        assert_eq!(out.report.recovery.rollbacks, 1);
        assert_eq!(out.report.steps[0].step, 0);
    }

    #[test]
    fn corrupt_checkpoint_is_rejected_for_previous_valid_one() {
        let g = chain(20);
        let spec = DeviceSpec::xeon_e5_2680();
        let clean = run_single(&Sssp, &g, spec.clone(), &EngineConfig::locking());
        // checkpoint_every=2 writes snapshot 4 during step 3 — corrupt it,
        // then kill a worker at step 5: recovery must reject snapshot 4 by
        // checksum and roll back to snapshot 2.
        let plan = FaultPlan::new()
            .with(3, FaultKind::CorruptCheckpoint, 0)
            .with(5, FaultKind::KillWorker, 0);
        let config = cfg().with_fault_plan(plan.injector());
        let mut store = MemStore::new();
        let out = run_recoverable(&Sssp, &g, spec, &config, &mut store, false);
        assert_eq!(out.values, clean.values);
        assert_eq!(out.report.recovery.corrupt_snapshots_rejected, 1);
        assert_eq!(out.report.recovery.rollbacks, 1);
        assert_eq!(out.report.recovery.faults_injected, 2);
    }

    #[test]
    fn degrades_to_sequential_after_retry_budget() {
        let g = chain(20);
        let spec = DeviceSpec::xeon_e5_2680();
        let clean = run_single(&Sssp, &g, spec.clone(), &EngineConfig::locking());
        // Three distinct faults with a budget of one retry: the second
        // replay attempt's fault exhausts the budget mid-run.
        let plan = FaultPlan::new()
            .with(3, FaultKind::KillWorker, 0)
            .with(5, FaultKind::KillMover, 0)
            .with(7, FaultKind::PoisonInsert, 0);
        let config = cfg().with_fault_plan(plan.injector()).with_max_retries(1);
        let mut store = MemStore::new();
        let out = run_recoverable(&Sssp, &g, spec, &config, &mut store, false);
        assert_eq!(out.values, clean.values, "degraded run still correct");
        assert!(out.report.recovery.degraded);
        assert_eq!(out.report.recovery.retries, 1);
        assert!(out.report.summary().contains("DEGRADED->seq"));
        for w in out.report.steps.windows(2) {
            assert_eq!(w[1].step, w[0].step + 1);
        }
    }

    #[test]
    fn resume_continues_from_stored_snapshot() {
        let g = chain(12);
        let spec = DeviceSpec::xeon_e5_2680();
        let mut store = MemStore::new();
        // Phase 1: run the first 5 supersteps, checkpointing every step.
        let phase1 = EngineConfig::locking()
            .with_checkpoint_every(1)
            .with_max_supersteps(5);
        let _ = run_recoverable(&Sssp, &g, spec.clone(), &phase1, &mut store, false);
        assert!(store.list().contains(&5));
        // Phase 2: resume and finish.
        let out = run_recoverable(
            &Sssp,
            &g,
            spec,
            &EngineConfig::locking().with_checkpoint_every(1),
            &mut store,
            true,
        );
        assert_eq!(out.report.steps[0].step, 5, "resumed at the snapshot");
        for v in 0..12 {
            assert_eq!(out.values[v], v as f32);
        }
    }

    #[test]
    fn resume_rejects_snapshots_from_another_app() {
        let g = chain(6);
        let spec = DeviceSpec::xeon_e5_2680();
        let mut store = MemStore::new();
        let snap = Snapshot {
            superstep: 4,
            app: "pagerank".to_string(),
            value_size: 4,
            values: vec![0u8; 6 * 4],
            active: vec![0u8; 6],
        };
        store.save(4, &snap.encode()).unwrap();
        let out = run_recoverable(
            &Sssp,
            &g,
            spec,
            &EngineConfig::locking().with_checkpoint_every(0),
            &mut store,
            true,
        );
        // Mismatched app snapshot is rejected; the run starts fresh.
        assert_eq!(out.report.steps[0].step, 0);
        assert_eq!(out.report.recovery.corrupt_snapshots_rejected, 1);
        for v in 0..6 {
            assert_eq!(out.values[v], v as f32);
        }
    }

    #[test]
    fn pipelined_mode_recovers_too() {
        let g = chain(16);
        let spec = DeviceSpec::xeon_e5_2680();
        let clean = run_single(&Sssp, &g, spec.clone(), &EngineConfig::locking());
        let plan = FaultPlan::single(4, FaultKind::KillMover);
        let config = EngineConfig::pipelined()
            .with_host_threads(4)
            .with_checkpoint_every(2)
            .with_backoff_ms(0)
            .with_fault_plan(plan.injector());
        let mut store = MemStore::new();
        let out = run_recoverable(&Sssp, &g, spec, &config, &mut store, false);
        assert_eq!(out.values, clean.values);
        assert_eq!(out.report.recovery.rollbacks, 1);
        assert_eq!(out.report.mode, "pipe");
    }
}
