//! Sequential reference engine (Table II baselines: "written in C/C++ and
//! executed by one core" — here the same program run by one thread with a
//! plain mailbox array, no buffers, no locks).

use crate::active::ActiveSet;
use crate::api::{GenContext, MsgSink, VertexProgram};
use crate::metrics::{RunOutput, RunReport, StepReport};
use phigraph_device::cost::GenMode;
use phigraph_device::{CostModel, DeviceSpec, StepCounters};
use phigraph_graph::{Csr, VertexId};
use phigraph_simd::{MsgValue, ReduceOp};
use phigraph_trace::Phase;
use std::time::Instant;

use super::config::EngineConfig;
use super::flat::run_cap;

struct SeqSink<'a, T: MsgValue> {
    acc: &'a mut [T],
    counts: &'a mut [u32],
    combine: fn(T, T) -> T,
}

impl<'a, T: MsgValue> MsgSink<T> for SeqSink<'a, T> {
    #[inline]
    fn send(&mut self, dst: VertexId, msg: T) {
        let d = dst as usize;
        self.acc[d] = if self.counts[d] == 0 {
            msg
        } else {
            (self.combine)(self.acc[d], msg)
        };
        self.counts[d] += 1;
    }
}

/// Run a program to completion on one simulated core.
pub fn run_seq<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    spec: DeviceSpec,
    config: &EngineConfig,
) -> RunOutput<P::Value> {
    run_seq_resume(program, graph, spec, config, None)
}

/// [`run_seq`] with an optional resume point: `(next_step, values, active
/// flags)` captured at a superstep barrier. The recovering drivers use this
/// for graceful degradation — after the retry budget is exhausted they
/// restart sequentially from the last valid checkpoint instead of from
/// scratch. Step reports are numbered from `next_step` so spliced run
/// reports stay monotone.
pub fn run_seq_resume<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    spec: DeviceSpec,
    config: &EngineConfig,
    resume: Option<(usize, Vec<P::Value>, Vec<u8>)>,
) -> RunOutput<P::Value> {
    if P::ALWAYS_ACTIVE {
        assert!(
            program.max_supersteps().is_some() || config.max_supersteps.is_some(),
            "ALWAYS_ACTIVE programs must bound their supersteps"
        );
    }
    let n = graph.num_vertices();
    let seq_spec = spec.sequential();
    let cost = CostModel::new(seq_spec.clone());
    let (start_step, mut values, mut active) = match resume {
        Some((step, vals, flags)) => {
            assert_eq!(vals.len(), n, "resume value snapshot size mismatch");
            let mut active = ActiveSet::new(n);
            active.restore_flags(&flags);
            (step, vals, active)
        }
        None => {
            let mut values = vec![P::Value::default(); n];
            let mut active = ActiveSet::new(n);
            for v in 0..n as VertexId {
                let (val, act) = program.init(v, graph);
                values[v as usize] = val;
                active.set(v, act);
            }
            (0, values, active)
        }
    };
    let mut acc: Vec<P::Msg> = vec![P::Msg::ZERO; n];
    let mut counts: Vec<u32> = vec![0; n];

    let cap = run_cap(program.max_supersteps(), config.max_supersteps);
    let tracer = config.tracer("seq", 0);
    let wall_start = Instant::now();
    let mut steps: Vec<StepReport> = Vec::new();

    for step in start_step.. {
        if step >= cap || config.cancelled() {
            break;
        }
        let t0 = Instant::now();
        let _step_span = tracer.span(Phase::Superstep, step as u32);
        let mut c = StepCounters::default();
        counts.fill(0);

        // Generation into the mailbox (reduction applied on arrival).
        {
            let _g = tracer.span(Phase::Generate, step as u32);
            let mut sink = SeqSink {
                acc: &mut acc,
                counts: &mut counts,
                combine: P::Reduce::apply,
            };
            let mut ctx = GenContext::new(graph, &values, &mut sink);
            for v in 0..n as VertexId {
                if active.is_active(v) {
                    c.active_vertices += 1;
                    c.gen_edges += graph.out_degree(v) as u64;
                    program.generate(v, &mut ctx);
                }
            }
            c.msgs_local = ctx.sent;
        }
        if P::HAS_POST_GENERATE {
            for v in 0..n as VertexId {
                if active.is_active(v) {
                    program.post_generate(v, &mut values[v as usize]);
                }
            }
        }
        active.clear();
        c.proc_msgs = c.msgs_local;
        c.bytes_gen = c.gen_edges * 8 + c.msgs_local * (4 + P::Msg::SIZE as u64);
        c.bytes_proc = c.msgs_local * P::Msg::SIZE as u64;

        // Update pass.
        {
            let _u = tracer.span(Phase::Update, step as u32);
            for v in 0..n {
                if counts[v] > 0 {
                    let act = program.update(v as VertexId, acc[v], &mut values[v], graph);
                    active.set(v as VertexId, act);
                    c.updated_vertices += 1;
                }
            }
        }
        if P::ALWAYS_ACTIVE {
            let all: Vec<VertexId> = (0..n as VertexId).collect();
            active.activate_all(&all);
        }
        c.next_active = active.count();
        c.bytes_update = c.updated_vertices * (std::mem::size_of::<P::Value>() as u64 + 1);

        let times = cost.step_times(&c, GenMode::Sequential, P::Msg::SIZE, false);
        let msgs = c.msgs_total();
        steps.push(StepReport {
            step,
            times,
            comm_time: 0.0,
            wall: t0.elapsed().as_secs_f64(),
            counters: c,
        });
        if msgs == 0 {
            break;
        }
    }

    let report = RunReport {
        app: P::NAME.to_string(),
        device: seq_spec.name.to_string(),
        mode: "seq".to_string(),
        steps,
        wall: wall_start.elapsed().as_secs_f64(),
        ..Default::default()
    };
    RunOutput {
        values,
        device_reports: vec![report.clone()],
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::small::{chain, weighted_diamond};
    use phigraph_simd::Min;

    struct Sssp;
    impl VertexProgram for Sssp {
        type Msg = f32;
        type Reduce = Min;
        type Value = f32;
        const NAME: &'static str = "sssp";
        fn init(&self, v: VertexId, _g: &Csr) -> (f32, bool) {
            if v == 0 {
                (0.0, true)
            } else {
                (f32::INFINITY, false)
            }
        }
        fn generate<S: MsgSink<f32>>(&self, v: VertexId, ctx: &mut GenContext<'_, f32, S>) {
            let my = *ctx.value(v);
            for e in ctx.graph.edge_range(v) {
                ctx.send(ctx.graph.targets[e], my + ctx.graph.weight(e));
            }
        }
        fn update(&self, _v: VertexId, msg: f32, value: &mut f32, _g: &Csr) -> bool {
            if msg < *value {
                *value = msg;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn seq_sssp_diamond() {
        let g = weighted_diamond();
        let out = run_seq(
            &Sssp,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::sequential(),
        );
        assert_eq!(out.values, vec![0.0, 1.0, 5.0, 2.0]);
    }

    #[test]
    fn seq_resume_from_initial_state_matches_fresh_run() {
        let g = weighted_diamond();
        let cfg = EngineConfig::sequential();
        let fresh = run_seq(&Sssp, &g, DeviceSpec::xeon_e5_2680(), &cfg);
        let vals = vec![0.0, f32::INFINITY, f32::INFINITY, f32::INFINITY];
        let flags = vec![1u8, 0, 0, 0];
        let resumed = run_seq_resume(
            &Sssp,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &cfg,
            Some((0, vals, flags)),
        );
        assert_eq!(resumed.values, fresh.values);
        assert_eq!(resumed.report.supersteps(), fresh.report.supersteps());
    }

    #[test]
    fn seq_resume_numbers_steps_from_resume_point() {
        let g = chain(5);
        // Barrier state after superstep 2 of SSSP on the chain: wavefront
        // sits at vertex 2.
        let vals = vec![0.0, 1.0, 2.0, f32::INFINITY, f32::INFINITY];
        let flags = vec![0u8, 0, 1, 0, 0];
        let out = run_seq_resume(
            &Sssp,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::sequential(),
            Some((2, vals, flags)),
        );
        assert_eq!(out.values, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(out.report.steps[0].step, 2);
    }

    #[test]
    fn seq_mic_is_slower_than_seq_cpu() {
        // Table II: "a CPU core runs the same sequential code around 11x
        // faster" — the simulated times must reflect it.
        let g = chain(500);
        let cpu = run_seq(
            &Sssp,
            &g,
            DeviceSpec::xeon_e5_2680(),
            &EngineConfig::sequential(),
        );
        let mic = run_seq(
            &Sssp,
            &g,
            DeviceSpec::xeon_phi_se10p(),
            &EngineConfig::sequential(),
        );
        assert_eq!(cpu.values, mic.values);
        let ratio = mic.report.sim_total() / cpu.report.sim_total();
        assert!(
            (6.0..16.0).contains(&ratio),
            "MIC/CPU sequential ratio {ratio} should be ~11"
        );
    }
}
