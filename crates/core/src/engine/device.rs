//! The CSB-based device engine: locking and pipelined message generation,
//! SIMD message processing, vertex updating (§IV.A–IV.D).
//!
//! One `DeviceEngine` instance runs the paper's superstep on one device. It
//! executes with real host threads (results are genuinely computed; all
//! concurrent paths are exercised) and records the event counters the cost
//! model converts into simulated device time. The phase methods are public
//! so the heterogeneous driver can interleave the remote exchange between
//! generation and processing, exactly where the paper's workflow places it.

use crate::active::ActiveSet;
use crate::api::{GenContext, MsgSink, VertexProgram};
use crate::csb::{Csb, CsbLayout};
use crate::engine::config::{EngineConfig, ExecMode};
use crate::queues::QueueMatrix;
use crate::util::SharedSlice;
use phigraph_comm::WireMsg;
use phigraph_device::counters::GenChunk;
use phigraph_device::pool::{run_parallel, run_parallel_collect};
use phigraph_device::{ChunkScheduler, DeviceSpec, StepCounters};
use phigraph_graph::{Csr, VertexId};
use phigraph_simd::MsgValue;
use phigraph_trace::{HistKind, Phase, ThreadTracer, Trace};

/// Bytes read per traversed edge during generation (target id + weight).
const EDGE_BYTES: u64 = 8;
/// Effective bytes per locally inserted message: the destination column
/// cell is a random cache line, so a full line moves per insertion.
const MSG_LINE_BYTES: u64 = 64;

/// Sink for the locking engine: insert local messages directly into the
/// CSB (atomic column cursors standing in for per-column locks), buffer
/// remote ones.
struct LockingSink<'a, T: MsgValue> {
    csb: &'a Csb<T>,
    assign: Option<&'a [u8]>,
    dev: u8,
    remote: Vec<WireMsg<T>>,
    local: u64,
}

impl<'a, T: MsgValue> MsgSink<T> for LockingSink<'a, T> {
    #[inline(always)]
    fn send(&mut self, dst: VertexId, msg: T) {
        let local = self.assign.is_none_or(|a| a[dst as usize] == self.dev);
        if local {
            self.csb.insert(dst, msg);
            self.local += 1;
        } else {
            self.remote.push(WireMsg { dst, value: msg });
        }
    }
}

/// Sink for the pipelined engine's worker threads: messages are staged in
/// per-mover thread-local buffers (routed by `dst mod movers`) and flushed
/// into the corresponding SPSC queue as one [`push_slice`] batch when the
/// buffer reaches `batch` — one Release publish and one consumer-head probe
/// per batch instead of per message.
///
/// [`push_slice`]: crate::queues::SpscQueue::push_slice
struct BatchedPipeSink<'a, T: MsgValue> {
    queues: &'a QueueMatrix<(VertexId, T)>,
    worker: usize,
    /// Flush threshold per (worker, mover) buffer.
    batch: usize,
    /// One staging buffer per mover.
    bufs: Vec<Vec<(VertexId, T)>>,
    /// Full-queue spin iterations observed while flushing (backpressure).
    spins: u64,
    /// Batches flushed.
    flushes: u64,
    /// Messages carried inside those batches.
    batched: u64,
    /// Structured tracing sink (`None` skips every recording site).
    trace: Option<&'a Trace>,
    /// This worker's tracer ("devN/worker-W" track).
    tracer: &'a ThreadTracer,
    /// Superstep the spans/histograms attribute to.
    step: u32,
}

impl<'a, T: MsgValue> BatchedPipeSink<'a, T> {
    fn new(
        queues: &'a QueueMatrix<(VertexId, T)>,
        worker: usize,
        batch: usize,
        trace: Option<&'a Trace>,
        tracer: &'a ThreadTracer,
        step: u32,
    ) -> Self {
        let batch = batch.clamp(1, queues.cap);
        BatchedPipeSink {
            queues,
            worker,
            batch,
            bufs: (0..queues.movers)
                .map(|_| Vec::with_capacity(batch))
                .collect(),
            spins: 0,
            flushes: 0,
            batched: 0,
            trace,
            tracer,
            step,
        }
    }

    #[inline]
    fn flush(&mut self, mover: usize) {
        let buf = &mut self.bufs[mover];
        if buf.is_empty() {
            return;
        }
        let _f = self.tracer.span(Phase::Flush, self.step);
        // SAFETY: queue (worker, mover) has this worker thread as its only
        // producer.
        self.spins += unsafe { self.queues.queue(self.worker, mover).push_slice(buf) };
        self.flushes += 1;
        self.batched += buf.len() as u64;
        if let Some(t) = self.trace {
            t.record_hist(HistKind::FlushBatch, buf.len() as u64);
        }
        buf.clear();
    }

    /// Flush every residual buffer (end of the worker's generation loop,
    /// before closing its queues).
    fn flush_all(&mut self) {
        for m in 0..self.queues.movers {
            self.flush(m);
        }
    }
}

impl<'a, T: MsgValue> MsgSink<T> for BatchedPipeSink<'a, T> {
    #[inline(always)]
    fn send(&mut self, dst: VertexId, msg: T) {
        let mover = dst as usize % self.queues.movers;
        self.bufs[mover].push((dst, msg));
        if self.bufs[mover].len() >= self.batch {
            self.flush(mover);
        }
    }
}

/// The per-device runtime for a [`VertexProgram`].
pub struct DeviceEngine<'g, P: VertexProgram> {
    /// The user program.
    pub program: &'g P,
    /// The (global) graph.
    pub graph: &'g Csr,
    /// The simulated device.
    pub spec: DeviceSpec,
    /// Engine configuration.
    pub config: EngineConfig,
    dev_id: u8,
    assign: Option<&'g [u8]>,
    owned: Vec<VertexId>,
    csb: Csb<P::Msg>,
    /// Vertex values (full-length; only owned entries are meaningful).
    pub values: Vec<P::Value>,
    active: ActiveSet,
    reduced: Vec<P::Msg>,
    has_msg: Vec<u8>,
    host_threads: usize,
    /// Static generation chunk boundaries over `owned` (edge-balanced, so
    /// hub vertices do not turn one chunk into the critical path).
    gen_ranges: Vec<std::ops::Range<usize>>,
    /// Supersteps started so far; attributes worker/mover spans to their
    /// superstep (counts executed attempts — replays re-number).
    cur_step: u32,
}

/// Split `owned` into ranges of roughly equal out-edge mass. With
/// front-loaded hub graphs, fixed vertex-count chunks make the first chunk
/// the critical path; balancing by edges keeps the dynamic schedule's task
/// units comparable ("the amounts of processing associated with different
/// vertices is different").
pub(crate) fn edge_balanced_ranges(
    owned: &[VertexId],
    graph: &Csr,
    explicit_chunk: usize,
    threads: usize,
) -> Vec<std::ops::Range<usize>> {
    if owned.is_empty() {
        return Vec::new();
    }
    if explicit_chunk > 0 {
        return (0..owned.len())
            .step_by(explicit_chunk)
            .map(|s| s..(s + explicit_chunk).min(owned.len()))
            .collect();
    }
    let total: u64 = owned.iter().map(|&v| graph.out_degree(v) as u64 + 1).sum();
    let target = (total / (threads as u64 * 32).max(1)).max(24);
    let mut ranges = Vec::new();
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &v) in owned.iter().enumerate() {
        acc += graph.out_degree(v) as u64 + 1;
        if acc >= target {
            ranges.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < owned.len() {
        ranges.push(start..owned.len());
    }
    ranges
}

impl<'g, P: VertexProgram> DeviceEngine<'g, P> {
    /// Build the engine for device `dev_id`. `assign` is the vertex→device
    /// map (`None` = this device owns everything).
    pub fn new(
        program: &'g P,
        graph: &'g Csr,
        spec: DeviceSpec,
        config: EngineConfig,
        dev_id: u8,
        assign: Option<&'g [u8]>,
    ) -> Self {
        assert!(
            matches!(config.mode, ExecMode::Locking | ExecMode::Pipelined),
            "DeviceEngine runs the framework modes; use the flat/seq drivers otherwise"
        );
        if P::ALWAYS_ACTIVE {
            assert!(
                program.max_supersteps().is_some() || config.max_supersteps.is_some(),
                "ALWAYS_ACTIVE programs must bound their supersteps"
            );
        }
        let n = graph.num_vertices();
        let owned: Vec<VertexId> = match assign {
            None => (0..n as VertexId).collect(),
            Some(a) => {
                assert_eq!(a.len(), n);
                (0..n as VertexId)
                    .filter(|&v| a[v as usize] == dev_id)
                    .collect()
            }
        };
        // Message capacity per owned vertex: local in-degree plus one slot
        // per remote *sender rank* (each peer combines its messages to a
        // destination into one) — unless the program declares its own bound
        // (programs that message beyond their out-neighborhood, like WCC).
        let num_ranks = assign.map_or(1, |a| a.iter().copied().max().map_or(1, |m| m as usize + 1));
        assert!(
            num_ranks <= phigraph_partition::MAX_RANKS,
            "assignment names rank {} but the fabric caps at {} ranks",
            num_ranks - 1,
            phigraph_partition::MAX_RANKS
        );
        let mut local_in = vec![0u32; n];
        let mut remote_mask = vec![0u64; n];
        let is_local = |v: VertexId| assign.is_none_or(|a| a[v as usize] == dev_id);
        for (s, d) in graph.edge_iter() {
            if is_local(d) {
                if is_local(s) {
                    local_in[d as usize] += 1;
                } else {
                    remote_mask[d as usize] |= 1 << assign.expect("remote sender")[s as usize];
                }
            }
        }
        let capacity: Vec<u32> = owned
            .iter()
            .map(|&v| match program.capacity_hint(v, graph) {
                // Custom bound: all senders might be local, plus one
                // combined remote message per peer rank.
                Some(hint) => hint + (num_ranks - 1) as u32,
                None => local_in[v as usize] + remote_mask[v as usize].count_ones(),
            })
            .collect();

        let lanes = spec.lanes(P::Msg::SIZE);
        let layout = CsbLayout::build(n, &owned, &capacity, lanes, config.k);
        let positions = layout.num_positions();
        let csb = Csb::new(layout, config.column_mode);

        let mut values = vec![P::Value::default(); n];
        let mut active = ActiveSet::new(n);
        for &v in &owned {
            let (val, act) = program.init(v, graph);
            values[v as usize] = val;
            active.set(v, act);
        }
        let host_threads = config.resolve_host_threads();
        let gen_ranges = edge_balanced_ranges(&owned, graph, config.gen_chunk, spec.threads());
        DeviceEngine {
            program,
            graph,
            spec,
            config,
            dev_id,
            assign,
            owned,
            csb,
            values,
            active,
            reduced: vec![P::Msg::ZERO; positions],
            has_msg: vec![0u8; positions],
            host_threads,
            gen_ranges,
            cur_step: 0,
        }
    }

    /// Vertices owned by this device.
    pub fn owned(&self) -> &[VertexId] {
        &self.owned
    }

    /// The buffer layout (for diagnostics and ablations).
    pub fn layout(&self) -> &CsbLayout {
        &self.csb.layout
    }

    /// Currently active vertex count.
    pub fn active_count(&self) -> u64 {
        self.active.count()
    }

    /// Raw per-vertex active flags (snapshotted by the checkpoint writer at
    /// the superstep barrier, alongside [`DeviceEngine::values`]).
    pub fn active_flags(&self) -> &[u8] {
        self.active.flags()
    }

    /// Restore vertex state from a checkpoint taken at a superstep barrier:
    /// overwrite all values and active flags. Message buffers need no
    /// restoration — the CSB is reset at the top of every superstep by
    /// [`DeviceEngine::begin_step`].
    ///
    /// # Panics
    /// Panics if `values` or `flags` do not cover the full vertex range.
    pub fn restore(&mut self, values: Vec<P::Value>, flags: &[u8]) {
        assert_eq!(
            values.len(),
            self.graph.num_vertices(),
            "value snapshot size mismatch"
        );
        self.values = values;
        self.active.restore_flags(flags);
    }

    // ---- Integrity / quarantine hooks ----------------------------------
    //
    // The silent-corruption subsystem (engine::integrity + the recovering
    // driver) needs a handful of narrow windows into the engine: arming the
    // CSB's per-group message checksums, auditing/quarantining/rebuilding
    // individual vertex groups, and the two seeded SDC injection sites.

    /// Arm or disarm the CSB's per-group message checksums. Disarmed, every
    /// checksum branch collapses to one relaxed atomic load per insert (or
    /// per batch), so the off path stays bit-identical and near-free.
    pub fn set_integrity_audit(&self, enabled: bool) {
        self.csb.set_audit(enabled);
    }

    /// Audit every vertex group's folded message checksum against the
    /// buffer contents; returns the mismatched groups (the quarantine set).
    /// Call between the insertion barrier and processing.
    pub fn audit_message_groups(&self) -> Vec<usize> {
        self.csb.audit_groups()
    }

    /// Clear only the quarantined groups' messages (cursors, bindings and
    /// checksums), leaving every other group's messages intact.
    pub fn reset_message_groups(&self, groups: &[usize]) {
        self.csb.reset_groups(groups);
    }

    /// SDC injection site: flip one bit of one buffered message (the
    /// `BitFlipMessage` fault). Returns the corrupted group, or `None` when
    /// the buffer is empty. Deterministic per seed.
    pub fn corrupt_message_cell(&self, seed: u64) -> Option<usize> {
        self.csb.corrupt_cell(seed)
    }

    /// SDC injection site: flip one bit of one owned vertex's value (the
    /// `BitFlipState` fault — state rots silently between barriers).
    /// Returns the corrupted vertex. Deterministic per seed.
    pub fn flip_state_bit(&mut self, seed: u64) -> Option<VertexId>
    where
        P::Value: phigraph_graph::state::PodState,
    {
        use phigraph_graph::state::PodState;
        if self.owned.is_empty() || P::Value::STATE_SIZE == 0 {
            return None;
        }
        let mut rng = phigraph_graph::SplitMix64::seed_from_u64(seed);
        let v = self.owned[rng.random_range(0u64..self.owned.len() as u64) as usize];
        let bit = rng.random_range(0u64..(P::Value::STATE_SIZE as u64 * 8)) as usize;
        let mut bytes = Vec::with_capacity(P::Value::STATE_SIZE);
        self.values[v as usize].write_le(&mut bytes);
        bytes[bit / 8] ^= 1 << (bit % 8);
        self.values[v as usize] = P::Value::read_le(&bytes);
        Some(v)
    }

    /// Quarantine heal for *state*: copy the barrier image's values back
    /// for every vertex whose CSB position falls in `groups`, and restore
    /// the image's active flags wholesale (flags are part of the same
    /// barrier snapshot). Group-granular so only rotted groups are touched.
    pub fn heal_state_groups(
        &mut self,
        groups: &[usize],
        image_values: &[P::Value],
        image_flags: &[u8],
    ) {
        let mut in_set = vec![false; self.csb.layout.num_groups()];
        for &g in groups {
            if let Some(s) = in_set.get_mut(g) {
                *s = true;
            }
        }
        for pos in 0..self.csb.layout.num_positions() {
            if in_set[self.csb.layout.group_of(pos as u32)] {
                let v = self.csb.layout.order[pos] as usize;
                self.values[v] = image_values[v].clone();
            }
        }
        self.active.restore_flags(image_flags);
    }

    /// Quarantine recompute for *messages*: re-run generation,
    /// single-threaded, over the vertices that were active at the barrier
    /// image, keeping only messages whose destination group is quarantined.
    /// Call after [`DeviceEngine::reset_message_groups`] — together they
    /// rebuild exactly the cleared groups without touching the rest of the
    /// buffer or re-running the parallel phase. Returns the number of
    /// messages re-inserted.
    ///
    /// Peer-bound messages are skipped: they already left through the
    /// (frame-checksummed) exchange and are not part of the local buffer.
    pub fn regenerate_groups(
        &self,
        groups: &[usize],
        image_values: &[P::Value],
        image_flags: &[u8],
    ) -> u64 {
        struct QuarantineSink<'a, T: MsgValue> {
            csb: &'a Csb<T>,
            in_set: &'a [bool],
            assign: Option<&'a [u8]>,
            dev: u8,
            reinserted: u64,
        }
        impl<'a, T: MsgValue> MsgSink<T> for QuarantineSink<'a, T> {
            #[inline]
            fn send(&mut self, dst: VertexId, msg: T) {
                if self.assign.is_some_and(|a| a[dst as usize] != self.dev) {
                    return; // peer-bound: covered by frame integrity
                }
                let pos = self.csb.layout.position[dst as usize];
                if pos != crate::csb::NOT_OWNED && self.in_set[self.csb.layout.group_of(pos)] {
                    self.csb.insert(dst, msg);
                    self.reinserted += 1;
                }
            }
        }
        let mut in_set = vec![false; self.csb.layout.num_groups()];
        for &g in groups {
            if let Some(s) = in_set.get_mut(g) {
                *s = true;
            }
        }
        let mut sink = QuarantineSink {
            csb: &self.csb,
            in_set: &in_set,
            assign: self.assign,
            dev: self.dev_id,
            reinserted: 0,
        };
        let mut ctx = GenContext::new(self.graph, image_values, &mut sink);
        for &v in &self.owned {
            if image_flags[v as usize] != 0 {
                self.program.generate(v, &mut ctx);
            }
        }
        sink.reinserted
    }

    /// Reset per-iteration buffer state; returns fresh counters.
    pub fn begin_step(&mut self) -> StepCounters {
        let c = StepCounters {
            reset_cells: self.csb.reset(),
            ..Default::default()
        };
        self.has_msg.fill(0);
        self.cur_step = self.cur_step.wrapping_add(1);
        c
    }

    /// Superstep index spans attribute to (1-based count of
    /// [`DeviceEngine::begin_step`] calls, 0 before the first).
    fn trace_step(&self) -> u32 {
        self.cur_step.wrapping_sub(1)
    }

    /// Message generation. Returns the remote (peer-bound) messages,
    /// uncombined. Deactivates all vertices afterwards (senders vote to
    /// halt; updates re-activate).
    pub fn generate(&mut self, c: &mut StepCounters) -> Vec<WireMsg<P::Msg>> {
        let remote = match self.config.mode {
            ExecMode::Locking => self.generate_locking(c),
            ExecMode::Pipelined => self.generate_pipelined(c),
            _ => unreachable!(),
        };
        c.msgs_remote = remote.len() as u64;
        c.bytes_gen += c.gen_edges * EDGE_BYTES
            + c.msgs_local * MSG_LINE_BYTES
            + c.msgs_remote * (4 + P::Msg::SIZE as u64);
        if P::HAS_POST_GENERATE {
            self.run_post_generate();
        }
        self.active.clear();
        remote
    }

    /// Post-generation pass over the vertices that just sent messages
    /// (disjoint writes: each active vertex is owned by one task).
    fn run_post_generate(&mut self) {
        let sched = ChunkScheduler::new(self.owned.len(), 512);
        let (program, owned, active) = (self.program, &self.owned, &self.active);
        let vslice = SharedSlice::new(&mut self.values);
        run_parallel(self.host_threads, |_| {
            while let Some(r) = sched.next_batch() {
                for i in r {
                    let v = owned[i];
                    if active.is_active(v) {
                        // SAFETY: each vertex index visited by one task.
                        unsafe { program.post_generate(v, vslice.get_mut(v as usize)) };
                    }
                }
            }
        });
    }

    fn generate_locking(&mut self, c: &mut StepCounters) -> Vec<WireMsg<P::Msg>> {
        let sched = ChunkScheduler::new(self.gen_ranges.len(), 1);
        let (program, graph, csb) = (self.program, self.graph, &self.csb);
        let (owned, values, active) = (&self.owned, &self.values, &self.active);
        let (assign, dev) = (self.assign, self.dev_id);
        let ranges = &self.gen_ranges;
        let (trace, step) = (self.config.trace.as_ref(), self.trace_step());

        let results = run_parallel_collect(self.host_threads, |tid| {
            let tracer = match trace {
                Some(t) => t.thread(
                    &format!("dev{dev}/worker-{tid}"),
                    dev as u32 * 1000 + 10 + tid as u32,
                ),
                None => ThreadTracer::disabled(),
            };
            let _g = tracer.span(Phase::Generate, step);
            let mut chunks: Vec<GenChunk> = Vec::new();
            let mut sink = LockingSink {
                csb,
                assign,
                dev,
                remote: Vec::new(),
                local: 0,
            };
            while let Some(batch) = sched.next_batch() {
                for ri in batch {
                    let mut ch = GenChunk::default();
                    let mut ctx = GenContext::new(graph, values, &mut sink);
                    for i in ranges[ri].clone() {
                        let v = owned[i];
                        if active.is_active(v) {
                            ch.vertices += 1;
                            ch.edges += graph.out_degree(v) as u64;
                            program.generate(v, &mut ctx);
                        }
                    }
                    ch.msgs = ctx.sent;
                    chunks.push(ch);
                }
            }
            (chunks, sink.remote, sink.local)
        });

        let mut remote = Vec::new();
        for (chunks, r, local) in results {
            for ch in &chunks {
                c.active_vertices += ch.vertices;
                c.gen_edges += ch.edges;
            }
            c.gen_chunks.extend(chunks);
            c.msgs_local += local;
            remote.extend(r);
        }
        remote
    }

    fn generate_pipelined(&mut self, c: &mut StepCounters) -> Vec<WireMsg<P::Msg>> {
        let host = self.host_threads;
        let real_movers = (host / 4).max(1);
        let real_workers = host.saturating_sub(real_movers).max(1);
        let (_, sim_movers) = self.config.pipeline_split(&self.spec);
        let queue_cap = self.config.resolved_queue_cap();
        let pipe_batch = self.config.resolved_pipe_batch();
        let queues = QueueMatrix::<(VertexId, P::Msg)>::new(real_workers, real_movers, queue_cap);
        let sched = ChunkScheduler::new(self.gen_ranges.len(), 1);
        let ranges = &self.gen_ranges;

        let (program, graph, csb) = (self.program, self.graph, &self.csb);
        let (owned, values, active) = (&self.owned, &self.values, &self.active);
        let (assign, dev) = (self.assign, self.dev_id);
        let (trace, step) = (self.config.trace.as_ref(), self.trace_step());
        let queues_ref = &queues;
        let sched = &sched;

        // Worker output: (gen chunks, full-queue spins, flushes, batched
        // messages). Mover output: (remote msgs, local count, per-class
        // counts, idle polls).
        type WorkerOut = (Vec<GenChunk>, u64, u64, u64);
        type MoverOut<T> = (Vec<WireMsg<T>>, u64, Vec<u64>, u64);
        let (worker_out, mover_out): (Vec<WorkerOut>, Vec<MoverOut<P::Msg>>) =
            std::thread::scope(|s| {
                let workers: Vec<_> = (0..real_workers)
                    .map(|w| {
                        s.spawn(move || {
                            let tracer = match trace {
                                Some(t) => t.thread(
                                    &format!("dev{dev}/worker-{w}"),
                                    dev as u32 * 1000 + 10 + w as u32,
                                ),
                                None => ThreadTracer::disabled(),
                            };
                            let _gen = tracer.span(Phase::Generate, step);
                            let mut chunks = Vec::new();
                            let mut sink = BatchedPipeSink::new(
                                queues_ref, w, pipe_batch, trace, &tracer, step,
                            );
                            while let Some(batch) = sched.next_batch() {
                                for ri in batch {
                                    let mut ch = GenChunk::default();
                                    let mut ctx = GenContext::new(graph, values, &mut sink);
                                    for i in ranges[ri].clone() {
                                        let v = owned[i];
                                        if active.is_active(v) {
                                            ch.vertices += 1;
                                            ch.edges += graph.out_degree(v) as u64;
                                            program.generate(v, &mut ctx);
                                        }
                                    }
                                    ch.msgs = ctx.sent;
                                    chunks.push(ch);
                                }
                            }
                            sink.flush_all();
                            queues_ref.close_worker(w);
                            (chunks, sink.spins, sink.flushes, sink.batched)
                        })
                    })
                    .collect();
                let movers: Vec<_> = (0..real_movers)
                    .map(|m| {
                        s.spawn(move || {
                            let tracer = match trace {
                                Some(t) => t.thread(
                                    &format!("dev{dev}/mover-{m}"),
                                    dev as u32 * 1000 + 500 + m as u32,
                                ),
                                None => ThreadTracer::disabled(),
                            };
                            let _ins = tracer.span(Phase::Insert, step);
                            let mut remote: Vec<WireMsg<P::Msg>> = Vec::new();
                            let mut local = 0u64;
                            let mut class_counts = vec![0u64; sim_movers];
                            let mut idle_polls = 0u64;
                            loop {
                                let mut moved = false;
                                for w in 0..real_workers {
                                    let t0 = if tracer.enabled_fine() {
                                        tracer.now_ns()
                                    } else {
                                        0
                                    };
                                    // SAFETY: mover m is the only consumer
                                    // of queue (w, m). Slices are consumed
                                    // fully inside the closure.
                                    let n = unsafe {
                                        queues_ref.queue(w, m).pop_slices(queue_cap, |slice| {
                                            for &(dst, _) in slice {
                                                class_counts[dst as usize % sim_movers] += 1;
                                            }
                                            if let Some(t) = trace {
                                                t.record_hist(
                                                    HistKind::InsertSlice,
                                                    slice.len() as u64,
                                                );
                                            }
                                            match assign {
                                                // Single device: the whole
                                                // slice drains straight into
                                                // the CSB columns.
                                                None => {
                                                    csb.insert_slice(slice);
                                                    local += slice.len() as u64;
                                                }
                                                Some(a) => {
                                                    for &(dst, msg) in slice {
                                                        if a[dst as usize] == dev {
                                                            csb.insert(dst, msg);
                                                            local += 1;
                                                        } else {
                                                            remote
                                                                .push(WireMsg { dst, value: msg });
                                                        }
                                                    }
                                                }
                                            }
                                        })
                                    };
                                    if n > 0 {
                                        moved = true;
                                        if let Some(t) = trace {
                                            t.record_hist(HistKind::QueueOccupancy, n as u64);
                                        }
                                        if t0 != 0 {
                                            tracer.record_closing(Phase::Drain, step, t0);
                                        }
                                    }
                                }
                                if !moved {
                                    idle_polls += 1;
                                    if queues_ref.mover_done(m) {
                                        break;
                                    }
                                    std::hint::spin_loop();
                                    std::thread::yield_now();
                                }
                            }
                            (remote, local, class_counts, idle_polls)
                        })
                    })
                    .collect();
                (
                    workers
                        .into_iter()
                        .map(|h| h.join().expect("worker panicked"))
                        .collect(),
                    movers
                        .into_iter()
                        .map(|h| h.join().expect("mover panicked"))
                        .collect(),
                )
            });

        let mut remote = Vec::new();
        c.mover_msgs = vec![0u64; sim_movers];
        for (chunks, spins, flushes, batched) in worker_out {
            for ch in &chunks {
                c.active_vertices += ch.vertices;
                c.gen_edges += ch.edges;
            }
            c.gen_chunks.extend(chunks);
            c.queue_full_spins += spins;
            c.flush_batches += flushes;
            c.batched_msgs += batched;
        }
        for (r, local, class_counts, idle_polls) in mover_out {
            remote.extend(r);
            c.msgs_local += local;
            c.mover_idle_polls += idle_polls;
            for (a, b) in c.mover_msgs.iter_mut().zip(class_counts) {
                *a += b;
            }
        }
        remote
    }

    /// Insert the peer's combined remote messages into the local buffer
    /// ("Received messages are inserted into local message buffer for
    /// further processing").
    pub fn absorb_remote(&mut self, incoming: &[WireMsg<P::Msg>], c: &mut StepCounters) {
        if incoming.is_empty() {
            return;
        }
        let sched = ChunkScheduler::new(incoming.len(), 1024);
        let csb = &self.csb;
        run_parallel(self.host_threads, |_| {
            while let Some(r) = sched.next_batch() {
                for m in &incoming[r] {
                    csb.insert(m.dst, m.value);
                }
            }
        });
        // Record the insertion work in scheduler-grain batches (one giant
        // chunk would read as serial work in the makespan replay).
        let grain = (incoming.len() / (self.spec.threads() * 8).max(1)).clamp(16, 1024) as u64;
        let mut left = incoming.len() as u64;
        while left > 0 {
            let batch = left.min(grain);
            c.gen_chunks.push(GenChunk {
                vertices: 0,
                edges: 0,
                msgs: batch,
            });
            left -= batch;
        }
        c.bytes_gen += incoming.len() as u64 * MSG_LINE_BYTES;
    }

    /// Collect insertion statistics after all insertions (local + remote)
    /// are done.
    pub fn finalize_insertion_stats(&self, c: &mut StepCounters) {
        let (profile, occupied, allocs) = self.csb.insert_stats();
        c.insert_profile = profile;
        c.occupied_columns = occupied;
        c.column_allocs = allocs;
    }

    /// Message processing: reduce the buffer into per-position messages.
    pub fn process(&mut self, c: &mut StepCounters) {
        let vectorized = self.config.vectorized && P::SIMD_REDUCIBLE;
        let groups = self.csb.layout.num_groups();
        let sched =
            ChunkScheduler::new(groups, self.config.resolved_proc_chunk(groups, &self.spec));
        let csb = &self.csb;
        let rslice = SharedSlice::new(&mut self.reduced);
        let hslice = SharedSlice::new(&mut self.has_msg);
        let out = run_parallel_collect(self.host_threads, |_| {
            let mut chunks = Vec::new();
            while let Some(r) = sched.next_batch() {
                csb.process_groups::<P::Reduce>(r, vectorized, &rslice, &hslice, &mut chunks);
            }
            chunks
        });
        let lanes = self.csb.layout.lanes as u64;
        for chunks in out {
            for ch in &chunks {
                c.proc_rows += ch.rows;
                c.proc_msgs += ch.msgs;
                c.holes_filled += ch.holes;
            }
            c.proc_chunks.extend(chunks);
        }
        // Vectorized processing streams whole rows (messages + bubbles);
        // the scalar walk touches each message cell individually.
        c.bytes_proc = if vectorized {
            (c.proc_rows * lanes + c.occupied_columns) * P::Msg::SIZE as u64
        } else {
            (c.proc_msgs + c.occupied_columns) * P::Msg::SIZE as u64
        };
    }

    /// Vertex updating: apply reduced messages, set next-step active flags.
    pub fn update(&mut self, c: &mut StepCounters) {
        let positions = self.csb.layout.num_positions();
        let sched = ChunkScheduler::new(positions, 512);
        let (program, graph) = (self.program, self.graph);
        let order = &self.csb.layout.order;
        let (reduced, has_msg) = (&self.reduced, &self.has_msg);
        let vslice = SharedSlice::new(&mut self.values);
        let fslice = SharedSlice::new(self.active.flags_mut());
        let updated: u64 = run_parallel_collect(self.host_threads, |_| {
            let mut n = 0u64;
            while let Some(r) = sched.next_batch() {
                for pos in r {
                    if has_msg[pos] != 0 {
                        let v = order[pos];
                        // SAFETY: positions map to distinct vertices, so
                        // value/flag writes are disjoint across tasks.
                        let act = unsafe {
                            let val = vslice.get_mut(v as usize);
                            program.update(v, reduced[pos], val, graph)
                        };
                        unsafe { fslice.write(v as usize, u8::from(act)) };
                        n += 1;
                    }
                }
            }
            n
        })
        .into_iter()
        .sum();
        if P::ALWAYS_ACTIVE {
            let owned = std::mem::take(&mut self.owned);
            self.active.activate_all(&owned);
            self.owned = owned;
        }
        self.active.recount();
        c.updated_vertices = updated;
        c.next_active = self.active.count();
        c.bytes_update = updated * (std::mem::size_of::<P::Value>() as u64 + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::config::EngineConfig;
    use phigraph_graph::generators::small::{chain, weighted_diamond};
    use phigraph_simd::Min;

    struct Sssp;
    impl VertexProgram for Sssp {
        type Msg = f32;
        type Reduce = Min;
        type Value = f32;
        const NAME: &'static str = "sssp";
        fn init(&self, v: VertexId, _g: &Csr) -> (f32, bool) {
            if v == 0 {
                (0.0, true)
            } else {
                (f32::INFINITY, false)
            }
        }
        fn generate<S: MsgSink<f32>>(&self, v: VertexId, ctx: &mut GenContext<'_, f32, S>) {
            let my = *ctx.value(v);
            for e in ctx.graph.edge_range(v) {
                ctx.send(ctx.graph.targets[e], my + ctx.graph.weight(e));
            }
        }
        fn update(&self, _v: VertexId, msg: f32, value: &mut f32, _g: &Csr) -> bool {
            if msg < *value {
                *value = msg;
                true
            } else {
                false
            }
        }
    }

    fn drive(engine: &mut DeviceEngine<'_, Sssp>) -> usize {
        let mut steps = 0;
        loop {
            let mut c = engine.begin_step();
            let remote = engine.generate(&mut c);
            assert!(remote.is_empty(), "single device must not emit remote msgs");
            engine.finalize_insertion_stats(&mut c);
            engine.process(&mut c);
            engine.update(&mut c);
            steps += 1;
            if c.msgs_total() == 0 || steps > 1000 {
                break;
            }
        }
        steps
    }

    #[test]
    fn sssp_on_diamond_locking() {
        let g = weighted_diamond();
        let mut eng = DeviceEngine::new(
            &Sssp,
            &g,
            DeviceSpec::xeon_e5_2680(),
            EngineConfig::locking(),
            0,
            None,
        );
        drive(&mut eng);
        assert_eq!(eng.values, vec![0.0, 1.0, 5.0, 2.0]);
    }

    #[test]
    fn sssp_on_chain_pipelined() {
        let g = chain(50);
        let mut eng = DeviceEngine::new(
            &Sssp,
            &g,
            DeviceSpec::xeon_phi_se10p(),
            EngineConfig::pipelined().with_host_threads(4),
            0,
            None,
        );
        let steps = drive(&mut eng);
        for v in 0..50 {
            assert_eq!(eng.values[v], v as f32, "distance to {v}");
        }
        assert_eq!(steps, 50, "one wavefront per superstep plus the empty step");
    }

    #[test]
    fn counters_reflect_first_step() {
        let g = weighted_diamond();
        let mut eng = DeviceEngine::new(
            &Sssp,
            &g,
            DeviceSpec::xeon_e5_2680(),
            EngineConfig::locking(),
            0,
            None,
        );
        let mut c = eng.begin_step();
        eng.generate(&mut c);
        eng.finalize_insertion_stats(&mut c);
        assert_eq!(c.active_vertices, 1);
        assert_eq!(c.gen_edges, 2);
        assert_eq!(c.msgs_local, 2);
        assert_eq!(c.insert_profile.total, 2);
        assert_eq!(c.occupied_columns, 2);
        eng.process(&mut c);
        assert_eq!(c.proc_msgs, 2);
        eng.update(&mut c);
        assert_eq!(c.updated_vertices, 2);
        assert_eq!(c.next_active, 2);
    }

    #[test]
    fn partial_ownership_routes_remote_messages() {
        let g = weighted_diamond();
        // Device 0 owns {0, 1}; device 1 owns {2, 3}.
        let assign = vec![0u8, 0, 1, 1];
        let mut eng = DeviceEngine::new(
            &Sssp,
            &g,
            DeviceSpec::xeon_e5_2680(),
            EngineConfig::locking(),
            0,
            Some(&assign),
        );
        assert_eq!(eng.owned(), &[0, 1]);
        let mut c = eng.begin_step();
        let remote = eng.generate(&mut c);
        // Vertex 0 sends to 1 (local) and 2 (remote).
        assert_eq!(c.msgs_local, 1);
        assert_eq!(remote.len(), 1);
        assert_eq!(remote[0].dst, 2);
    }

    #[test]
    fn absorb_remote_feeds_processing() {
        let g = weighted_diamond();
        let assign = vec![0u8, 0, 1, 1];
        let mut eng = DeviceEngine::new(
            &Sssp,
            &g,
            DeviceSpec::xeon_e5_2680(),
            EngineConfig::locking(),
            1,
            Some(&assign),
        );
        let mut c = eng.begin_step();
        let _ = eng.generate(&mut c); // nothing active on device 1
        eng.absorb_remote(&[WireMsg { dst: 2, value: 5.0 }], &mut c);
        eng.finalize_insertion_stats(&mut c);
        eng.process(&mut c);
        eng.update(&mut c);
        assert_eq!(eng.values[2], 5.0);
        assert_eq!(c.updated_vertices, 1);
    }

    #[test]
    fn pipelined_counters_record_batches() {
        let g = chain(50);
        let mut eng = DeviceEngine::new(
            &Sssp,
            &g,
            DeviceSpec::xeon_e5_2680(),
            EngineConfig::pipelined()
                .with_host_threads(4)
                .with_pipe_batch(8),
            0,
            None,
        );
        let mut c = eng.begin_step();
        eng.generate(&mut c);
        // Every local message travelled inside a worker→mover batch.
        assert_eq!(c.batched_msgs, c.msgs_local);
        assert!(c.flush_batches >= 1, "at least one flush happened");
        // A 1-message first wavefront fits in one batch.
        assert_eq!(c.msgs_local, 1);
        assert_eq!(c.flush_batches, 1);
    }

    #[test]
    fn pipelined_counters_sum_across_all_threads() {
        // Pin the documented aggregation contract of `StepReport::counters`:
        // each worker and mover keeps thread-private counters and the engine
        // folds them into one whole-device record. Every vertex starts
        // active here, so the generation work spreads over all workers and
        // the insertions over all movers.
        struct AllActive;
        impl VertexProgram for AllActive {
            type Msg = f32;
            type Reduce = Min;
            type Value = f32;
            const NAME: &'static str = "all-active";
            fn init(&self, _v: VertexId, _g: &Csr) -> (f32, bool) {
                (0.0, true)
            }
            fn generate<S: MsgSink<f32>>(&self, v: VertexId, ctx: &mut GenContext<'_, f32, S>) {
                for e in ctx.graph.edge_range(v) {
                    ctx.send(ctx.graph.targets[e], 1.0);
                }
            }
            fn update(&self, _v: VertexId, _msg: f32, _value: &mut f32, _g: &Csr) -> bool {
                false
            }
        }
        let g = chain(64); // 63 messages from 63 distinct active sources
        let mut eng = DeviceEngine::new(
            &AllActive,
            &g,
            DeviceSpec::xeon_e5_2680(),
            EngineConfig::pipelined()
                .with_host_threads(8)
                .with_pipe_batch(4),
            0,
            None,
        );
        let mut c = eng.begin_step();
        eng.generate(&mut c);
        assert_eq!(c.msgs_local, 63);
        // Sum over workers: every message travelled in exactly one batch.
        assert_eq!(c.batched_msgs, c.msgs_local);
        assert!(
            c.flush_batches >= 63 / 4,
            "63 msgs in ≤4-msg batches, got {} flushes",
            c.flush_batches
        );
        // Sum over movers: the per-lane tallies partition the local total.
        assert_eq!(c.mover_msgs.iter().sum::<u64>(), c.msgs_local);
        assert!(
            c.mover_msgs.iter().filter(|&&m| m > 0).count() >= 2,
            "chain targets spread over mover lanes: {:?}",
            c.mover_msgs
        );
    }

    #[test]
    fn tiny_queue_batches_chunk_through() {
        // 2-slot rings with batch 2 and a hub fanning out 64 messages: the
        // protocol must chunk every batch through the tiny ring correctly.
        let g = phigraph_graph::generators::small::star(65);
        let mut eng = DeviceEngine::new(
            &Sssp,
            &g,
            DeviceSpec::xeon_e5_2680(),
            EngineConfig::pipelined()
                .with_host_threads(2)
                .with_queue_cap(2)
                .with_pipe_batch(2),
            0,
            None,
        );
        let mut c = eng.begin_step();
        eng.generate(&mut c);
        assert_eq!(c.msgs_local, 64);
        assert_eq!(c.batched_msgs, 64);
        assert!(c.flush_batches >= 32, "64 msgs in ≤2-msg batches");
    }

    #[test]
    fn locking_and_pipelined_agree() {
        let g = chain(30);
        let run = |config: EngineConfig| {
            let mut eng = DeviceEngine::new(&Sssp, &g, DeviceSpec::xeon_e5_2680(), config, 0, None);
            drive(&mut eng);
            eng.values.clone()
        };
        assert_eq!(
            run(EngineConfig::locking()),
            run(EngineConfig::pipelined().with_host_threads(5))
        );
    }
}
