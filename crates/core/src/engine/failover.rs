//! Live rank failover for the N-device fabric.
//!
//! The plain rank drivers assume every device survives the whole run;
//! [`run_ranks_recovering`] treats any fault as a whole-run retry. Real
//! heterogeneous deployments lose or stall *one* rank far more often than
//! all of them, so this driver maintains a live membership instead:
//!
//! * **Liveness**: each rank ticks a [`Heartbeat`] at every phase
//!   boundary, a watchdog thread polls those beacons against the configured
//!   deadline, and every per-link exchange carries a timeout — nothing in
//!   this driver blocks unboundedly.
//! * **Detection**: a crashed rank tears all its link endpoints down (every
//!   peer sees `PeerDead` immediately); a hung rank keeps its channels
//!   alive but goes silent (peers see a timeout after the deadline, and the
//!   watchdog records the detection latency).
//! * **Eviction & migration** (the default policy): the failed ranks are
//!   evicted from the membership at the failure barrier `s*`. With one
//!   survivor left, it hosts *every* current engine in lockstep with the
//!   current assignment and replays to completion — bit-identical by
//!   construction, including order-sensitive `f32` combiners. With two or
//!   more survivors, the driver reconstructs the exact barrier state at
//!   `s*` (catch-up replay under the old assignment when the newest common
//!   snapshot is older), re-splits the dead ranks' partition over the
//!   survivors proportionally to their shares, and continues live — so a
//!   second (or third) failure later in the run cascades through the same
//!   machinery onto any survivor subset.
//! * **Verdict sync on link partitions**: when a *link* dies but both of
//!   its ends are alive, exactly one deterministic side — the higher rank —
//!   is evicted, so survivors re-anchor on the smallest live rank instead
//!   of splitting into two mutually-suspicious halves.
//! * **Rebalancing**: a rank that merely *slows down* (a straggler, not a
//!   corpse) is detected from the per-superstep simulated step times every
//!   rank piggybacks on every exchange; after `rebalance_after` consecutive
//!   lopsided barriers all ranks leave the loop at the same barrier and the
//!   live ranks' shares are re-derived proportionally to the observed
//!   throughputs.
//! * **Rollback**: a dropped exchange (all parties observe it at the same
//!   barrier) rolls every rank back to the newest common snapshot and
//!   replays — bounded by the retry budget — instead of restarting the
//!   whole run.
//!
//! The 2-device path is the N = 2 instance of this machinery, not a
//! parallel implementation: [`run_hetero_failover`] simply forwards to
//! [`run_ranks_failover`].
//!
//! [`run_ranks_recovering`]: crate::engine::hetero::run_ranks_recovering

use crate::api::VertexProgram;
use crate::engine::config::EngineConfig;
use crate::engine::device::DeviceEngine;
use crate::engine::flat::run_cap;
use crate::engine::integrity::framed_exchange;
use crate::engine::seq::run_seq_resume;
use crate::metrics::{combine_ranks, RunOutput, RunReport, StepReport};
use phigraph_comm::message::wire_bytes;
use phigraph_comm::{combine_messages, mesh, Endpoint, ExchangeError, PcieLink, WireMsg};
use phigraph_device::{CostModel, DeviceSpec, Heartbeat, StepCounters};
use phigraph_graph::state::{decode_state_slice, encode_state_slice, PodState};
use phigraph_graph::Csr;
use phigraph_partition::{partition_n, DevicePartition, Shares};
use phigraph_recover::{
    CheckpointStore, FailoverConfig, FailoverPolicy, FailoverStats, FaultInjector, FaultKind,
    IntegrityStats, RecoveryPolicy, RecoveryStats, Snapshot,
};
use phigraph_simd::MsgValue;
use phigraph_trace::{HistKind, Phase, ThreadTracer, Trace};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Seed for straggler-driven re-partitioning (matches the CLI default).
const REBALANCE_SEED: u64 = 7;

/// Sentinel for "not detected" in the watchdog's latency slots.
const UNDETECTED: u64 = u64::MAX;

/// How one rank loop ended. `Hung` keeps every link endpoint alive inside
/// the variant so peers observe a *silent* (timeout) failure rather than a
/// dead channel — exactly the difference between a hang and a crash.
enum LoopExit<M: Send> {
    /// Global termination (or superstep cap) reached.
    Done,
    /// An injected `CrashDevice`/`CrashRank` fault: all endpoints torn down.
    Crashed { step: usize },
    /// An injected `HangDevice` fault: endpoints stay alive but silent.
    Hung {
        step: usize,
        _keep_alive: Vec<Endpoint<WireMsg<M>>>,
    },
    /// A peer's endpoint disappeared (that peer crashed).
    PeerDead { step: usize },
    /// A peer went silent past the deadline (that peer hung).
    PeerTimeout { step: usize, waited_ms: u64 },
    /// The exchange was dropped on a link (both ends observe this).
    ExchangeDrop { step: usize },
    /// An injected `PartitionLink` severed the link to `high`; this end
    /// (the lower rank, which armed the fault) names the pair so the
    /// driver can evict the deterministic side.
    LinkPartitioned { step: usize, low: u8, high: u8 },
    /// Straggler threshold reached; all ranks leave at the same barrier.
    Rebalance { step: usize },
}

/// Plain-data view of [`LoopExit`] (drops the kept-alive endpoints).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ExitKind {
    Done,
    Crashed(usize),
    Hung(usize),
    PeerDead(usize),
    PeerTimeout(usize, u64),
    ExchangeDrop(usize),
    LinkPartitioned(usize, u8, u8),
    Rebalance(usize),
}

impl<M: Send> LoopExit<M> {
    fn kind(&self) -> ExitKind {
        match self {
            LoopExit::Done => ExitKind::Done,
            LoopExit::Crashed { step } => ExitKind::Crashed(*step),
            LoopExit::Hung { step, .. } => ExitKind::Hung(*step),
            LoopExit::PeerDead { step } => ExitKind::PeerDead(*step),
            LoopExit::PeerTimeout { step, waited_ms } => ExitKind::PeerTimeout(*step, *waited_ms),
            LoopExit::ExchangeDrop { step } => ExitKind::ExchangeDrop(*step),
            LoopExit::LinkPartitioned { step, low, high } => {
                ExitKind::LinkPartitioned(*step, *low, *high)
            }
            LoopExit::Rebalance { step } => ExitKind::Rebalance(*step),
        }
    }
}

impl ExitKind {
    /// Only a self-reported crash/hang marks the rank itself as lost;
    /// `PeerDead`/`PeerTimeout` from healthy ranks are observations.
    fn lost(&self) -> bool {
        matches!(self, ExitKind::Crashed(_) | ExitKind::Hung(_))
    }
}

/// Everything one rank loop hands back to the driver.
struct LoopOut<P: VertexProgram> {
    values: Vec<P::Value>,
    flags: Vec<u8>,
    steps: Vec<StepReport>,
    exit: LoopExit<P::Msg>,
    /// Whether a `SlowDevice` fault latched on this rank (persists across
    /// restarts so the straggler stays slow after a rollback/rebalance).
    slowed: bool,
    /// Sum of the advertised (straggler-model) step times this attempt.
    sim_adv_total: f64,
    /// Frame-integrity counters from this rank's exchanges.
    integ: IntegrityStats,
}

type ResumePair<V> = Option<(Vec<V>, Vec<u8>)>;
type MergedState<V> = (usize, Vec<V>, Vec<u8>);
/// Merged values, merged active flags, and per-rank step reports keyed by
/// original rank id — what a lockstep replay hands back.
type ReplayOut<V> = (Vec<V>, Vec<u8>, Vec<(usize, Vec<StepReport>)>);

/// Encode and save one rank's barrier snapshot into its store, honoring
/// the keep window and the `CorruptCheckpoint` injection site.
fn write_device_checkpoint<P: VertexProgram>(
    engine: &DeviceEngine<'_, P>,
    step: usize,
    store: &Mutex<&mut dyn CheckpointStore>,
    policy: &RecoveryPolicy,
    injector: Option<&FaultInjector>,
    dev: u8,
    c: &mut StepCounters,
) where
    P::Value: PodState,
{
    let next_step = step as u64 + 1;
    let snap = Snapshot {
        superstep: next_step,
        app: P::NAME.to_string(),
        value_size: P::Value::STATE_SIZE as u16,
        values: encode_state_slice(&engine.values),
        active: engine.active_flags().to_vec(),
    };
    let mut bytes = snap.encode();
    if injector.is_some_and(|i| i.fire(step as u64, FaultKind::CorruptCheckpoint, dev)) {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let last = bytes.len() - 1;
        bytes[last] ^= 0xAA;
        c.faults_injected += 1;
    }
    let mut s = store.lock().expect("checkpoint store poisoned");
    if s.save(next_step, &bytes).is_ok() {
        c.checkpoints_written += 1;
        c.checkpoint_bytes += bytes.len() as u64;
        if policy.keep_snapshots > 0 {
            let _ = s.retain_newest(policy.keep_snapshots);
        }
    }
}

/// Load the newest barrier state valid in *every* `membership` rank's
/// store, merged by `assign`. Corrupt or mismatched snapshots are skipped
/// (counted into `rstats`) in favor of an older common barrier.
fn load_merged<P: VertexProgram>(
    stores: &[Mutex<&mut dyn CheckpointStore>],
    membership: &[usize],
    assign: &[u8],
    rstats: &mut RecoveryStats,
) -> Option<MergedState<P::Value>>
where
    P::Value: PodState,
{
    let n = assign.len();
    let mut lists: Vec<Vec<u64>> = membership
        .iter()
        .map(|&r| stores[r].lock().expect("checkpoint store poisoned").list())
        .collect();
    let first = lists.remove(0);
    let common: Vec<u64> = first
        .into_iter()
        .filter(|s| lists.iter().all(|l| l.contains(s)))
        .collect();
    'barrier: for k in common.into_iter().rev() {
        let mut merged: Option<(Vec<P::Value>, Vec<u8>)> = None;
        for &r in membership {
            let bytes = stores[r].lock().expect("checkpoint store poisoned").load(k);
            let Ok(bytes) = bytes else {
                rstats.corrupt_snapshots_rejected += 1;
                continue 'barrier;
            };
            let Ok(s) = Snapshot::decode(&bytes) else {
                rstats.corrupt_snapshots_rejected += 1;
                continue 'barrier;
            };
            let valid = s.app == P::NAME
                && s.value_size as usize == P::Value::STATE_SIZE
                && s.active.len() == n
                && s.superstep == k;
            if !valid {
                rstats.corrupt_snapshots_rejected += 1;
                continue 'barrier;
            }
            let Some(v) = decode_state_slice::<P::Value>(&s.values, n) else {
                rstats.corrupt_snapshots_rejected += 1;
                continue 'barrier;
            };
            match &mut merged {
                None => merged = Some((v, s.active)),
                Some((vals, flags)) => {
                    let rd = r as u8;
                    for (x, val) in v.into_iter().enumerate() {
                        if assign[x] == rd {
                            vals[x] = val;
                            flags[x] = s.active[x];
                        }
                    }
                }
            }
        }
        let (vals, flags) = merged.expect("membership is never empty");
        return Some((k as usize, vals, flags));
    }
    None
}

/// Clear the `membership` ranks' stores and save `state` as the single
/// barrier snapshot in each (used after a rebalance or an eviction, when
/// older snapshots were written under a now-stale assignment).
fn reset_stores_with<P: VertexProgram>(
    stores: &[Mutex<&mut dyn CheckpointStore>],
    membership: &[usize],
    step: usize,
    values: &[P::Value],
    flags: &[u8],
) where
    P::Value: PodState,
{
    let snap = Snapshot {
        superstep: step as u64,
        app: P::NAME.to_string(),
        value_size: P::Value::STATE_SIZE as u16,
        values: encode_state_slice(values),
        active: flags.to_vec(),
    };
    let bytes = snap.encode();
    for &r in membership {
        let mut s = stores[r].lock().expect("checkpoint store poisoned");
        for k in s.list() {
            let _ = s.remove(k);
        }
        let _ = s.save(step as u64, &bytes);
    }
}

/// One rank's superstep loop with liveness instrumentation. Mirrors the
/// plain rank loop phase-for-phase (so a fault-free failover run computes
/// exactly what `run_ranks` computes) and adds: heartbeat ticks at phase
/// boundaries, step-start crash/hang/slow injection sites, link-partition
/// arming on the lower end of each link, deadline-capable per-link
/// exchanges, per-rank barrier snapshots, and symmetric straggler detection
/// from the N-vector of step times piggybacked on every exchange.
#[allow(clippy::too_many_arguments)]
fn failover_rank_loop<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    assign: &[u8],
    rank: usize,
    spec: DeviceSpec,
    config: EngineConfig,
    eps: Vec<Endpoint<WireMsg<P::Msg>>>,
    cap: usize,
    start_step: usize,
    resume: ResumePair<P::Value>,
    store: &Mutex<&mut dyn CheckpointStore>,
    fcfg: &FailoverConfig,
    hb: Heartbeat,
    finished: &AtomicBool,
    slowed_in: bool,
    rebalance_enabled: bool,
    membership: &[usize],
) -> LoopOut<P>
where
    P::Value: PodState,
{
    let dev = rank as u8;
    let policy = config.recovery;
    let cost = CostModel::new(spec.clone());
    let mut engine = DeviceEngine::new(
        program,
        graph,
        spec.clone(),
        config.clone(),
        dev,
        Some(assign),
    );
    if let Some((vals, flags)) = resume {
        engine.restore(vals, &flags);
    }
    let tracer = config.tracer(&format!("dev{dev}"), dev as u32 * 1000);
    let deadline = fcfg.deadline();
    let my_pos = membership
        .iter()
        .position(|&r| r == rank)
        .expect("rank not in its own membership");
    // Destination rank -> outgoing link index (links are peer-ascending).
    let max_peer = eps.iter().map(|e| e.peer).max().unwrap_or(0);
    let mut bucket_of = vec![usize::MAX; max_peer + 1];
    for (i, ep) in eps.iter().enumerate() {
        bucket_of[ep.peer] = i;
    }
    let mut steps: Vec<StepReport> = Vec::new();
    let mut slowed = slowed_in;
    let mut prev_adv = 0.0f64;
    let mut base_times: Option<Vec<f64>> = None;
    let mut consec_slow = 0u32;
    let mut sim_adv_total = 0.0f64;
    let mut integ = IntegrityStats::default();
    let mut exit = LoopExit::Done;

    let mut step = start_step;
    'run: while step < cap {
        hb.tick();
        let mut hb_count = 1u64;
        if let Some(inj) = &config.fault_plan {
            if inj.fire(step as u64, FaultKind::CrashDevice, dev)
                || inj.fire(step as u64, FaultKind::CrashRank(dev), 0)
            {
                // Fail-stop: tear every endpoint down so each peer's next
                // exchange observes a dead channel.
                drop(eps);
                exit = LoopExit::Crashed { step };
                break 'run;
            }
            if inj.fire(step as u64, FaultKind::HangDevice, dev) {
                // Hang: the rank goes silent but its endpoints stay
                // alive; only a deadline can tell this apart from "slow".
                exit = LoopExit::Hung {
                    step,
                    _keep_alive: eps,
                };
                break 'run;
            }
            if inj.fire(step as u64, FaultKind::SlowDevice, dev) {
                slowed = true;
            }
        }
        let t0 = Instant::now();
        let _step_span = tracer.span(Phase::Superstep, step as u32);
        let mut c = engine.begin_step();
        let remote = {
            let _g = tracer.span(Phase::Generate, step as u32);
            engine.generate(&mut c)
        };
        hb.tick();
        hb_count += 1;
        c.remote_before_combine = remote.len() as u64;
        // Bucket by destination rank (generation order preserved within a
        // bucket), then combine per link — the N = 2 case is exactly the
        // old single-peer combine.
        let mut buckets: Vec<Vec<WireMsg<P::Msg>>> = (0..eps.len()).map(|_| Vec::new()).collect();
        for msg in remote {
            buckets[bucket_of[assign[msg.dst as usize] as usize]].push(msg);
        }
        let mut outgoing: Vec<Vec<WireMsg<P::Msg>>> = Vec::with_capacity(eps.len());
        for b in buckets {
            let (combined, _) = combine_messages::<P::Msg, P::Reduce>(b);
            c.remote_after_combine += combined.len() as u64;
            outgoing.push(combined);
        }
        // Arm injected link faults before exchanging. A partition is armed
        // by the lower end of the link (fire-once, so exactly one side
        // arms) and remembered so the resulting drop is attributed to the
        // partition, not a generic exchange fault.
        let mut partitioned: Option<usize> = None;
        if let Some(inj) = &config.fault_plan {
            if inj.fire(step as u64, FaultKind::DropExchange, dev) {
                eps[0].inject_fault();
            }
            for ep in &eps {
                if ep.peer > rank
                    && inj.fire(
                        step as u64,
                        FaultKind::partition_link(dev, ep.peer as u8),
                        0,
                    )
                {
                    ep.inject_fault();
                    partitioned = Some(ep.peer);
                }
            }
        }
        let my_any = c.msgs_total() > 0;
        let x0 = Instant::now();
        let xspan = tracer.span(Phase::Exchange, step as u32);
        let mut incoming_all: Vec<Vec<WireMsg<P::Msg>>> = Vec::with_capacity(eps.len());
        let mut peer_any = false;
        let mut peer_times: Vec<(usize, f64)> = Vec::with_capacity(eps.len());
        let mut comm_time = 0.0f64;
        let mut fail: Option<LoopExit<P::Msg>> = None;
        for (ep, out) in eps.iter().zip(outgoing) {
            let bytes_out = wire_bytes::<P::Msg>(out.len());
            let res = framed_exchange(
                ep,
                out,
                bytes_out,
                my_any,
                prev_adv,
                Some(deadline),
                step as u64,
                dev,
                config.integrity,
                config.fault_plan.as_ref(),
                &mut integ,
            );
            match res {
                Ok((incoming, peer, xstats)) => {
                    peer_any |= peer.any_active;
                    peer_times.push((ep.peer, peer.step_time));
                    c.comm_bytes += xstats.bytes_sent + xstats.bytes_recv;
                    comm_time += xstats.sim_time;
                    incoming_all.push(incoming);
                }
                Err(ExchangeError::Dropped(_)) => {
                    fail = Some(if partitioned == Some(ep.peer) {
                        LoopExit::LinkPartitioned {
                            step,
                            low: dev,
                            high: ep.peer as u8,
                        }
                    } else {
                        LoopExit::ExchangeDrop { step }
                    });
                    break;
                }
                Err(ExchangeError::Timeout(t)) => {
                    fail = Some(LoopExit::PeerTimeout {
                        step,
                        waited_ms: t.waited_ms,
                    });
                    break;
                }
                Err(ExchangeError::PeerDead) => {
                    fail = Some(LoopExit::PeerDead { step });
                    break;
                }
            }
        }
        drop(xspan);
        config.record_hist(HistKind::ExchangeRttUs, x0.elapsed().as_micros() as u64);
        hb.tick();
        hb_count += 1;
        if let Some(f) = fail {
            exit = f;
            break 'run;
        }
        {
            let _i = tracer.span(Phase::Insert, step as u32);
            for incoming in &incoming_all {
                engine.absorb_remote(incoming, &mut c);
            }
            engine.finalize_insertion_stats(&mut c);
        }
        {
            let _p = tracer.span(Phase::Process, step as u32);
            engine.process(&mut c);
        }
        {
            let _u = tracer.span(Phase::Update, step as u32);
            engine.update(&mut c);
        }
        hb.tick();
        hb_count += 1;
        c.heartbeats = hb_count;

        let vectorized = config.vectorized && P::SIMD_REDUCIBLE;
        let times = cost.step_times(&c, config.gen_mode(&spec), P::Msg::SIZE, vectorized);
        // Advertised step time: the simulated compute time, inflated by the
        // straggler model when a SlowDevice fault has latched.
        let adv = times.total * if slowed { fcfg.slow_time_factor } else { 1.0 };
        sim_adv_total += adv;

        // Symmetric straggler detection: at this barrier every rank saw the
        // identical N-vector of previous-step times (its own plus each
        // peer's piggybacked advertisement), so all ranks maintain the same
        // consecutive-slow counter and leave at the same barrier when it
        // trips. The devices are *naturally* asymmetric, so raw times are
        // useless — the first fully-populated barrier calibrates the
        // healthy per-rank baselines, and a straggler is a max/min drift of
        // the normalized times beyond `slow_factor`. The N = 2 drift
        // equals the old pairwise `max(cur/base, base/cur)`.
        if rebalance_enabled && fcfg.rebalance_after > 0 {
            let mut t = vec![0.0f64; membership.len()];
            t[my_pos] = prev_adv;
            for &(peer, pt) in &peer_times {
                if let Some(i) = membership.iter().position(|&r| r == peer) {
                    t[i] = pt;
                }
            }
            if t.iter().all(|&x| x > 0.0) {
                match &base_times {
                    None => base_times = Some(t),
                    Some(base) => {
                        let mut lo = f64::INFINITY;
                        let mut hi = 0.0f64;
                        for (x, b) in t.iter().zip(base) {
                            let norm = x / b;
                            lo = lo.min(norm);
                            hi = hi.max(norm);
                        }
                        if hi / lo > fcfg.slow_factor {
                            consec_slow += 1;
                        } else {
                            consec_slow = 0;
                        }
                    }
                }
            }
        }
        prev_adv = adv;

        // The barrier after update is the consistency point: snapshot the
        // state step `step + 1` will start from, into this rank's store.
        if policy.is_checkpoint_step(step as u64 + 1) {
            let ck0 = Instant::now();
            let _ck = tracer.span(Phase::Checkpoint, step as u32);
            write_device_checkpoint(
                &engine,
                step,
                store,
                &policy,
                config.fault_plan.as_ref(),
                dev,
                &mut c,
            );
            config.record_hist(
                HistKind::CheckpointWriteUs,
                ck0.elapsed().as_micros() as u64,
            );
        }
        c.gen_chunks.clear();
        c.proc_chunks.clear();
        steps.push(StepReport {
            step,
            times,
            comm_time,
            wall: t0.elapsed().as_secs_f64(),
            counters: c,
        });

        // Global termination: nobody generated messages this superstep.
        if !my_any && !peer_any {
            break 'run;
        }
        if rebalance_enabled && fcfg.rebalance_after > 0 && consec_slow >= fcfg.rebalance_after {
            exit = LoopExit::Rebalance { step };
            break 'run;
        }
        step += 1;
    }

    // A rank that crashed or hung never reports itself finished — that is
    // exactly the silence the watchdog is built to notice.
    if !matches!(exit, LoopExit::Crashed { .. } | LoopExit::Hung { .. }) {
        finished.store(true, Ordering::Release);
    }
    let flags = engine.active_flags().to_vec();
    LoopOut {
        values: engine.values,
        flags,
        steps,
        exit,
        slowed,
        sim_adv_total,
        integ,
    }
}

/// The watchdog: polls every rank's heartbeat against the deadline and
/// records the detection latency (milliseconds past the deadline) for any
/// rank that goes silent without reporting itself finished.
fn watchdog_loop(
    hb: &[Heartbeat],
    finished: &[AtomicBool],
    stop: &AtomicBool,
    deadline: Duration,
    detected: &[AtomicU64],
    ranks: &[usize],
    trace: Option<&Trace>,
) {
    let tracer = match trace {
        Some(t) => t.thread("watchdog", 9000),
        None => ThreadTracer::disabled(),
    };
    let poll = (deadline / 8).clamp(Duration::from_millis(1), Duration::from_millis(25));
    while !stop.load(Ordering::Acquire) {
        let sweep0 = tracer.now_ns();
        for (d, h) in hb.iter().enumerate() {
            if finished[d].load(Ordering::Acquire)
                || detected[d].load(Ordering::Acquire) != UNDETECTED
            {
                continue;
            }
            if h.is_stalled(deadline) {
                let lat = h.since_last().saturating_sub(deadline).as_millis() as u64;
                detected[d].store(lat, Ordering::Release);
                // One Watchdog span per detection (the sweep that noticed
                // the silence), tagged with the dead rank's id.
                tracer.record_closing(Phase::Watchdog, ranks[d] as u32, sweep0);
                if let Some(t) = trace {
                    t.record_hist(HistKind::WatchdogLatencyMs, lat);
                }
            }
        }
        std::thread::sleep(poll);
    }
}

/// Lockstep replay of an arbitrary membership on one host. Every
/// `membership` rank's engine runs with its original spec/config and the
/// given assignment, restored from the merged barrier state; messages are
/// bucketed and combined per (source, destination) pair exactly as the
/// live per-link exchange does. Every per-engine operation (generation
/// order, per-destination combine, CSB insertion, reduction) is identical
/// to the healthy multi-thread run, so the replay is bit-identical by
/// construction — including order-sensitive floating-point combiners.
/// Simulated exchange time is reproduced from the same per-link byte
/// counts through the same link model.
///
/// With `stop_step = None` the replay runs to completion (terminal
/// single-survivor migration); with `Some(s)` it stops at the barrier
/// *before* step `s` (catch-up reconstruction for an elastic eviction).
/// Returns the merged values, merged active flags, and the per-rank step
/// reports keyed by original rank id.
#[allow(clippy::too_many_arguments)]
fn replay_lockstep_n<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    assign: &[u8],
    membership: &[usize],
    specs: &[DeviceSpec],
    configs: &[EngineConfig],
    link: PcieLink,
    start_step: usize,
    stop_step: Option<usize>,
    resume: ResumePair<P::Value>,
    stores: &[Mutex<&mut dyn CheckpointStore>],
    cap: usize,
    tracer: &ThreadTracer,
) -> ReplayOut<P::Value>
where
    P::Value: PodState,
{
    let m = membership.len();
    let cost: Vec<CostModel> = membership
        .iter()
        .map(|&r| CostModel::new(specs[r].clone()))
        .collect();
    let mut engines: Vec<DeviceEngine<'_, P>> = membership
        .iter()
        .map(|&r| {
            DeviceEngine::new(
                program,
                graph,
                specs[r].clone(),
                configs[r].clone(),
                r as u8,
                Some(assign),
            )
        })
        .collect();
    if let Some((vals, flags)) = resume {
        for e in &mut engines {
            e.restore(vals.clone(), &flags);
        }
    }
    let policy = configs[membership[0]].recovery;
    let mut pos_of = vec![usize::MAX; membership.iter().copied().max().unwrap_or(0) + 1];
    for (i, &r) in membership.iter().enumerate() {
        pos_of[r] = i;
    }
    let mut steps: Vec<Vec<StepReport>> = vec![Vec::new(); m];
    let stop = stop_step.unwrap_or(cap);

    for step in start_step..stop {
        let t0 = Instant::now();
        let _replay_span = tracer.span(Phase::Replay, step as u32);
        let mut counters: Vec<StepCounters> = Vec::with_capacity(m);
        let mut remotes: Vec<Vec<WireMsg<P::Msg>>> = Vec::with_capacity(m);
        for e in engines.iter_mut() {
            let mut c = e.begin_step();
            let r = e.generate(&mut c);
            c.remote_before_combine = r.len() as u64;
            counters.push(c);
            remotes.push(r);
        }
        // Bucket and combine per (source, destination) pair — the same
        // per-link payloads the live loop exchanges (the self bucket is
        // empty by construction).
        let mut out: Vec<Vec<Vec<WireMsg<P::Msg>>>> = Vec::with_capacity(m);
        for (i, remote) in remotes.into_iter().enumerate() {
            let mut buckets: Vec<Vec<WireMsg<P::Msg>>> = (0..m).map(|_| Vec::new()).collect();
            for msg in remote {
                buckets[pos_of[assign[msg.dst as usize] as usize]].push(msg);
            }
            let mut row = Vec::with_capacity(m);
            for b in buckets {
                let (combined, _) = combine_messages::<P::Msg, P::Reduce>(b);
                counters[i].remote_after_combine += combined.len() as u64;
                row.push(combined);
            }
            out.push(row);
        }
        // Per-rank simulated comm: one link traversal per peer, the same
        // byte counts and link model as the live per-link exchange.
        let mut comm_times = vec![0.0f64; m];
        for i in 0..m {
            let mut bytes = 0u64;
            let mut t = 0.0f64;
            for (j, row_j) in out.iter().enumerate() {
                if j == i {
                    continue;
                }
                let bo = wire_bytes::<P::Msg>(out[i][j].len());
                let bi = wire_bytes::<P::Msg>(row_j[i].len());
                bytes += bo + bi;
                t += link.exchange_time(bo, bi);
            }
            counters[i].comm_bytes = bytes;
            comm_times[i] = t;
        }
        // Absorb in ascending peer order (the live loop's link order),
        // then the per-engine tail phases.
        for i in 0..m {
            let c = &mut counters[i];
            for (j, row) in out.iter().enumerate() {
                if j != i {
                    engines[i].absorb_remote(&row[i], c);
                }
            }
            engines[i].finalize_insertion_stats(c);
            engines[i].process(c);
            engines[i].update(c);
            // Report parity with the live loop's four phase-boundary ticks.
            c.heartbeats = 4;
        }

        if policy.is_checkpoint_step(step as u64 + 1) {
            for (i, &r) in membership.iter().enumerate() {
                write_device_checkpoint(
                    &engines[i],
                    step,
                    &stores[r],
                    &policy,
                    None,
                    r as u8,
                    &mut counters[i],
                );
            }
        }

        let wall = t0.elapsed().as_secs_f64();
        let mut all_quiet = true;
        for (i, mut c) in counters.into_iter().enumerate() {
            let r = membership[i];
            if c.msgs_total() > 0 {
                all_quiet = false;
            }
            let vectorized = configs[r].vectorized && P::SIMD_REDUCIBLE;
            let times =
                cost[i].step_times(&c, configs[r].gen_mode(&specs[r]), P::Msg::SIZE, vectorized);
            c.gen_chunks.clear();
            c.proc_chunks.clear();
            steps[i].push(StepReport {
                step,
                times,
                comm_time: comm_times[i],
                wall,
                counters: c,
            });
        }
        if all_quiet {
            break;
        }
    }

    let mut merged: Option<(Vec<P::Value>, Vec<u8>)> = None;
    for (i, e) in engines.into_iter().enumerate() {
        let f = e.active_flags().to_vec();
        let v = e.values;
        match &mut merged {
            None => merged = Some((v, f)),
            Some((vals, flags)) => {
                let rd = membership[i] as u8;
                for (x, val) in v.into_iter().enumerate() {
                    if assign[x] == rd {
                        vals[x] = val;
                        flags[x] = f[x];
                    }
                }
            }
        }
    }
    let (values, flags) = merged.expect("membership is never empty");
    (
        values,
        flags,
        membership.iter().copied().zip(steps).collect(),
    )
}

/// Run `program` across an N-rank device fabric with live failover.
///
/// Behaves exactly like [`run_ranks`] when nothing fails. Each rank writes
/// barrier snapshots into its own `stores` slot at the
/// `configs[0].recovery.checkpoint_every` cadence. On a detected rank loss
/// the driver applies `fcfg.policy`: under `Migrate` the dead ranks are
/// evicted and their partition re-split over the survivors (a lone
/// survivor replays everything in lockstep; two or more survivors
/// reconstruct the failure barrier and continue live, so later failures
/// cascade onto any survivor subset). A severed link evicts its higher
/// end. A dropped exchange rolls every rank back to the newest common
/// snapshot, and a detected straggler rebalances the live shares once.
/// With `resume = true` the run starts from the newest snapshot common to
/// all stores.
///
/// All liveness events land in the combined report's
/// [`RunReport::failover`] and per-step counters; rollback/degradation
/// accounting stays in [`RunReport::recovery`].
///
/// [`run_ranks`]: crate::engine::hetero::run_ranks
#[allow(clippy::too_many_arguments)]
pub fn run_ranks_failover<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    partition_in: &DevicePartition,
    specs: &[DeviceSpec],
    configs: &[EngineConfig],
    link: PcieLink,
    fcfg: &FailoverConfig,
    stores: Vec<&mut dyn CheckpointStore>,
    resume: bool,
) -> RunOutput<P::Value>
where
    P::Value: PodState,
{
    let n = specs.len();
    assert!(n >= 2, "a rank fabric needs at least two devices");
    assert_eq!(configs.len(), n, "one config per rank");
    assert_eq!(stores.len(), n, "one checkpoint store per rank");
    assert_eq!(partition_in.assign.len(), graph.num_vertices());
    assert!(
        partition_in.assign.iter().all(|&d| (d as usize) < n),
        "partition names a rank outside the fabric"
    );
    let policy = configs[0].recovery;
    let cap = run_cap(
        program.max_supersteps(),
        configs.iter().filter_map(|c| c.max_supersteps).min(),
    );
    let stores: Vec<Mutex<&mut dyn CheckpointStore>> = stores.into_iter().map(Mutex::new).collect();
    let deadline = fcfg.deadline();

    let mut fstats = FailoverStats::default();
    let mut rstats = RecoveryStats::default();
    let mut istats = IntegrityStats::default();
    let mut part = partition_in.clone();
    let mut live: Vec<usize> = (0..n).collect();
    let mut dev_steps: Vec<Vec<StepReport>> = vec![Vec::new(); n];
    let mut start_step = 0usize;
    let mut resume_state: ResumePair<P::Value> = None;
    let mut slowed = vec![false; n];
    let mut rebalance_enabled = true;
    let mut retry = 0u32;
    let mut last_resume: Option<usize> = None;
    // Driver-thread track: migration replays and rebalances happen here,
    // outside any rank loop.
    let drv_tracer = configs[0].tracer("driver", 900);
    let wall_start = Instant::now();

    if resume {
        if let Some((k, vals, flags)) = load_merged::<P>(&stores, &live, &part.assign, &mut rstats)
        {
            start_step = k;
            resume_state = Some((vals, flags));
        }
    }

    // Assemble the final combined output from per-rank step report vecs
    // (ragged after evictions: an evicted rank's reports simply stop at
    // its eviction barrier).
    let finish = |dev_steps: Vec<Vec<StepReport>>,
                  values: Vec<P::Value>,
                  mut rstats: RecoveryStats,
                  mut fstats: FailoverStats,
                  istats: IntegrityStats,
                  last_resume: Option<usize>,
                  wall: f64|
     -> RunOutput<P::Value> {
        let total = dev_steps
            .iter()
            .filter_map(|s| s.last())
            .map(|s| s.step as u64 + 1)
            .max()
            .unwrap_or(0);
        fstats.supersteps_total = total;
        if let Some(k) = last_resume {
            fstats.resume_step = k as u64;
            fstats.supersteps_replayed = total.saturating_sub(k as u64);
        }
        rstats.checkpoints_written += dev_steps
            .iter()
            .flatten()
            .map(|s| s.counters.checkpoints_written)
            .sum::<u64>();
        rstats.checkpoint_bytes += dev_steps
            .iter()
            .flatten()
            .map(|s| s.counters.checkpoint_bytes)
            .sum::<u64>();
        let reports: Vec<RunReport> = dev_steps
            .into_iter()
            .enumerate()
            .map(|(r, steps)| RunReport {
                app: P::NAME.to_string(),
                device: specs[r].name.to_string(),
                mode: "cpu-mic".to_string(),
                steps,
                wall,
                ..Default::default()
            })
            .collect();
        let mut report = combine_ranks(P::NAME, &reports);
        report.recovery = rstats;
        report.failover = fstats;
        report.integrity = istats;
        RunOutput {
            values,
            report,
            device_reports: reports,
        }
    };

    // Degrade to the sequential engine on one rank from the last barrier.
    macro_rules! degrade_seq {
        ($survivor:expr) => {{
            rstats.degraded = true;
            fstats.degraded_single = true;
            let merged = load_merged::<P>(&stores, &live, &part.assign, &mut rstats);
            if let Some((k, _, _)) = &merged {
                last_resume = Some(*k);
            }
            let sd: usize = $survivor;
            let mut out = run_seq_resume(program, graph, specs[sd].clone(), &configs[sd], merged);
            fstats.supersteps_total = out.report.steps.last().map_or(0, |s| s.step as u64 + 1);
            if let Some(k) = last_resume {
                fstats.resume_step = k as u64;
                fstats.supersteps_replayed = fstats.supersteps_total.saturating_sub(k as u64);
            }
            out.report.recovery = rstats;
            out.report.failover = fstats;
            out.report.integrity.accumulate(&istats);
            return out;
        }};
    }

    loop {
        let assign_now = part.assign.clone();
        let m = live.len();
        let hb: Vec<Heartbeat> = (0..m).map(|_| Heartbeat::new()).collect();
        let finished: Vec<AtomicBool> = (0..m).map(|_| AtomicBool::new(false)).collect();
        let detected: Vec<AtomicU64> = (0..m).map(|_| AtomicU64::new(UNDETECTED)).collect();
        let stop = AtomicBool::new(false);
        let sides = mesh::<WireMsg<P::Msg>>(link, &live);
        let mut resume_now = resume_state.take();

        let outs: Vec<LoopOut<P>> = std::thread::scope(|s| {
            let assign = &assign_now;
            let membership = &live;
            let stores_ref = &stores;
            let finished_ref = &finished;
            let handles: Vec<_> = sides
                .into_iter()
                .enumerate()
                .map(|(i, eps)| {
                    let r = membership[i];
                    let spec = specs[r].clone();
                    let config = configs[r].clone();
                    let hb_i = hb[i].clone();
                    let resume_i = if i + 1 == m {
                        resume_now.take()
                    } else {
                        resume_now.clone()
                    };
                    let slowed_i = slowed[r];
                    s.spawn(move || {
                        failover_rank_loop(
                            program,
                            graph,
                            assign,
                            r,
                            spec,
                            config,
                            eps,
                            cap,
                            start_step,
                            resume_i,
                            &stores_ref[r],
                            fcfg,
                            hb_i,
                            &finished_ref[i],
                            slowed_i,
                            rebalance_enabled,
                            membership,
                        )
                    })
                })
                .collect();
            let w = s.spawn(|| {
                watchdog_loop(
                    &hb,
                    &finished,
                    &stop,
                    deadline,
                    &detected,
                    membership,
                    configs[0].trace.as_ref(),
                )
            });
            let outs: Vec<LoopOut<P>> = handles
                .into_iter()
                .map(|h| h.join().expect("rank loop panicked"))
                .collect();
            stop.store(true, Ordering::Release);
            w.join().expect("watchdog panicked");
            outs
        });

        // Plain-data exits; splice this attempt's step reports in and keep
        // the per-rank state the driver needs after the scope.
        let mut exits: Vec<ExitKind> = Vec::with_capacity(m);
        let mut vals_out: Vec<Vec<P::Value>> = Vec::with_capacity(m);
        let mut flags_out: Vec<Vec<u8>> = Vec::with_capacity(m);
        let mut sim_adv: Vec<f64> = Vec::with_capacity(m);
        for (i, o) in outs.into_iter().enumerate() {
            let r = live[i];
            exits.push(o.exit.kind());
            slowed[r] = o.slowed;
            istats.accumulate(&o.integ);
            sim_adv.push(o.sim_adv_total);
            dev_steps[r].retain(|s| s.step < start_step);
            dev_steps[r].extend(o.steps);
            vals_out.push(o.values);
            flags_out.push(o.flags);
        }

        // Watchdog bookkeeping: record the detection latency for every
        // rank that actually went silent (final sweep covers the race
        // where all loops returned before the poller's next pass).
        for (i, e) in exits.iter().enumerate() {
            if e.lost() {
                let lat = match detected[i].load(Ordering::Acquire) {
                    UNDETECTED => hb[i].since_last().saturating_sub(deadline).as_millis() as u64,
                    l => l,
                };
                fstats.watchdog_latency_ms = fstats.watchdog_latency_ms.max(lat);
            }
        }

        // Eviction verdict: self-reported crash/hang exits mark their rank
        // lost; otherwise a reported link partition evicts exactly its
        // higher end (verdict sync — survivors re-anchor on the smallest
        // live rank). `PeerDead`/`PeerTimeout` observations from healthy
        // ranks never evict anyone on their own.
        let lost: Vec<usize> = exits
            .iter()
            .enumerate()
            .filter(|(_, e)| e.lost())
            .map(|(i, _)| live[i])
            .collect();
        let linkpart = exits.iter().find_map(|e| match e {
            ExitKind::LinkPartitioned(s, _, hi) => Some((*s, *hi as usize)),
            _ => None,
        });
        let evict: Option<(Vec<usize>, usize)> = if !lost.is_empty() {
            let mut s_star = usize::MAX;
            for e in &exits {
                match e {
                    ExitKind::Crashed(s) => {
                        fstats.crash_detections += 1;
                        rstats.faults_injected += 1;
                        s_star = s_star.min(*s);
                    }
                    ExitKind::Hung(s) => {
                        fstats.hang_detections += 1;
                        rstats.faults_injected += 1;
                        s_star = s_star.min(*s);
                    }
                    ExitKind::PeerTimeout(..) => fstats.exchange_timeouts += 1,
                    _ => {}
                }
            }
            Some((lost, s_star))
        } else if let Some((s, hi)) = linkpart {
            fstats.link_partitions += 1;
            rstats.faults_injected += 1;
            Some((vec![hi], s))
        } else {
            None
        };

        if let Some((evict_set, s_star)) = evict {
            let survivors: Vec<usize> = live
                .iter()
                .copied()
                .filter(|r| !evict_set.contains(r))
                .collect();
            if survivors.is_empty() {
                // Every rank gone: nothing to migrate onto. Degrade to a
                // sequential run from the last barrier.
                degrade_seq!(live[0]);
            }
            match fcfg.policy {
                FailoverPolicy::Migrate => {
                    fstats.migrations += 1;
                    rstats.rollbacks += 1;
                    for &r in &evict_set {
                        fstats.evicted_ranks |= 1u64 << r;
                    }
                    let merged = load_merged::<P>(&stores, &live, &part.assign, &mut rstats);
                    let (k, pair) = match merged {
                        Some((k, vals, flags)) => (k, Some((vals, flags))),
                        None => (0, None),
                    };
                    last_resume = Some(k);
                    if survivors.len() == 1 {
                        // Terminal: the lone survivor hosts every current
                        // engine in lockstep with the *current* assignment
                        // so each engine half reduces in its original
                        // order — that is what makes the result
                        // bit-identical.
                        fstats.degraded_single = true;
                        let _mig = drv_tracer.span(Phase::Migrate, k as u32);
                        let (values, _flags, replay) = replay_lockstep_n(
                            program,
                            graph,
                            &part.assign,
                            &live,
                            specs,
                            configs,
                            link,
                            k,
                            None,
                            pair,
                            &stores,
                            cap,
                            &drv_tracer,
                        );
                        for (r, rs) in replay {
                            dev_steps[r].retain(|s| s.step < k);
                            dev_steps[r].extend(rs);
                        }
                        return finish(
                            dev_steps,
                            values,
                            rstats,
                            fstats,
                            istats,
                            last_resume,
                            wall_start.elapsed().as_secs_f64(),
                        );
                    }
                    // Elastic: two or more survivors. Reconstruct the exact
                    // barrier state at the failure step s* (catch-up replay
                    // under the old assignment when the newest common
                    // snapshot is older), then re-split the dead ranks'
                    // partition over the survivors and continue live —
                    // later failures cascade through this same arm.
                    let _mig = drv_tracer.span(Phase::Migrate, s_star as u32);
                    let caught_up: ResumePair<P::Value> = if k < s_star {
                        let (v, f, replay) = replay_lockstep_n(
                            program,
                            graph,
                            &part.assign,
                            &live,
                            specs,
                            configs,
                            link,
                            k,
                            Some(s_star),
                            pair,
                            &stores,
                            cap,
                            &drv_tracer,
                        );
                        for (r, rs) in replay {
                            dev_steps[r].retain(|s| s.step < k);
                            dev_steps[r].extend(rs);
                        }
                        Some((v, f))
                    } else {
                        pair
                    };
                    part = part.redistribute(&evict_set, &survivors);
                    live = survivors;
                    start_step = s_star;
                    match caught_up {
                        Some((vals, flags)) => {
                            // Older snapshots were written under the stale
                            // assignment: replace them with the barrier
                            // state the survivors resume from.
                            reset_stores_with::<P>(&stores, &live, s_star, &vals, &flags);
                            resume_state = Some((vals, flags));
                        }
                        None => {
                            // Failure at step 0 before any snapshot:
                            // restart fresh on the survivor subset.
                            for &r in &live {
                                let mut st = stores[r].lock().expect("checkpoint store poisoned");
                                for key in st.list() {
                                    let _ = st.remove(key);
                                }
                            }
                            resume_state = None;
                        }
                    }
                    continue;
                }
                FailoverPolicy::Retry => {
                    // Transient-fault model: roll every rank back to the
                    // newest common barrier and retry in lock-step with the
                    // membership unchanged.
                    rstats.rollbacks += 1;
                    if retry >= policy.max_retries {
                        degrade_seq!(survivors[0]);
                    }
                    retry += 1;
                    rstats.retries += 1;
                    let backoff = policy.backoff_ms(retry - 1);
                    if backoff > 0 {
                        std::thread::sleep(Duration::from_millis(backoff));
                    }
                    match load_merged::<P>(&stores, &live, &part.assign, &mut rstats) {
                        Some((k, vals, flags)) => {
                            start_step = k;
                            resume_state = Some((vals, flags));
                            last_resume = Some(k);
                        }
                        None => {
                            start_step = 0;
                            resume_state = None;
                            last_resume = Some(0);
                        }
                    }
                    continue;
                }
                FailoverPolicy::Off => degrade_seq!(survivors[0]),
            }
        }

        if exits.iter().all(|e| matches!(e, ExitKind::Done)) {
            let mut it = vals_out.into_iter();
            let mut values = it.next().expect("at least one rank");
            for (i, v) in it.enumerate() {
                let rd = live[i + 1] as u8;
                for (x, val) in v.into_iter().enumerate() {
                    if assign_now[x] == rd {
                        values[x] = val;
                    }
                }
            }
            return finish(
                dev_steps,
                values,
                rstats,
                fstats,
                istats,
                last_resume,
                wall_start.elapsed().as_secs_f64(),
            );
        }

        if exits.iter().all(|e| matches!(e, ExitKind::Rebalance(_))) {
            let sr = match exits[0] {
                ExitKind::Rebalance(s) => s,
                _ => unreachable!(),
            };
            debug_assert!(
                exits
                    .iter()
                    .all(|e| matches!(e, ExitKind::Rebalance(s) if *s == sr)),
                "rebalance barriers must agree: {exits:?}"
            );
            let _rb = drv_tracer.span(Phase::Rebalance, sr as u32);
            fstats.rebalances += 1;
            // Merge live state at the barrier under the old assignment.
            let mut it = vals_out.into_iter().zip(flags_out);
            let (mut vals, mut flags) = it.next().expect("at least one rank");
            for (i, (v, f)) in it.enumerate() {
                let rd = live[i + 1] as u8;
                for (x, val) in v.into_iter().enumerate() {
                    if assign_now[x] == rd {
                        vals[x] = val;
                        flags[x] = f[x];
                    }
                }
            }
            // New shares proportional to the live ranks' observed
            // throughputs (dead ranks keep a zero share); re-derive the
            // partition with the same scheme.
            let live_shares =
                Shares::new(live.iter().map(|&r| part.shares.part(r).max(1)).collect());
            let rebal = live_shares.rebalanced(&sim_adv);
            let mut parts = vec![0u32; part.shares.num_ranks()];
            for (i, &r) in live.iter().enumerate() {
                parts[r] = rebal.part(i);
            }
            part = partition_n(graph, part.scheme, &Shares::new(parts), REBALANCE_SEED);
            // Older snapshots were written under the stale assignment:
            // replace them with the merged barrier state.
            start_step = sr + 1;
            reset_stores_with::<P>(&stores, &live, start_step, &vals, &flags);
            resume_state = Some((vals, flags));
            rebalance_enabled = false; // one rebalance per run
            continue;
        }

        if exits.iter().any(|e| matches!(e, ExitKind::ExchangeDrop(_))) {
            // A dropped exchange is observed by both ends of the faulted
            // link at the same barrier; other ranks see dead links as the
            // pair tears down. Roll everyone back together.
            fstats.exchange_drops += 1;
            rstats.faults_injected += 1;
            rstats.rollbacks += 1;
            if retry >= policy.max_retries {
                degrade_seq!(live[0]);
            }
            retry += 1;
            rstats.retries += 1;
            let backoff = policy.backoff_ms(retry - 1);
            if backoff > 0 {
                std::thread::sleep(Duration::from_millis(backoff));
            }
            match load_merged::<P>(&stores, &live, &part.assign, &mut rstats) {
                Some((k, vals, flags)) => {
                    start_step = k;
                    resume_state = Some((vals, flags));
                    last_resume = Some(k);
                }
                None => {
                    start_step = 0;
                    resume_state = None;
                    last_resume = Some(0);
                }
            }
            continue;
        }

        // Any remaining mix (peer-dead/timeout without a lost rank or a
        // reported partition) is a race we cannot attribute; degrade
        // rather than guess.
        debug_assert!(false, "inconsistent rank exits: {exits:?}");
        degrade_seq!(live[0]);
    }
}

/// Run `program` across both devices with live failover — the N = 2 form
/// of [`run_ranks_failover`], kept for the classic CPU+MIC topology.
#[allow(clippy::too_many_arguments)]
pub fn run_hetero_failover<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    partition_in: &DevicePartition,
    specs: [DeviceSpec; 2],
    configs: [EngineConfig; 2],
    link: PcieLink,
    fcfg: &FailoverConfig,
    stores: [&mut dyn CheckpointStore; 2],
    resume: bool,
) -> RunOutput<P::Value>
where
    P::Value: PodState,
{
    let [s0, s1] = stores;
    run_ranks_failover(
        program,
        graph,
        partition_in,
        &specs,
        &configs,
        link,
        fcfg,
        vec![s0, s1],
        resume,
    )
}

fn _assert_send<T: Send>() {}
const _: () = {
    fn _check() {
        _assert_send::<Heartbeat>();
    }
};
