//! Live device failover for the heterogeneous CPU-MIC engine.
//!
//! The plain hetero drivers assume both devices survive the whole run;
//! [`run_hetero_recovering`] treats any fault as a whole-run retry. Real
//! heterogeneous deployments lose or stall *one* device far more often than
//! both, so this driver degrades gracefully instead:
//!
//! * **Liveness**: each device ticks a [`Heartbeat`] at every phase
//!   boundary, a watchdog thread polls those beacons against the configured
//!   deadline, and every exchange uses the timeout-capable
//!   [`Endpoint::try_exchange_deadline`] — nothing in this driver blocks
//!   unboundedly.
//! * **Detection**: a crashed device tears its link endpoint down (the
//!   survivor sees `PeerDead` immediately); a hung device keeps the channel
//!   alive but goes silent (the survivor sees `ExchangeTimeout` after the
//!   deadline, and the watchdog records the detection latency).
//! * **Migration** (the default policy): the survivor loads the newest
//!   valid barrier snapshot common to both per-device stores, remaps the
//!   lost device's partition onto itself, and replays from that barrier in
//!   degraded single-host mode. The replay hosts *both* device engines in
//!   lockstep with their original configs and the original partition, so
//!   every per-engine reduction order is preserved and the result is
//!   bit-identical to a fault-free run — even for order-sensitive `f32`
//!   combiners.
//! * **Rebalancing**: a device that merely *slows down* (a straggler, not a
//!   corpse) is detected from the per-superstep simulated step times the
//!   devices piggyback on every exchange; after `rebalance_after`
//!   consecutive lopsided steps both sides leave the loop at the same
//!   barrier and the partition is re-derived at a ratio proportional to the
//!   observed throughputs.
//! * **Rollback**: a dropped exchange (both sides observe it at the same
//!   barrier) rolls both devices back to the newest common snapshot and
//!   replays — bounded by the retry budget — instead of restarting the
//!   whole run.
//!
//! [`run_hetero_recovering`]: crate::engine::hetero::run_hetero_recovering

use crate::api::VertexProgram;
use crate::engine::config::EngineConfig;
use crate::engine::device::DeviceEngine;
use crate::engine::flat::run_cap;
use crate::engine::integrity::framed_exchange;
use crate::engine::seq::run_seq_resume;
use crate::metrics::{combine_hetero, RunOutput, RunReport, StepReport};
use phigraph_comm::message::wire_bytes;
use phigraph_comm::{combine_messages, duplex_pair, Endpoint, ExchangeError, PcieLink, WireMsg};
use phigraph_device::{CostModel, DeviceSpec, Heartbeat, StepCounters};
use phigraph_graph::state::{decode_state_slice, encode_state_slice, PodState};
use phigraph_graph::Csr;
use phigraph_partition::{partition, DevicePartition};
use phigraph_recover::{
    CheckpointStore, FailoverConfig, FailoverPolicy, FailoverStats, FaultInjector, FaultKind,
    IntegrityStats, RecoveryPolicy, RecoveryStats, Snapshot,
};
use phigraph_simd::MsgValue;
use phigraph_trace::{HistKind, Phase, ThreadTracer, Trace};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Seed for straggler-driven re-partitioning (matches the CLI default).
const REBALANCE_SEED: u64 = 7;

/// Sentinel for "not detected" in the watchdog's latency slots.
const UNDETECTED: u64 = u64::MAX;

/// How one device loop ended. `Hung` keeps the link endpoint alive inside
/// the variant so the peer observes a *silent* (timeout) failure rather
/// than a dead channel — exactly the difference between a hang and a crash.
enum LoopExit<M: Send> {
    /// Global termination (or superstep cap) reached.
    Done,
    /// An injected `CrashDevice` fault: the endpoint is torn down.
    Crashed { step: usize },
    /// An injected `HangDevice` fault: the endpoint stays alive but silent.
    Hung {
        step: usize,
        _keep_alive: Endpoint<WireMsg<M>>,
    },
    /// The peer's endpoint disappeared (peer crashed).
    PeerDead { step: usize },
    /// The peer went silent past the deadline (peer hung).
    PeerTimeout { step: usize, waited_ms: u64 },
    /// The exchange was dropped on the link (both sides observe this).
    ExchangeDrop { step: usize },
    /// Straggler threshold reached; both sides leave at the same barrier.
    Rebalance { step: usize },
}

/// Plain-data view of [`LoopExit`] (drops the kept-alive endpoint).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ExitKind {
    Done,
    Crashed(usize),
    Hung(usize),
    PeerDead(usize),
    PeerTimeout(usize, u64),
    ExchangeDrop(usize),
    Rebalance(usize),
}

impl ExitKind {
    fn lost(&self) -> bool {
        matches!(self, ExitKind::Crashed(_) | ExitKind::Hung(_))
    }
}

/// Everything one device loop hands back to the driver.
struct LoopOut<P: VertexProgram> {
    values: Vec<P::Value>,
    flags: Vec<u8>,
    steps: Vec<StepReport>,
    exit: LoopExit<P::Msg>,
    /// Whether a `SlowDevice` fault latched on this device (persists across
    /// restarts so the straggler stays slow after a rollback/rebalance).
    slowed: bool,
    /// Sum of the advertised (straggler-model) step times this attempt.
    sim_adv_total: f64,
    /// Frame-integrity counters from this device's exchanges.
    integ: IntegrityStats,
}

type ResumePair<V> = Option<(Vec<V>, Vec<u8>)>;
type MergedState<V> = (usize, Vec<V>, Vec<u8>);

/// Encode and save one device's barrier snapshot into its store, honoring
/// the keep window and the `CorruptCheckpoint` injection site.
fn write_device_checkpoint<P: VertexProgram>(
    engine: &DeviceEngine<'_, P>,
    step: usize,
    store: &Mutex<&mut dyn CheckpointStore>,
    policy: &RecoveryPolicy,
    injector: Option<&FaultInjector>,
    dev: u8,
    c: &mut StepCounters,
) where
    P::Value: PodState,
{
    let next_step = step as u64 + 1;
    let snap = Snapshot {
        superstep: next_step,
        app: P::NAME.to_string(),
        value_size: P::Value::STATE_SIZE as u16,
        values: encode_state_slice(&engine.values),
        active: engine.active_flags().to_vec(),
    };
    let mut bytes = snap.encode();
    if injector.is_some_and(|i| i.fire(step as u64, FaultKind::CorruptCheckpoint, dev)) {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let last = bytes.len() - 1;
        bytes[last] ^= 0xAA;
        c.faults_injected += 1;
    }
    let mut s = store.lock().expect("checkpoint store poisoned");
    if s.save(next_step, &bytes).is_ok() {
        c.checkpoints_written += 1;
        c.checkpoint_bytes += bytes.len() as u64;
        if policy.keep_snapshots > 0 {
            let _ = s.retain_newest(policy.keep_snapshots);
        }
    }
}

/// Load the newest barrier state valid in *both* per-device stores, merged
/// by `assign`. Corrupt or mismatched pairs are skipped (counted into
/// `rstats`) in favor of an older common barrier.
fn load_merged<P: VertexProgram>(
    stores: &[Mutex<&mut dyn CheckpointStore>; 2],
    assign: &[u8],
    rstats: &mut RecoveryStats,
) -> Option<MergedState<P::Value>>
where
    P::Value: PodState,
{
    let n = assign.len();
    let l0 = stores[0].lock().expect("store 0 poisoned").list();
    let l1 = stores[1].lock().expect("store 1 poisoned").list();
    let common: Vec<u64> = l0.iter().copied().filter(|s| l1.contains(s)).collect();
    for k in common.into_iter().rev() {
        let b0 = stores[0].lock().expect("store 0 poisoned").load(k);
        let b1 = stores[1].lock().expect("store 1 poisoned").load(k);
        let (Ok(b0), Ok(b1)) = (b0, b1) else {
            rstats.corrupt_snapshots_rejected += 1;
            continue;
        };
        let (Ok(s0), Ok(s1)) = (Snapshot::decode(&b0), Snapshot::decode(&b1)) else {
            rstats.corrupt_snapshots_rejected += 1;
            continue;
        };
        let valid = |s: &Snapshot| {
            s.app == P::NAME
                && s.value_size as usize == P::Value::STATE_SIZE
                && s.active.len() == n
                && s.superstep == k
        };
        if !valid(&s0) || !valid(&s1) {
            rstats.corrupt_snapshots_rejected += 1;
            continue;
        }
        let (Some(v0), Some(v1)) = (
            decode_state_slice::<P::Value>(&s0.values, n),
            decode_state_slice::<P::Value>(&s1.values, n),
        ) else {
            rstats.corrupt_snapshots_rejected += 1;
            continue;
        };
        let mut values = v0;
        let mut flags = s0.active.clone();
        for (v, val) in v1.into_iter().enumerate() {
            if assign[v] == 1 {
                values[v] = val;
                flags[v] = s1.active[v];
            }
        }
        return Some((k as usize, values, flags));
    }
    None
}

/// Clear both stores and save `state` as the single barrier snapshot in
/// each (used after a rebalance, when older snapshots were written under a
/// now-stale assignment).
fn reset_stores_with<P: VertexProgram>(
    stores: &[Mutex<&mut dyn CheckpointStore>; 2],
    step: usize,
    values: &[P::Value],
    flags: &[u8],
) where
    P::Value: PodState,
{
    let snap = Snapshot {
        superstep: step as u64,
        app: P::NAME.to_string(),
        value_size: P::Value::STATE_SIZE as u16,
        values: encode_state_slice(values),
        active: flags.to_vec(),
    };
    let bytes = snap.encode();
    for store in stores {
        let mut s = store.lock().expect("checkpoint store poisoned");
        for k in s.list() {
            let _ = s.remove(k);
        }
        let _ = s.save(step as u64, &bytes);
    }
}

/// One device's superstep loop with liveness instrumentation. Mirrors the
/// plain hetero loop phase-for-phase (so a fault-free failover run computes
/// exactly what `run_hetero` computes) and adds: heartbeat ticks at phase
/// boundaries, step-start crash/hang/slow injection sites, the
/// deadline-capable exchange, per-device barrier snapshots, and symmetric
/// straggler detection from the step times piggybacked on each exchange.
#[allow(clippy::too_many_arguments)]
fn failover_device_loop<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    assign: &[u8],
    dev: u8,
    spec: DeviceSpec,
    config: EngineConfig,
    ep: Endpoint<WireMsg<P::Msg>>,
    cap: usize,
    start_step: usize,
    resume: ResumePair<P::Value>,
    store: &Mutex<&mut dyn CheckpointStore>,
    fcfg: &FailoverConfig,
    hb: Heartbeat,
    finished: &AtomicBool,
    slowed_in: bool,
    rebalance_enabled: bool,
) -> LoopOut<P>
where
    P::Value: PodState,
{
    let policy = config.recovery;
    let cost = CostModel::new(spec.clone());
    let mut engine = DeviceEngine::new(
        program,
        graph,
        spec.clone(),
        config.clone(),
        dev,
        Some(assign),
    );
    if let Some((vals, flags)) = resume {
        engine.restore(vals, &flags);
    }
    let tracer = config.tracer(&format!("dev{dev}"), dev as u32 * 1000);
    let deadline = fcfg.deadline();
    let mut steps: Vec<StepReport> = Vec::new();
    let mut slowed = slowed_in;
    let mut prev_adv = 0.0f64;
    let mut base_ratio: Option<f64> = None;
    let mut consec_slow = 0u32;
    let mut sim_adv_total = 0.0f64;
    let mut integ = IntegrityStats::default();
    let mut exit = LoopExit::Done;

    let mut step = start_step;
    'run: while step < cap {
        hb.tick();
        let mut hb_count = 1u64;
        if let Some(inj) = &config.fault_plan {
            if inj.fire(step as u64, FaultKind::CrashDevice, dev) {
                // Fail-stop: tear the endpoint down so the peer's next
                // exchange observes a dead channel.
                drop(ep);
                exit = LoopExit::Crashed { step };
                break 'run;
            }
            if inj.fire(step as u64, FaultKind::HangDevice, dev) {
                // Hang: the device goes silent but its endpoint stays
                // alive; only a deadline can tell this apart from "slow".
                exit = LoopExit::Hung {
                    step,
                    _keep_alive: ep,
                };
                break 'run;
            }
            if inj.fire(step as u64, FaultKind::SlowDevice, dev) {
                slowed = true;
            }
        }
        let t0 = Instant::now();
        let _step_span = tracer.span(Phase::Superstep, step as u32);
        let mut c = engine.begin_step();
        let remote = {
            let _g = tracer.span(Phase::Generate, step as u32);
            engine.generate(&mut c)
        };
        hb.tick();
        hb_count += 1;
        c.remote_before_combine = remote.len() as u64;
        let (combined, _) = combine_messages::<P::Msg, P::Reduce>(remote);
        c.remote_after_combine = combined.len() as u64;
        let bytes_out = wire_bytes::<P::Msg>(combined.len());
        if let Some(inj) = &config.fault_plan {
            if inj.fire(step as u64, FaultKind::DropExchange, dev) {
                ep.inject_fault();
            }
        }
        let my_any = c.msgs_total() > 0;
        let x0 = Instant::now();
        let xspan = tracer.span(Phase::Exchange, step as u32);
        let res = framed_exchange(
            &ep,
            combined,
            bytes_out,
            my_any,
            prev_adv,
            Some(deadline),
            step as u64,
            dev,
            config.integrity,
            config.fault_plan.as_ref(),
            &mut integ,
        );
        drop(xspan);
        config.record_hist(HistKind::ExchangeRttUs, x0.elapsed().as_micros() as u64);
        hb.tick();
        hb_count += 1;
        let (incoming, peer, xstats) = match res {
            Ok(r) => r,
            Err(ExchangeError::Dropped(_)) => {
                exit = LoopExit::ExchangeDrop { step };
                break 'run;
            }
            Err(ExchangeError::Timeout(t)) => {
                exit = LoopExit::PeerTimeout {
                    step,
                    waited_ms: t.waited_ms,
                };
                break 'run;
            }
            Err(ExchangeError::PeerDead) => {
                exit = LoopExit::PeerDead { step };
                break 'run;
            }
        };
        c.comm_bytes = xstats.bytes_sent + xstats.bytes_recv;
        {
            let _i = tracer.span(Phase::Insert, step as u32);
            engine.absorb_remote(&incoming, &mut c);
            engine.finalize_insertion_stats(&mut c);
        }
        {
            let _p = tracer.span(Phase::Process, step as u32);
            engine.process(&mut c);
        }
        {
            let _u = tracer.span(Phase::Update, step as u32);
            engine.update(&mut c);
        }
        hb.tick();
        hb_count += 1;
        c.heartbeats = hb_count;

        let vectorized = config.vectorized && P::SIMD_REDUCIBLE;
        let times = cost.step_times(&c, config.gen_mode(&spec), P::Msg::SIZE, vectorized);
        // Advertised step time: the simulated compute time, inflated by the
        // straggler model when a SlowDevice fault has latched.
        let adv = times.total * if slowed { fcfg.slow_time_factor } else { 1.0 };
        sim_adv_total += adv;

        // Symmetric straggler detection: at this exchange both sides saw
        // the identical (mine, peer's) previous-step time pair, so both
        // maintain the same consecutive-slow counter and leave at the same
        // barrier when it trips. The CPU and the MIC are *naturally*
        // asymmetric, so raw times are useless — the first comparable
        // barrier calibrates the healthy ratio and a straggler is a drift
        // of more than `slow_factor` away from it. `max(cur/base, base/cur)`
        // is invariant under swapping (mine, peer), so both devices compute
        // the identical drift and trip at the same barrier.
        if rebalance_enabled && fcfg.rebalance_after > 0 && prev_adv > 0.0 && peer.step_time > 0.0 {
            let cur = prev_adv / peer.step_time;
            match base_ratio {
                None => base_ratio = Some(cur),
                Some(base) => {
                    if (cur / base).max(base / cur) > fcfg.slow_factor {
                        consec_slow += 1;
                    } else {
                        consec_slow = 0;
                    }
                }
            }
        }
        prev_adv = adv;

        // The barrier after update is the consistency point: snapshot the
        // state step `step + 1` will start from, into this device's store.
        if policy.is_checkpoint_step(step as u64 + 1) {
            let ck0 = Instant::now();
            let _ck = tracer.span(Phase::Checkpoint, step as u32);
            write_device_checkpoint(
                &engine,
                step,
                store,
                &policy,
                config.fault_plan.as_ref(),
                dev,
                &mut c,
            );
            config.record_hist(
                HistKind::CheckpointWriteUs,
                ck0.elapsed().as_micros() as u64,
            );
        }
        c.gen_chunks.clear();
        c.proc_chunks.clear();
        steps.push(StepReport {
            step,
            times,
            comm_time: xstats.sim_time,
            wall: t0.elapsed().as_secs_f64(),
            counters: c,
        });

        // Global termination: nobody generated messages this superstep.
        if !my_any && !peer.any_active {
            break 'run;
        }
        if rebalance_enabled && fcfg.rebalance_after > 0 && consec_slow >= fcfg.rebalance_after {
            exit = LoopExit::Rebalance { step };
            break 'run;
        }
        step += 1;
    }

    // A device that crashed or hung never reports itself finished — that is
    // exactly the silence the watchdog is built to notice.
    if !matches!(exit, LoopExit::Crashed { .. } | LoopExit::Hung { .. }) {
        finished.store(true, Ordering::Release);
    }
    let flags = engine.active_flags().to_vec();
    LoopOut {
        values: engine.values,
        flags,
        steps,
        exit,
        slowed,
        sim_adv_total,
        integ,
    }
}

/// The watchdog: polls both heartbeats against the deadline and records the
/// detection latency (milliseconds past the deadline) for any device that
/// goes silent without reporting itself finished.
fn watchdog_loop(
    hb: &[Heartbeat; 2],
    finished: &[AtomicBool; 2],
    stop: &AtomicBool,
    deadline: Duration,
    detected: &[AtomicU64; 2],
    trace: Option<&Trace>,
) {
    let tracer = match trace {
        Some(t) => t.thread("watchdog", 9000),
        None => ThreadTracer::disabled(),
    };
    let poll = (deadline / 8).clamp(Duration::from_millis(1), Duration::from_millis(25));
    while !stop.load(Ordering::Acquire) {
        let sweep0 = tracer.now_ns();
        for d in 0..2 {
            if finished[d].load(Ordering::Acquire)
                || detected[d].load(Ordering::Acquire) != UNDETECTED
            {
                continue;
            }
            if hb[d].is_stalled(deadline) {
                let lat = hb[d].since_last().saturating_sub(deadline).as_millis() as u64;
                detected[d].store(lat, Ordering::Release);
                // One Watchdog span per detection (the sweep that noticed
                // the silence), tagged with the dead device's id.
                tracer.record_closing(Phase::Watchdog, d as u32, sweep0);
                if let Some(t) = trace {
                    t.record_hist(HistKind::WatchdogLatencyMs, lat);
                }
            }
        }
        std::thread::sleep(poll);
    }
}

/// Degraded single-host replay after a migration: both device engines run
/// in lockstep on the survivor with the *original* partition and their
/// *original* configs, restored from the merged barrier state. Every
/// per-engine operation (generation order, per-destination combine, CSB
/// insertion, reduction) is identical to the healthy two-thread run, so the
/// replay is bit-identical by construction — including order-sensitive
/// floating-point combiners. Simulated exchange time is reproduced from the
/// same byte counts through the same link model.
#[allow(clippy::too_many_arguments)]
fn replay_lockstep<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    assign: &[u8],
    specs: &[DeviceSpec; 2],
    configs: &[EngineConfig; 2],
    link: PcieLink,
    start_step: usize,
    resume: ResumePair<P::Value>,
    stores: &[Mutex<&mut dyn CheckpointStore>; 2],
    cap: usize,
    tracer: &ThreadTracer,
) -> (Vec<P::Value>, [Vec<StepReport>; 2])
where
    P::Value: PodState,
{
    let cost = [
        CostModel::new(specs[0].clone()),
        CostModel::new(specs[1].clone()),
    ];
    let mut e0 = DeviceEngine::new(
        program,
        graph,
        specs[0].clone(),
        configs[0].clone(),
        0,
        Some(assign),
    );
    let mut e1 = DeviceEngine::new(
        program,
        graph,
        specs[1].clone(),
        configs[1].clone(),
        1,
        Some(assign),
    );
    if let Some((vals, flags)) = resume {
        e0.restore(vals.clone(), &flags);
        e1.restore(vals, &flags);
    }
    let policy = configs[0].recovery;
    let mut steps0: Vec<StepReport> = Vec::new();
    let mut steps1: Vec<StepReport> = Vec::new();

    for step in start_step..cap {
        let t0 = Instant::now();
        let _replay_span = tracer.span(Phase::Replay, step as u32);
        let mut c0 = e0.begin_step();
        let mut c1 = e1.begin_step();
        let r0 = e0.generate(&mut c0);
        let r1 = e1.generate(&mut c1);
        c0.remote_before_combine = r0.len() as u64;
        c1.remote_before_combine = r1.len() as u64;
        let (out0, _) = combine_messages::<P::Msg, P::Reduce>(r0);
        let (out1, _) = combine_messages::<P::Msg, P::Reduce>(r1);
        c0.remote_after_combine = out0.len() as u64;
        c1.remote_after_combine = out1.len() as u64;
        let b0 = wire_bytes::<P::Msg>(out0.len());
        let b1 = wire_bytes::<P::Msg>(out1.len());
        // Termination flags are read at the same point as the live loop
        // (after generation, before absorption).
        let any0 = c0.msgs_total() > 0;
        let any1 = c1.msgs_total() > 0;
        c0.comm_bytes = b0 + b1;
        c1.comm_bytes = b0 + b1;
        let comm0 = link.exchange_time(b0, b1);
        let comm1 = link.exchange_time(b1, b0);
        e0.absorb_remote(&out1, &mut c0);
        e0.finalize_insertion_stats(&mut c0);
        e1.absorb_remote(&out0, &mut c1);
        e1.finalize_insertion_stats(&mut c1);
        e0.process(&mut c0);
        e0.update(&mut c0);
        e1.process(&mut c1);
        e1.update(&mut c1);
        // Report parity with the live loop's four phase-boundary ticks.
        c0.heartbeats = 4;
        c1.heartbeats = 4;

        if policy.is_checkpoint_step(step as u64 + 1) {
            write_device_checkpoint(&e0, step, &stores[0], &policy, None, 0, &mut c0);
            write_device_checkpoint(&e1, step, &stores[1], &policy, None, 1, &mut c1);
        }

        let v0 = configs[0].vectorized && P::SIMD_REDUCIBLE;
        let v1 = configs[1].vectorized && P::SIMD_REDUCIBLE;
        let times0 = cost[0].step_times(&c0, configs[0].gen_mode(&specs[0]), P::Msg::SIZE, v0);
        let times1 = cost[1].step_times(&c1, configs[1].gen_mode(&specs[1]), P::Msg::SIZE, v1);
        c0.gen_chunks.clear();
        c0.proc_chunks.clear();
        c1.gen_chunks.clear();
        c1.proc_chunks.clear();
        let wall = t0.elapsed().as_secs_f64();
        steps0.push(StepReport {
            step,
            times: times0,
            comm_time: comm0,
            wall,
            counters: c0,
        });
        steps1.push(StepReport {
            step,
            times: times1,
            comm_time: comm1,
            wall,
            counters: c1,
        });
        if !any0 && !any1 {
            break;
        }
    }

    let mut values = e0.values;
    for (v, val) in e1.values.into_iter().enumerate() {
        if assign[v] == 1 {
            values[v] = val;
        }
    }
    (values, [steps0, steps1])
}

/// Run `program` across both devices with live failover.
///
/// Behaves exactly like [`run_hetero`] when nothing fails. Each device
/// writes barrier snapshots into its own `stores` slot at the
/// `configs[0].recovery.checkpoint_every` cadence; on a detected device
/// loss the driver applies `fcfg.policy` (migrate / retry / off), on a
/// dropped exchange it rolls both devices back to the newest common
/// snapshot, and on a detected straggler it rebalances the partition once.
/// With `resume = true` the run starts from the newest common snapshot
/// already in the stores.
///
/// All liveness events land in the combined report's
/// [`RunReport::failover`] and per-step counters; rollback/degradation
/// accounting stays in [`RunReport::recovery`].
///
/// [`run_hetero`]: crate::engine::hetero::run_hetero
#[allow(clippy::too_many_arguments)]
pub fn run_hetero_failover<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    partition_in: &DevicePartition,
    specs: [DeviceSpec; 2],
    configs: [EngineConfig; 2],
    link: PcieLink,
    fcfg: &FailoverConfig,
    stores: [&mut dyn CheckpointStore; 2],
    resume: bool,
) -> RunOutput<P::Value>
where
    P::Value: PodState,
{
    assert_eq!(partition_in.assign.len(), graph.num_vertices());
    let policy = configs[0].recovery;
    let cap = run_cap(
        program.max_supersteps(),
        match (configs[0].max_supersteps, configs[1].max_supersteps) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        },
    );
    let stores: [Mutex<&mut dyn CheckpointStore>; 2] = stores.map(Mutex::new);
    let deadline = fcfg.deadline();

    let mut fstats = FailoverStats::default();
    let mut rstats = RecoveryStats::default();
    let mut istats = IntegrityStats::default();
    let mut part = partition_in.clone();
    let mut dev_steps: [Vec<StepReport>; 2] = [Vec::new(), Vec::new()];
    let mut start_step = 0usize;
    let mut resume_state: ResumePair<P::Value> = None;
    let mut slowed = [false, false];
    let mut rebalance_enabled = true;
    let mut retry = 0u32;
    let mut last_resume: Option<usize> = None;
    // Driver-thread track: migration replays and rebalances happen here,
    // outside either device loop.
    let drv_tracer = configs[0].tracer("driver", 900);
    let wall_start = Instant::now();

    if resume {
        if let Some((k, vals, flags)) = load_merged::<P>(&stores, &part.assign, &mut rstats) {
            start_step = k;
            resume_state = Some((vals, flags));
        }
    }

    // Assemble the final combined output from per-device step report vecs.
    let finish = |dev_steps: [Vec<StepReport>; 2],
                  values: Vec<P::Value>,
                  mut rstats: RecoveryStats,
                  mut fstats: FailoverStats,
                  istats: IntegrityStats,
                  last_resume: Option<usize>,
                  wall: f64|
     -> RunOutput<P::Value> {
        let total = dev_steps[0].last().map_or(0, |s| s.step as u64 + 1);
        fstats.supersteps_total = total;
        if let Some(k) = last_resume {
            fstats.resume_step = k as u64;
            fstats.supersteps_replayed = total.saturating_sub(k as u64);
        }
        let [steps0, steps1] = dev_steps;
        rstats.checkpoints_written += steps0
            .iter()
            .chain(&steps1)
            .map(|s| s.counters.checkpoints_written)
            .sum::<u64>();
        rstats.checkpoint_bytes += steps0
            .iter()
            .chain(&steps1)
            .map(|s| s.counters.checkpoint_bytes)
            .sum::<u64>();
        let report0 = RunReport {
            app: P::NAME.to_string(),
            device: specs[0].name.to_string(),
            mode: "cpu-mic".to_string(),
            steps: steps0,
            wall,
            ..Default::default()
        };
        let report1 = RunReport {
            app: P::NAME.to_string(),
            device: specs[1].name.to_string(),
            mode: "cpu-mic".to_string(),
            steps: steps1,
            wall,
            ..Default::default()
        };
        let mut report = combine_hetero(P::NAME, &report0, &report1);
        report.recovery = rstats;
        report.failover = fstats;
        report.integrity = istats;
        RunOutput {
            values,
            report,
            device_reports: vec![report0, report1],
        }
    };

    // Degrade to the sequential engine on one device from the last barrier.
    macro_rules! degrade_seq {
        ($survivor:expr) => {{
            rstats.degraded = true;
            fstats.degraded_single = true;
            let merged = load_merged::<P>(&stores, &part.assign, &mut rstats);
            if let Some((k, _, _)) = &merged {
                last_resume = Some(*k);
            }
            let sd = $survivor;
            let mut out = run_seq_resume(program, graph, specs[sd].clone(), &configs[sd], merged);
            fstats.supersteps_total = out.report.steps.last().map_or(0, |s| s.step as u64 + 1);
            if let Some(k) = last_resume {
                fstats.resume_step = k as u64;
                fstats.supersteps_replayed = fstats.supersteps_total.saturating_sub(k as u64);
            }
            out.report.recovery = rstats;
            out.report.failover = fstats;
            out.report.integrity.accumulate(&istats);
            return out;
        }};
    }

    loop {
        let assign_now = part.assign.clone();
        let hb = [Heartbeat::new(), Heartbeat::new()];
        let finished = [AtomicBool::new(false), AtomicBool::new(false)];
        let stop = AtomicBool::new(false);
        let detected = [AtomicU64::new(UNDETECTED), AtomicU64::new(UNDETECTED)];
        let resume0 = resume_state.clone();
        let resume1 = resume_state.take();
        let (ep0, ep1) = duplex_pair::<WireMsg<P::Msg>>(link);
        let [spec0, spec1] = [specs[0].clone(), specs[1].clone()];
        let [config0, config1] = [configs[0].clone(), configs[1].clone()];
        let (hb0, hb1) = (hb[0].clone(), hb[1].clone());

        let (out0, out1) = std::thread::scope(|s| {
            let assign = &assign_now;
            let h0 = s.spawn(|| {
                failover_device_loop(
                    program,
                    graph,
                    assign,
                    0,
                    spec0,
                    config0,
                    ep0,
                    cap,
                    start_step,
                    resume0,
                    &stores[0],
                    fcfg,
                    hb0,
                    &finished[0],
                    slowed[0],
                    rebalance_enabled,
                )
            });
            let h1 = s.spawn(|| {
                failover_device_loop(
                    program,
                    graph,
                    assign,
                    1,
                    spec1,
                    config1,
                    ep1,
                    cap,
                    start_step,
                    resume1,
                    &stores[1],
                    fcfg,
                    hb1,
                    &finished[1],
                    slowed[1],
                    rebalance_enabled,
                )
            });
            let w = s.spawn(|| {
                watchdog_loop(
                    &hb,
                    &finished,
                    &stop,
                    deadline,
                    &detected,
                    configs[0].trace.as_ref(),
                )
            });
            let r0 = h0.join().expect("device 0 panicked");
            let r1 = h1.join().expect("device 1 panicked");
            stop.store(true, Ordering::Release);
            w.join().expect("watchdog panicked");
            (r0, r1)
        });

        // Plain-data exits; splice this attempt's step reports in.
        let exits = [
            match &out0.exit {
                LoopExit::Done => ExitKind::Done,
                LoopExit::Crashed { step } => ExitKind::Crashed(*step),
                LoopExit::Hung { step, .. } => ExitKind::Hung(*step),
                LoopExit::PeerDead { step } => ExitKind::PeerDead(*step),
                LoopExit::PeerTimeout { step, waited_ms } => {
                    ExitKind::PeerTimeout(*step, *waited_ms)
                }
                LoopExit::ExchangeDrop { step } => ExitKind::ExchangeDrop(*step),
                LoopExit::Rebalance { step } => ExitKind::Rebalance(*step),
            },
            match &out1.exit {
                LoopExit::Done => ExitKind::Done,
                LoopExit::Crashed { step } => ExitKind::Crashed(*step),
                LoopExit::Hung { step, .. } => ExitKind::Hung(*step),
                LoopExit::PeerDead { step } => ExitKind::PeerDead(*step),
                LoopExit::PeerTimeout { step, waited_ms } => {
                    ExitKind::PeerTimeout(*step, *waited_ms)
                }
                LoopExit::ExchangeDrop { step } => ExitKind::ExchangeDrop(*step),
                LoopExit::Rebalance { step } => ExitKind::Rebalance(*step),
            },
        ];
        slowed = [out0.slowed, out1.slowed];
        istats.accumulate(&out0.integ);
        istats.accumulate(&out1.integ);
        dev_steps[0].retain(|s| s.step < start_step);
        dev_steps[0].extend(out0.steps);
        dev_steps[1].retain(|s| s.step < start_step);
        dev_steps[1].extend(out1.steps);

        // Watchdog bookkeeping: record the detection latency for every
        // device that actually went silent (final sweep covers the race
        // where both loops returned before the poller's next pass).
        for d in 0..2 {
            if exits[d].lost() {
                let lat = match detected[d].load(Ordering::Acquire) {
                    UNDETECTED => hb[d].since_last().saturating_sub(deadline).as_millis() as u64,
                    l => l,
                };
                fstats.watchdog_latency_ms = fstats.watchdog_latency_ms.max(lat);
            }
        }

        if let Some(lost_dev) = (0..2).find(|&d| exits[d].lost()) {
            let survivor = 1 - lost_dev;
            match exits[lost_dev] {
                ExitKind::Hung(_) => fstats.hang_detections += 1,
                _ => fstats.crash_detections += 1,
            }
            if let ExitKind::PeerTimeout(..) = exits[survivor] {
                fstats.exchange_timeouts += 1;
            }
            rstats.faults_injected += 1;
            if exits[survivor].lost() {
                // Both devices gone: nothing to migrate onto. Degrade to a
                // sequential run from the last barrier on device 0.
                match exits[survivor] {
                    ExitKind::Hung(_) => fstats.hang_detections += 1,
                    _ => fstats.crash_detections += 1,
                }
                rstats.faults_injected += 1;
                degrade_seq!(0);
            }
            match fcfg.policy {
                FailoverPolicy::Migrate => {
                    fstats.migrations += 1;
                    fstats.degraded_single = true;
                    rstats.rollbacks += 1;
                    let merged = load_merged::<P>(&stores, &part.assign, &mut rstats);
                    let (k, pair) = match merged {
                        Some((k, vals, flags)) => (k, Some((vals, flags))),
                        None => (0, None),
                    };
                    last_resume = Some(k);
                    // The survivor absorbs the lost device's partition
                    // (`migrate_to(survivor)` is the ownership view of the
                    // migration) but the replay keeps the *original*
                    // assignment so each engine half reduces in its original
                    // order — that is what makes the result bit-identical.
                    let migrated = part.migrate_to(survivor as u8);
                    debug_assert!(migrated.assign.iter().all(|&d| d as usize == survivor));
                    let _mig = drv_tracer.span(Phase::Migrate, k as u32);
                    let (values, replay_steps) = replay_lockstep(
                        program,
                        graph,
                        &part.assign,
                        &specs,
                        &configs,
                        link,
                        k,
                        pair,
                        &stores,
                        cap,
                        &drv_tracer,
                    );
                    let [rs0, rs1] = replay_steps;
                    dev_steps[0].retain(|s| s.step < k);
                    dev_steps[0].extend(rs0);
                    dev_steps[1].retain(|s| s.step < k);
                    dev_steps[1].extend(rs1);
                    return finish(
                        dev_steps,
                        values,
                        rstats,
                        fstats,
                        istats,
                        last_resume,
                        wall_start.elapsed().as_secs_f64(),
                    );
                }
                FailoverPolicy::Retry => {
                    // Transient-fault model: roll both devices back to the
                    // newest common barrier and retry in lock-step.
                    rstats.rollbacks += 1;
                    if retry >= policy.max_retries {
                        degrade_seq!(survivor);
                    }
                    retry += 1;
                    rstats.retries += 1;
                    let backoff = policy.backoff_ms(retry - 1);
                    if backoff > 0 {
                        std::thread::sleep(Duration::from_millis(backoff));
                    }
                    match load_merged::<P>(&stores, &part.assign, &mut rstats) {
                        Some((k, vals, flags)) => {
                            start_step = k;
                            resume_state = Some((vals, flags));
                            last_resume = Some(k);
                        }
                        None => {
                            start_step = 0;
                            resume_state = None;
                            last_resume = Some(0);
                        }
                    }
                    continue;
                }
                FailoverPolicy::Off => degrade_seq!(survivor),
            }
        }

        match exits {
            [ExitKind::Done, ExitKind::Done] => {
                let mut values = out0.values;
                for (v, val) in out1.values.into_iter().enumerate() {
                    if assign_now[v] == 1 {
                        values[v] = val;
                    }
                }
                return finish(
                    dev_steps,
                    values,
                    rstats,
                    fstats,
                    istats,
                    last_resume,
                    wall_start.elapsed().as_secs_f64(),
                );
            }
            [ExitKind::ExchangeDrop(_), ExitKind::ExchangeDrop(_)] => {
                fstats.exchange_drops += 1;
                rstats.faults_injected += 1;
                rstats.rollbacks += 1;
                if retry >= policy.max_retries {
                    degrade_seq!(0);
                }
                retry += 1;
                rstats.retries += 1;
                let backoff = policy.backoff_ms(retry - 1);
                if backoff > 0 {
                    std::thread::sleep(Duration::from_millis(backoff));
                }
                match load_merged::<P>(&stores, &part.assign, &mut rstats) {
                    Some((k, vals, flags)) => {
                        start_step = k;
                        resume_state = Some((vals, flags));
                        last_resume = Some(k);
                    }
                    None => {
                        start_step = 0;
                        resume_state = None;
                        last_resume = Some(0);
                    }
                }
                continue;
            }
            [ExitKind::Rebalance(sr), ExitKind::Rebalance(sr1)] => {
                debug_assert_eq!(sr, sr1, "rebalance barriers must agree");
                let _rb = drv_tracer.span(Phase::Rebalance, sr as u32);
                fstats.rebalances += 1;
                // Merge live state at the barrier under the old assignment.
                let mut vals = out0.values;
                let mut flags = out0.flags;
                let flags1 = out1.flags;
                for (v, val) in out1.values.into_iter().enumerate() {
                    if assign_now[v] == 1 {
                        vals[v] = val;
                        flags[v] = flags1[v];
                    }
                }
                // New ratio proportional to observed throughput; re-derive
                // the partition with the same scheme.
                let new_ratio = part
                    .ratio
                    .rebalanced(out0.sim_adv_total, out1.sim_adv_total);
                part = partition(graph, part.scheme, new_ratio, REBALANCE_SEED);
                // Older snapshots were written under the stale assignment:
                // replace them with the merged barrier state.
                start_step = sr + 1;
                reset_stores_with::<P>(&stores, start_step, &vals, &flags);
                resume_state = Some((vals, flags));
                rebalance_enabled = false; // one rebalance per run
                continue;
            }
            other => {
                // Asymmetric exits without a lost device (e.g. one side
                // dropped while the other rebalanced) should not happen;
                // degrade rather than guess.
                debug_assert!(false, "inconsistent device exits: {other:?}");
                degrade_seq!(0);
            }
        }
    }
}

fn _assert_send<T: Send>() {}
const _: () = {
    fn _check() {
        _assert_send::<Heartbeat>();
    }
};
