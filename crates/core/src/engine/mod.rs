//! Execution engines: single-device drivers, the heterogeneous CPU-MIC
//! driver, and the object-message path.

pub mod config;
pub mod device;
pub mod failover;
pub mod flat;
pub mod hetero;
pub mod integrity;
pub mod obj;
pub mod recover;
pub mod seq;

pub use config::{EngineConfig, ExecMode};
pub use device::DeviceEngine;
pub use failover::{run_hetero_failover, run_ranks_failover};
pub use flat::run_flat;
pub use hetero::{run_hetero, run_hetero_recovering, run_ranks, run_ranks_recovering};
pub use integrity::{framed_exchange, BarrierImage, IntegrityCtx};
pub use recover::run_recoverable;
pub use seq::{run_seq, run_seq_resume};

use crate::api::VertexProgram;
use crate::metrics::{RunOutput, RunReport, StepReport};
use flat::run_cap;
use phigraph_device::{CostModel, DeviceSpec};
use phigraph_graph::Csr;
use phigraph_simd::MsgValue;
use phigraph_trace::Phase;
use std::time::Instant;

/// Run `program` to completion on a single device with any execution mode.
///
/// # Re-entrancy
///
/// Every driver borrows the graph (`&Csr`) and allocates all mutable run
/// state — values, CSB arenas, queues, counters — per call, so any number
/// of runs may execute concurrently against one shared CSR (e.g. behind an
/// `Arc<Csr>`). The serving daemon in `phigraph-serve` relies on this:
/// one loaded graph, many concurrent per-tenant jobs.
///
/// # Cancellation
///
/// When [`EngineConfig::cancel`] holds a token, the drivers poll it at
/// superstep phase boundaries (including *inside* a superstep, between
/// generate/process/update) and stop cleanly at the first boundary after
/// it fires, returning the partial output computed so far. Each poll ticks
/// the token's embedded heartbeat, so a watchdog can distinguish a slow
/// run (heartbeat advancing) from a hung one.
pub fn run_single<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    spec: DeviceSpec,
    config: &EngineConfig,
) -> RunOutput<P::Value> {
    match config.mode {
        ExecMode::Flat => run_flat(program, graph, spec, config),
        ExecMode::Sequential => run_seq(program, graph, spec, config),
        ExecMode::Locking | ExecMode::Pipelined => run_csb_single(program, graph, spec, config),
    }
}

fn run_csb_single<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    spec: DeviceSpec,
    config: &EngineConfig,
) -> RunOutput<P::Value> {
    let cost = CostModel::new(spec.clone());
    let mut engine = DeviceEngine::new(program, graph, spec.clone(), config.clone(), 0, None);
    let cap = run_cap(program.max_supersteps(), config.max_supersteps);
    let tracer = config.tracer("dev0", 0);
    let wall_start = Instant::now();
    let mut steps: Vec<StepReport> = Vec::new();

    for step in 0.. {
        if step >= cap || config.cancelled() {
            break;
        }
        let t0 = Instant::now();
        let step_span = tracer.span(Phase::Superstep, step as u32);
        let mut c = engine.begin_step();
        let remote = {
            let _g = tracer.span(Phase::Generate, step as u32);
            engine.generate(&mut c)
        };
        debug_assert!(
            remote.is_empty(),
            "single-device run produced remote messages"
        );
        engine.finalize_insertion_stats(&mut c);
        // Mid-superstep cancellation point: the partial step is abandoned
        // (values still hold the last completed superstep's state).
        if config.cancelled() {
            break;
        }
        {
            let _p = tracer.span(Phase::Process, step as u32);
            engine.process(&mut c);
        }
        {
            let _u = tracer.span(Phase::Update, step as u32);
            engine.update(&mut c);
        }
        drop(step_span);

        let vectorized = config.vectorized && P::SIMD_REDUCIBLE;
        let times = cost.step_times(&c, config.gen_mode(&spec), P::Msg::SIZE, vectorized);
        let msgs = c.msgs_total();
        c.gen_chunks.clear();
        c.proc_chunks.clear();
        steps.push(StepReport {
            step,
            times,
            comm_time: 0.0,
            wall: t0.elapsed().as_secs_f64(),
            counters: c,
        });
        if msgs == 0 {
            break;
        }
    }

    let report = RunReport {
        app: P::NAME.to_string(),
        device: spec.name.to_string(),
        mode: config.mode.name().to_string(),
        steps,
        wall: wall_start.elapsed().as_secs_f64(),
        ..Default::default()
    };
    RunOutput {
        values: engine.values,
        device_reports: vec![report.clone()],
        report,
    }
}
