//! Engine configuration.

use crate::csb::ColumnMode;
use phigraph_device::cost::GenMode;
use phigraph_device::{CancelToken, DeviceSpec};
use phigraph_recover::{FaultInjector, IntegrityMode, RecoveryPolicy};
use phigraph_trace::{ThreadTracer, Trace};

/// How a device executes a superstep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Framework engine with locking-based message insertion
    /// (the paper's "Lock" bars).
    Locking,
    /// Framework engine with worker/mover pipelined message generation
    /// (the paper's "Pipe" bars).
    Pipelined,
    /// Flat OpenMP-style baseline: direct concurrent vertex update under
    /// per-destination locks, no CSB, no SIMD (the "OMP" bars).
    Flat,
    /// Single-threaded reference execution (Table II's "Seq" rows).
    Sequential,
}

impl ExecMode {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ExecMode::Locking => "lock",
            ExecMode::Pipelined => "pipe",
            ExecMode::Flat => "omp",
            ExecMode::Sequential => "seq",
        }
    }
}

/// Tunable engine parameters. Constructors give the paper's defaults;
/// builder methods adjust individual knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Execution strategy.
    pub mode: ExecMode,
    /// Use the SIMD lane path for message processing (`false` reproduces
    /// the Fig. 5(f) scalar rewrite).
    pub vectorized: bool,
    /// Column mapping in the CSB.
    pub column_mode: ColumnMode,
    /// Vector arrays per vertex group (`k`).
    pub k: usize,
    /// Real host threads to execute with (0 = all available).
    pub host_threads: usize,
    /// Simulated worker-thread count for pipelined cost (0 = device
    /// default: 3/4 of hardware threads, e.g. 180 of 240 on the MIC, the
    /// paper's best configuration).
    pub sim_workers: usize,
    /// Simulated mover-thread count (0 = device default: 1/4 of hardware
    /// threads).
    pub sim_movers: usize,
    /// Vertices per generation scheduling chunk ("a thread can obtain
    /// multiple tasks each time"); 0 = auto-size from the device's thread
    /// count and the owned-vertex count.
    pub gen_chunk: usize,
    /// Vertex groups per processing scheduling chunk; 0 = auto.
    pub proc_chunk: usize,
    /// Messages a pipelined worker accumulates per (worker, mover) buffer
    /// before flushing them into the SPSC queue as one batch (0 = auto: 64,
    /// clamped to the queue capacity).
    pub pipe_batch: usize,
    /// Per-queue SPSC ring capacity for the pipelined engine (0 = auto:
    /// 4096).
    pub queue_cap: usize,
    /// Superstep cap applied on top of the program's own limit.
    pub max_supersteps: Option<usize>,
    /// Checkpoint interval, retry budget, and backoff for the recovering
    /// drivers (`engine::recover`). Ignored by the plain drivers.
    pub recovery: RecoveryPolicy,
    /// Deterministic fault injection plan (compiled, fire-once). `None`
    /// runs fault-free; the recovering drivers consult it at the defined
    /// injection sites.
    pub fault_plan: Option<FaultInjector>,
    /// Structured tracing sink. `None` (the default) skips every recording
    /// site entirely; a [`Trace`] at [`phigraph_trace::TraceLevel::Off`]
    /// costs one relaxed atomic load per site.
    pub trace: Option<Trace>,
    /// Silent-data-corruption defenses: `Off` (default, bit-identical to
    /// pre-integrity builds), `Frames` (exchange checksums only), or
    /// `Full` (frames + group checksums + state digests + app audits +
    /// quarantine healing). See `engine::integrity`.
    pub integrity: IntegrityMode,
    /// Run a background scrub pass (state-digest audit against the barrier
    /// image) every `n` supersteps even when `integrity` is below `Full`
    /// (0 disables scrubbing).
    pub scrub_every: usize,
    /// Cooperative cancellation token, polled at superstep phase
    /// boundaries. When it fires the engine stops cleanly at the next
    /// boundary and returns the partial output; the caller reads
    /// [`CancelToken::reason`] to learn why. `None` (the default) skips
    /// every poll site.
    pub cancel: Option<CancelToken>,
}

impl EngineConfig {
    fn base(mode: ExecMode) -> Self {
        EngineConfig {
            mode,
            vectorized: true,
            column_mode: ColumnMode::Dynamic,
            k: 4,
            host_threads: 0,
            sim_workers: 0,
            sim_movers: 0,
            gen_chunk: 0,
            proc_chunk: 0,
            pipe_batch: 0,
            queue_cap: 0,
            max_supersteps: None,
            recovery: RecoveryPolicy::default(),
            fault_plan: None,
            trace: None,
            integrity: IntegrityMode::Off,
            scrub_every: 0,
            cancel: None,
        }
    }

    /// Locking-based framework execution.
    pub fn locking() -> Self {
        Self::base(ExecMode::Locking)
    }

    /// Pipelined framework execution.
    pub fn pipelined() -> Self {
        Self::base(ExecMode::Pipelined)
    }

    /// Flat OpenMP-style baseline.
    pub fn flat() -> Self {
        let mut c = Self::base(ExecMode::Flat);
        c.vectorized = false; // "OpenMP code could not benefit from SIMD"
        c
    }

    /// Sequential reference.
    pub fn sequential() -> Self {
        let mut c = Self::base(ExecMode::Sequential);
        c.host_threads = 1;
        c
    }

    /// Set SIMD processing on/off.
    pub fn with_vectorized(mut self, yes: bool) -> Self {
        self.vectorized = yes;
        self
    }

    /// Set the CSB column mode.
    pub fn with_column_mode(mut self, mode: ColumnMode) -> Self {
        self.column_mode = mode;
        self
    }

    /// Set the group width factor `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k.max(1);
        self
    }

    /// Cap supersteps.
    pub fn with_max_supersteps(mut self, n: usize) -> Self {
        self.max_supersteps = Some(n);
        self
    }

    /// Set real host threads.
    pub fn with_host_threads(mut self, n: usize) -> Self {
        self.host_threads = n;
        self
    }

    /// Set the generation chunk size.
    pub fn with_gen_chunk(mut self, n: usize) -> Self {
        self.gen_chunk = n.max(1);
        self
    }

    /// Set the worker-side flush batch size for the pipelined engine.
    pub fn with_pipe_batch(mut self, n: usize) -> Self {
        self.pipe_batch = n.max(1);
        self
    }

    /// Set the SPSC ring capacity for the pipelined engine.
    pub fn with_queue_cap(mut self, n: usize) -> Self {
        self.queue_cap = n.max(2);
        self
    }

    /// Write a barrier checkpoint every `k` supersteps (0 disables).
    pub fn with_checkpoint_every(mut self, k: usize) -> Self {
        self.recovery.checkpoint_every = k;
        self
    }

    /// Set the rollback/replay retry budget before sequential degradation.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.recovery.max_retries = n;
        self
    }

    /// Set the exponential-backoff base in milliseconds (0 = no sleeping,
    /// what the deterministic tests use).
    pub fn with_backoff_ms(mut self, base: u64) -> Self {
        self.recovery.backoff_base_ms = base;
        self
    }

    /// Install a compiled fault-injection plan.
    pub fn with_fault_plan(mut self, injector: FaultInjector) -> Self {
        self.fault_plan = Some(injector);
        self
    }

    /// Install a structured tracing sink (see [`phigraph_trace`]).
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Set the silent-data-corruption defense level.
    pub fn with_integrity(mut self, mode: IntegrityMode) -> Self {
        self.integrity = mode;
        self
    }

    /// Scrub (state-digest audit) every `n` supersteps (0 disables).
    pub fn with_scrub_every(mut self, n: usize) -> Self {
        self.scrub_every = n;
        self
    }

    /// Install a cooperative cancellation token (see [`CancelToken`]).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Poll the cancellation token (ticking its liveness heartbeat); true
    /// when the run should stop at the current phase boundary.
    #[inline]
    pub fn cancelled(&self) -> bool {
        match &self.cancel {
            Some(t) => t.poll(),
            None => false,
        }
    }

    /// Attach a tracer for the logical thread `name` (disabled when no
    /// trace is installed — the engines' single call site for recording).
    pub fn tracer(&self, name: &str, sort: u32) -> ThreadTracer {
        match &self.trace {
            Some(t) => t.thread(name, sort),
            None => ThreadTracer::disabled(),
        }
    }

    /// Record `v` into histogram `kind` when a trace is installed.
    #[inline]
    pub fn record_hist(&self, kind: phigraph_trace::HistKind, v: u64) {
        if let Some(t) = &self.trace {
            t.record_hist(kind, v);
        }
    }

    /// Resolved SPSC ring capacity.
    pub fn resolved_queue_cap(&self) -> usize {
        if self.queue_cap > 0 {
            self.queue_cap.max(2)
        } else {
            4096
        }
    }

    /// Resolved worker flush batch, clamped so one batch always fits the
    /// ring (a batch larger than the capacity would only ever chunk-spin).
    pub fn resolved_pipe_batch(&self) -> usize {
        let cap = self.resolved_queue_cap();
        if self.pipe_batch > 0 {
            self.pipe_batch.min(cap)
        } else {
            64.min(cap)
        }
    }

    /// Resolved simulated (worker, mover) split for `spec`.
    pub fn pipeline_split(&self, spec: &DeviceSpec) -> (usize, usize) {
        let t = spec.threads();
        let movers = if self.sim_movers > 0 {
            self.sim_movers
        } else {
            (t / 4).max(1)
        };
        let workers = if self.sim_workers > 0 {
            self.sim_workers
        } else {
            (t - movers.min(t - 1)).max(1)
        };
        (workers, movers)
    }

    /// The cost-model generation mode for this configuration.
    pub fn gen_mode(&self, spec: &DeviceSpec) -> GenMode {
        match self.mode {
            ExecMode::Locking => GenMode::Locking,
            ExecMode::Pipelined => {
                let (w, m) = self.pipeline_split(spec);
                GenMode::Pipelined {
                    workers: w,
                    movers: m,
                }
            }
            ExecMode::Flat => GenMode::Flat,
            ExecMode::Sequential => GenMode::Sequential,
        }
    }

    /// Resolved generation chunk size: explicit value, or an auto size
    /// giving each simulated thread ~8 grabs (bounded so the per-grab
    /// scheduling cost stays negligible).
    pub fn resolved_gen_chunk(&self, owned: usize, spec: &DeviceSpec) -> usize {
        if self.gen_chunk > 0 {
            self.gen_chunk
        } else {
            (owned / (spec.threads() * 8).max(1)).clamp(8, 2048)
        }
    }

    /// Resolved processing chunk size (vertex groups per grab).
    pub fn resolved_proc_chunk(&self, groups: usize, spec: &DeviceSpec) -> usize {
        if self.proc_chunk > 0 {
            self.proc_chunk
        } else {
            (groups / (spec.threads() * 8).max(1)).clamp(1, 256)
        }
    }

    /// Real host threads to run with.
    pub fn resolve_host_threads(&self) -> usize {
        if self.mode == ExecMode::Sequential {
            return 1;
        }
        let req = if self.host_threads == 0 {
            usize::MAX
        } else {
            self.host_threads
        };
        phigraph_device::pool::host_threads(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pipeline_split_on_mic() {
        // "180 worker threads + [movers] achieve the best performance".
        let cfg = EngineConfig::pipelined();
        let (w, m) = cfg.pipeline_split(&DeviceSpec::xeon_phi_se10p());
        assert_eq!(w, 180);
        assert_eq!(m, 60);
    }

    #[test]
    fn cpu_pipeline_split() {
        let cfg = EngineConfig::pipelined();
        let (w, m) = cfg.pipeline_split(&DeviceSpec::xeon_e5_2680());
        assert_eq!((w, m), (12, 4));
    }

    #[test]
    fn flat_disables_vectorization() {
        assert!(!EngineConfig::flat().vectorized);
        assert!(EngineConfig::locking().vectorized);
    }

    #[test]
    fn sequential_uses_one_thread() {
        assert_eq!(EngineConfig::sequential().resolve_host_threads(), 1);
    }

    #[test]
    fn gen_mode_maps_execution_modes() {
        let mic = DeviceSpec::xeon_phi_se10p();
        assert_eq!(EngineConfig::locking().gen_mode(&mic), GenMode::Locking);
        assert!(matches!(
            EngineConfig::pipelined().gen_mode(&mic),
            GenMode::Pipelined {
                workers: 180,
                movers: 60
            }
        ));
        assert_eq!(EngineConfig::flat().gen_mode(&mic), GenMode::Flat);
    }

    #[test]
    fn builders_apply() {
        let c = EngineConfig::locking()
            .with_vectorized(false)
            .with_k(2)
            .with_max_supersteps(5)
            .with_gen_chunk(64);
        assert!(!c.vectorized);
        assert_eq!(c.k, 2);
        assert_eq!(c.max_supersteps, Some(5));
        assert_eq!(c.gen_chunk, 64);
    }

    #[test]
    fn pipe_batch_defaults_and_clamps() {
        let auto = EngineConfig::pipelined();
        assert_eq!(auto.resolved_queue_cap(), 4096);
        assert_eq!(auto.resolved_pipe_batch(), 64);
        // Explicit batch larger than the ring clamps to the ring.
        let tight = EngineConfig::pipelined()
            .with_queue_cap(16)
            .with_pipe_batch(1000);
        assert_eq!(tight.resolved_queue_cap(), 16);
        assert_eq!(tight.resolved_pipe_batch(), 16);
        // Tiny ring bounds the auto batch too.
        let tiny = EngineConfig::pipelined().with_queue_cap(8);
        assert_eq!(tiny.resolved_pipe_batch(), 8);
        // Batch of one degenerates to the per-message protocol.
        let per_msg = EngineConfig::pipelined().with_pipe_batch(1);
        assert_eq!(per_msg.resolved_pipe_batch(), 1);
    }
}
