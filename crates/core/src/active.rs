//! Active-vertex tracking.
//!
//! "An inactive vertex may not participate in the message generation for
//! [the] next step." The runtime keeps one byte per vertex (written in
//! parallel by the update phase at disjoint indices) plus a cheap count.

use phigraph_graph::VertexId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-vertex active flags for one device.
pub struct ActiveSet {
    flags: Vec<u8>,
    count: AtomicU64,
}

impl ActiveSet {
    /// All-inactive set over `n` vertices.
    pub fn new(n: usize) -> Self {
        ActiveSet {
            flags: vec![0u8; n],
            count: AtomicU64::new(0),
        }
    }

    /// Whether `v` is active.
    #[inline(always)]
    pub fn is_active(&self, v: VertexId) -> bool {
        self.flags[v as usize] != 0
    }

    /// Set `v`'s flag (single-threaded or disjoint-index phases only).
    pub fn set(&mut self, v: VertexId, active: bool) {
        let prev = self.flags[v as usize];
        let now = u8::from(active);
        self.flags[v as usize] = now;
        match (prev, now) {
            (0, 1) => {
                self.count.fetch_add(1, Ordering::Relaxed);
            }
            (1, 0) => {
                self.count.fetch_sub(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// Number of active vertices.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether no vertex is active.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Deactivate every vertex (done after generation: senders vote to
    /// halt; updates re-activate).
    pub fn clear(&mut self) {
        self.flags.fill(0);
        self.count.store(0, Ordering::Relaxed);
    }

    /// Activate every vertex in `vs`.
    pub fn activate_all(&mut self, vs: &[VertexId]) {
        for &v in vs {
            self.set(v, true);
        }
    }

    /// Raw flags (for the disjoint-write update phase via `SharedSlice`).
    pub fn flags_mut(&mut self) -> &mut [u8] {
        &mut self.flags
    }

    /// Read-only raw flags (snapshotted by the checkpoint writer).
    pub fn flags(&self) -> &[u8] {
        &self.flags
    }

    /// Overwrite all flags from a snapshot and recount.
    ///
    /// # Panics
    /// Panics if `flags.len()` differs from the set's vertex count.
    pub fn restore_flags(&mut self, flags: &[u8]) {
        assert_eq!(flags.len(), self.flags.len(), "flag snapshot size mismatch");
        self.flags.copy_from_slice(flags);
        self.recount();
    }

    /// Recount after a raw-flags phase.
    pub fn recount(&mut self) {
        let n = self.flags.iter().filter(|&&f| f != 0).count() as u64;
        self.count.store(n, Ordering::Relaxed);
    }

    /// Iterate active vertex ids.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.flags
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f != 0)
            .map(|(v, _)| v as VertexId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_count() {
        let mut a = ActiveSet::new(10);
        assert!(a.is_empty());
        a.set(3, true);
        a.set(7, true);
        a.set(3, true); // idempotent
        assert_eq!(a.count(), 2);
        assert!(a.is_active(3));
        a.set(3, false);
        assert_eq!(a.count(), 1);
        assert!(!a.is_active(3));
    }

    #[test]
    fn clear_and_activate_all() {
        let mut a = ActiveSet::new(5);
        a.activate_all(&[0, 2, 4]);
        assert_eq!(a.count(), 3);
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn recount_after_raw_phase() {
        let mut a = ActiveSet::new(8);
        a.flags_mut()[1] = 1;
        a.flags_mut()[5] = 1;
        a.recount();
        assert_eq!(a.count(), 2);
        let got: Vec<u32> = a.iter().collect();
        assert_eq!(got, vec![1, 5]);
    }
}
