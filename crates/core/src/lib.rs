#![warn(missing_docs)]
//! The phigraph framework — a Rust reproduction of the graph processing
//! system of *"Efficient and Simplified Parallel Graph Processing over CPU
//! and MIC"* (Chen, Huo, Ren, Jain, Agrawal — IPDPS 2015).
//!
//! The framework executes vertex-centric BSP graph programs on one or two
//! modelled devices (a multi-core Xeon and a many-core Xeon Phi). Each
//! superstep runs three user-visible sub-steps with synchronization between
//! them — **message generation**, **message processing**, and **vertex
//! updating** — over the paper's runtime machinery:
//!
//! * [`csb`] — the **condensed static buffer**: messages stored in aligned
//!   vector arrays, vertices grouped by in-degree, dynamic column
//!   allocation, SIMD message reduction.
//! * [`engine`] — four execution strategies per device (locking insertion,
//!   worker/mover **pipelined** insertion, the flat OpenMP-style baseline,
//!   and a sequential reference), plus the **heterogeneous CPU+MIC** engine
//!   with per-superstep remote exchange.
//! * [`api`] — the three-function programming interface from §III, generic
//!   over POD message types, with the portable SIMD vtypes of
//!   `phigraph_simd` underneath.
//! * [`engine::obj`] — the object-message path for programs whose messages
//!   are not basic SSE types (Semi-Clustering).
//! * [`engine::recover`] — fault tolerance: barrier checkpointing through
//!   `phigraph_recover`, deterministic fault injection, rollback/replay,
//!   and sequential graceful degradation (see `docs/fault_tolerance.md`).
//!
//! # Quick example
//!
//! ```
//! use phigraph_core::api::{GenContext, MsgSink, VertexProgram};
//! use phigraph_core::engine::{run_single, EngineConfig};
//! use phigraph_device::DeviceSpec;
//! use phigraph_graph::generators::small::weighted_diamond;
//! use phigraph_simd::Min;
//!
//! /// Single-source shortest paths, exactly the paper's running example.
//! struct Sssp;
//! impl VertexProgram for Sssp {
//!     type Msg = f32;
//!     type Reduce = Min;
//!     type Value = f32;
//!     const NAME: &'static str = "sssp";
//!     fn init(&self, v: u32, _g: &phigraph_graph::Csr) -> (f32, bool) {
//!         if v == 0 { (0.0, true) } else { (f32::INFINITY, false) }
//!     }
//!     fn generate<S: MsgSink<f32>>(&self, v: u32, ctx: &mut GenContext<'_, f32, S>) {
//!         let my = *ctx.value(v);
//!         for e in ctx.graph.edge_range(v) {
//!             ctx.send(ctx.graph.targets[e], my + ctx.graph.weight(e));
//!         }
//!     }
//!     fn update(&self, _v: u32, msg: f32, value: &mut f32, _g: &phigraph_graph::Csr) -> bool {
//!         if msg < *value { *value = msg; true } else { false }
//!     }
//! }
//!
//! let g = weighted_diamond();
//! let out = run_single(&Sssp, &g, DeviceSpec::xeon_e5_2680(), &EngineConfig::locking());
//! assert_eq!(out.values, vec![0.0, 1.0, 5.0, 2.0]);
//! ```

pub mod active;
pub mod api;
pub mod benchable;
pub mod check;
pub mod csb;
pub mod engine;
pub mod export;
pub mod metrics;
pub mod queues;
pub mod tune;
pub mod util;

pub use api::{GenContext, MsgSink, VertexProgram};
pub use engine::{
    run_hetero, run_hetero_recovering, run_recoverable, run_single, EngineConfig, ExecMode,
};
pub use metrics::{RunReport, StepReport};
