//! SIMD message processing over the condensed static buffer (§IV.C).
//!
//! Task units are vector arrays: each group contributes up to `k` arrays of
//! `lanes` columns. For every array holding messages the runtime fills the
//! bubble cells of occupied columns with the reduction identity (the
//! "bubbles in the lanes due to the difference in the number of received
//! messages for each vertex"), reduces all rows into row 0 lane-parallel,
//! and delivers each occupied column's result to its vertex's slot for the
//! update phase. The scalar path walks occupied columns one message at a
//! time — the Fig. 5(f) comparison.
#![allow(clippy::needless_range_loop)] // lane loops over runtime widths

use super::buffer::Csb;
use crate::util::SharedSlice;
use phigraph_device::counters::ProcChunk;
use phigraph_simd::{reduce_column_scalar, reduce_rows_strided, MsgValue, ReduceOp};
use std::ops::Range;

impl<T: MsgValue> Csb<T> {
    /// Process the vector arrays of `groups`, writing each occupied
    /// column's reduced message into `out_msg[position]` and setting
    /// `out_has[position]`. Pushes one work record *per vector array* into
    /// `chunks` — vector arrays are the paper's processing task units, and
    /// per-array records let the cost model's makespan replay see the hot
    /// arrays that bound the scalar path.
    ///
    /// # Safety contract (upheld by the engines)
    /// Concurrent callers must pass disjoint `groups` ranges; `out_msg` /
    /// `out_has` writes are disjoint because each position is served by at
    /// most one column per iteration.
    pub fn process_groups<Op: ReduceOp<T>>(
        &self,
        groups: Range<usize>,
        vectorized: bool,
        out_msg: &SharedSlice<T>,
        out_has: &SharedSlice<u8>,
        chunks: &mut Vec<ProcChunk>,
    ) {
        for g in groups {
            if vectorized {
                self.process_group_vectorized::<Op>(g, chunks, out_msg, out_has);
            } else {
                self.process_group_scalar::<Op>(g, chunks, out_msg, out_has);
            }
        }
    }

    fn process_group_vectorized<Op: ReduceOp<T>>(
        &self,
        g: usize,
        chunks: &mut Vec<ProcChunk>,
        out_msg: &SharedSlice<T>,
        out_has: &SharedSlice<u8>,
    ) {
        let lanes = self.layout.lanes;
        let width = self.layout.width;
        let info = self.layout.groups[g];
        let used = self.used_columns(g);
        if used == 0 {
            return;
        }
        let arrays = used.div_ceil(lanes).min(self.layout.k);
        for a in 0..arrays {
            let mut chunk = ProcChunk::default();
            let col_base = a * lanes;
            // Column counts for this vector array.
            let mut max_count = 0u32;
            let mut counts = [0u32; 64];
            debug_assert!(lanes <= 64);
            for c in 0..lanes {
                let cnt = if col_base + c < used {
                    self.column_count(g, col_base + c)
                } else {
                    0
                };
                counts[c] = cnt;
                max_count = max_count.max(cnt);
            }
            if max_count == 0 {
                continue;
            }
            // SAFETY: this task owns group g exclusively (disjoint ranges),
            // so mutating its cells is race-free. The slice spans the rows
            // of this vector array: row r starts at cell_offset + r*width
            // + col_base; length covers (max_count-1) strides + lanes.
            let slice = unsafe {
                std::slice::from_raw_parts_mut(
                    self.data_ptr().add(info.cell_offset + col_base),
                    (max_count as usize - 1) * width + lanes,
                )
            };
            // Fill bubbles in occupied columns with the identity.
            for c in 0..lanes {
                let cnt = counts[c];
                if cnt > 0 && cnt < max_count {
                    for r in cnt..max_count {
                        slice[r as usize * width + c] = Op::identity();
                        chunk.holes += 1;
                    }
                }
            }
            // Lane-parallel reduction of all rows into row 0 — the
            // user-visible process_messages() loop of Listing 1.
            reduce_rows_strided::<T, Op>(slice, max_count as usize, lanes, width);
            chunk.rows += max_count as u64;
            // Deliver per occupied column.
            for c in 0..lanes {
                if counts[c] > 0 {
                    if let Some(pos) = self.column_position(g, col_base + c) {
                        // SAFETY: one column per position per iteration.
                        unsafe {
                            out_msg.write(pos as usize, slice[c]);
                            out_has.write(pos as usize, 1);
                        }
                        chunk.columns += 1;
                        chunk.msgs += counts[c] as u64;
                    }
                }
            }
            if chunk.msgs > 0 || chunk.rows > 0 {
                chunks.push(chunk);
            }
        }
    }

    fn process_group_scalar<Op: ReduceOp<T>>(
        &self,
        g: usize,
        chunks: &mut Vec<ProcChunk>,
        out_msg: &SharedSlice<T>,
        out_has: &SharedSlice<u8>,
    ) {
        let lanes = self.layout.lanes;
        let width = self.layout.width;
        let info = self.layout.groups[g];
        let used = self.used_columns(g);
        if used == 0 || info.rows == 0 {
            return;
        }
        // SAFETY: exclusive group access as above; read-only here.
        let slice = unsafe {
            std::slice::from_raw_parts(
                self.data_ptr().add(info.cell_offset),
                info.rows as usize * width,
            )
        };
        // Same task granularity as the vectorized path: one record per
        // vector array, so the two paths are compared on equal scheduling.
        let arrays = used.div_ceil(lanes).min(self.layout.k);
        for a in 0..arrays {
            let mut chunk = ProcChunk::default();
            for c in (a * lanes)..((a + 1) * lanes).min(used) {
                let cnt = self.column_count(g, c);
                if cnt == 0 {
                    continue;
                }
                let reduced = reduce_column_scalar::<T, Op>(slice, cnt as usize, c, width);
                if let Some(pos) = self.column_position(g, c) {
                    // SAFETY: one column per position per iteration.
                    unsafe {
                        out_msg.write(pos as usize, reduced);
                        out_has.write(pos as usize, 1);
                    }
                    chunk.columns += 1;
                    chunk.msgs += cnt as u64;
                    chunk.rows += cnt as u64;
                }
            }
            if chunk.msgs > 0 {
                chunks.push(chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csb::{ColumnMode, CsbLayout};
    use phigraph_graph::generators::small::paper_example;
    use phigraph_graph::VertexId;
    use phigraph_simd::{Min, Sum};

    fn paper_csb(mode: ColumnMode) -> Csb<f32> {
        let g = paper_example();
        let owned: Vec<VertexId> = (0..16).collect();
        let cap = g.in_degrees();
        Csb::new(CsbLayout::build(16, &owned, &cap, 4, 2), mode)
    }

    fn run_process(csb: &Csb<f32>, vectorized: bool) -> (Vec<f32>, Vec<u8>, ProcChunk) {
        let n = csb.layout.num_positions();
        let mut msgs = vec![0f32; n];
        let mut has = vec![0u8; n];
        let mut chunks = Vec::new();
        {
            let m = SharedSlice::new(&mut msgs);
            let h = SharedSlice::new(&mut has);
            csb.process_groups::<Min>(0..csb.layout.num_groups(), vectorized, &m, &h, &mut chunks);
        }
        let mut chunk = ProcChunk::default();
        for c in &chunks {
            chunk.rows += c.rows;
            chunk.msgs += c.msgs;
            chunk.holes += c.holes;
            chunk.columns += c.columns;
        }
        (msgs, has, chunk)
    }

    #[test]
    fn min_reduction_per_destination() {
        for mode in [ColumnMode::Dynamic, ColumnMode::OneToOne] {
            for vectorized in [true, false] {
                let csb = paper_csb(mode);
                csb.insert(9, 7.5);
                csb.insert(9, 3.25);
                csb.insert(2, 10.0);
                let (msgs, has, chunk) = run_process(&csb, vectorized);
                let pos9 = csb.layout.position[9] as usize;
                let pos2 = csb.layout.position[2] as usize;
                assert_eq!(has[pos9], 1);
                assert_eq!(msgs[pos9], 3.25, "mode {mode:?} vec {vectorized}");
                assert_eq!(msgs[pos2], 10.0);
                assert_eq!(chunk.columns, 2);
                assert_eq!(chunk.msgs, 3);
                // No stray deliveries.
                assert_eq!(has.iter().filter(|&&h| h == 1).count(), 2);
            }
        }
    }

    #[test]
    fn sum_reduction_with_bubbles() {
        let csb = paper_csb(ColumnMode::Dynamic);
        // Vertex 5 (capacity 5) gets 5 messages; vertex 2 gets 2 — three
        // bubble cells must be identity-filled in vertex 2's column.
        for i in 1..=5 {
            csb.insert(5, i as f32);
        }
        csb.insert(2, 100.0);
        csb.insert(2, 200.0);
        let n = csb.layout.num_positions();
        let mut msgs = vec![0f32; n];
        let mut has = vec![0u8; n];
        let mut chunks = Vec::new();
        {
            let m = SharedSlice::new(&mut msgs);
            let h = SharedSlice::new(&mut has);
            csb.process_groups::<Sum>(0..csb.layout.num_groups(), true, &m, &h, &mut chunks);
        }
        let mut chunk = ProcChunk::default();
        for c in &chunks {
            chunk.rows += c.rows;
            chunk.msgs += c.msgs;
            chunk.holes += c.holes;
            chunk.columns += c.columns;
        }
        assert_eq!(msgs[csb.layout.position[5] as usize], 15.0);
        assert_eq!(msgs[csb.layout.position[2] as usize], 300.0);
        assert_eq!(chunk.holes, 3);
        assert_eq!(has.iter().filter(|&&h| h == 1).count(), 2);
    }

    #[test]
    fn scalar_path_counts_no_holes() {
        let csb = paper_csb(ColumnMode::Dynamic);
        csb.insert(5, 1.0);
        csb.insert(5, 2.0);
        csb.insert(2, 3.0);
        let (_, _, chunk) = run_process(&csb, false);
        assert_eq!(chunk.holes, 0);
        assert_eq!(chunk.msgs, 3);
    }

    #[test]
    fn one_to_one_mode_wastes_more_rows_than_dynamic() {
        // The Fig. 3a vs 3b effect: scattered columns force more vector
        // arrays / rows in one-to-one mode.
        let mk = |mode| {
            let csb = paper_csb(mode);
            // Messages to vertices at positions 1, 3, 6, 7 of group 0 —
            // spread over both vector arrays in one-to-one, condensed to
            // one array in dynamic.
            csb.insert(2, 1.0);
            csb.insert(9, 1.0);
            csb.insert(6, 1.0);
            csb.insert(7, 1.0);
            let (_, _, chunk) = run_process(&csb, true);
            chunk.rows
        };
        let dynamic_rows = mk(ColumnMode::Dynamic);
        let one_to_one_rows = mk(ColumnMode::OneToOne);
        assert_eq!(dynamic_rows, 1, "4 messages condense into one row");
        assert_eq!(one_to_one_rows, 2, "scattered columns need both arrays");
    }

    #[test]
    fn stale_cells_from_previous_iteration_are_invisible() {
        let csb = paper_csb(ColumnMode::Dynamic);
        for i in 1..=5 {
            csb.insert(5, 1000.0 + i as f32);
        }
        csb.reset();
        // New iteration: only vertex 2 gets a message; stale cells from
        // vertex 5's old column must not leak into any result.
        csb.insert(2, 42.0);
        let (msgs, has, _) = run_process(&csb, true);
        assert_eq!(has.iter().filter(|&&h| h == 1).count(), 1);
        assert_eq!(msgs[csb.layout.position[2] as usize], 42.0);
    }

    #[test]
    fn empty_buffer_processes_to_nothing() {
        let csb = paper_csb(ColumnMode::Dynamic);
        let (_, has, chunk) = run_process(&csb, true);
        assert!(has.iter().all(|&h| h == 0));
        assert_eq!(chunk.msgs, 0);
        assert_eq!(chunk.rows, 0);
    }
}
