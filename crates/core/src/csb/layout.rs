//! CSB layout: in-degree sort, redirection map, vertex groups.

use phigraph_graph::VertexId;

/// Sentinel in the redirection map for vertices this device does not own.
pub const NOT_OWNED: u32 = u32::MAX;

/// One vertex group: `width` columns × `rows` rows of message cells.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroupInfo {
    /// Array length = the maximum message capacity among the group's
    /// vertices ("the maximum in-degree among the vertices in each vertex
    /// group").
    pub rows: u32,
    /// Offset of the group's first cell in the flat data buffer.
    pub cell_offset: usize,
}

/// The static layout of a condensed buffer, computed once per (graph,
/// device-partition) pair before any iteration runs.
#[derive(Clone, Debug, PartialEq)]
pub struct CsbLayout {
    /// SIMD lanes per row (`w / msg_size`).
    pub lanes: usize,
    /// Vector arrays per group (`k`; the paper uses a small constant).
    pub k: usize,
    /// Columns per group (`k × lanes`).
    pub width: usize,
    /// `position → vertex`: owned vertices sorted by capacity descending.
    pub order: Vec<VertexId>,
    /// `vertex → position` (the *redirection map*); [`NOT_OWNED`] for
    /// vertices owned by the other device.
    pub position: Vec<u32>,
    /// Per-vertex message capacity, indexed by position.
    pub capacity: Vec<u32>,
    /// Vertex groups, in position order.
    pub groups: Vec<GroupInfo>,
    /// Total message cells allocated.
    pub total_cells: usize,
}

impl CsbLayout {
    /// Build the layout.
    ///
    /// * `n_total` — global vertex count (sizes the redirection map).
    /// * `owned` — vertices this device owns.
    /// * `capacity` — max messages per superstep for each owned vertex
    ///   (parallel to `owned`): its local in-degree, plus one if it can
    ///   receive combined remote messages.
    /// * `lanes` — SIMD lanes per row for the device/message type.
    /// * `k` — vector arrays per group.
    pub fn build(
        n_total: usize,
        owned: &[VertexId],
        capacity: &[u32],
        lanes: usize,
        k: usize,
    ) -> Self {
        assert_eq!(owned.len(), capacity.len());
        let lanes = lanes.max(1);
        let k = k.max(1);
        let width = k * lanes;

        // Step 1: sort owned vertices by capacity (in-degree) descending,
        // ties by id — the order shown in the paper's Figure 3.
        let mut idx: Vec<usize> = (0..owned.len()).collect();
        idx.sort_by(|&a, &b| capacity[b].cmp(&capacity[a]).then(owned[a].cmp(&owned[b])));
        let order: Vec<VertexId> = idx.iter().map(|&i| owned[i]).collect();
        let sorted_cap: Vec<u32> = idx.iter().map(|&i| capacity[i]).collect();

        // Redirection map.
        let mut position = vec![NOT_OWNED; n_total];
        for (pos, &v) in order.iter().enumerate() {
            position[v as usize] = pos as u32;
        }

        // Step 2/3: group and size.
        let mut groups = Vec::with_capacity(order.len().div_ceil(width));
        let mut cell_offset = 0usize;
        for chunk in sorted_cap.chunks(width) {
            let rows = chunk.iter().copied().max().unwrap_or(0);
            groups.push(GroupInfo { rows, cell_offset });
            cell_offset += rows as usize * width;
        }

        CsbLayout {
            lanes,
            k,
            width,
            order,
            position,
            capacity: sorted_cap,
            groups,
            total_cells: cell_offset,
        }
    }

    /// Number of vertex groups.
    #[inline(always)]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of owned positions.
    #[inline(always)]
    pub fn num_positions(&self) -> usize {
        self.order.len()
    }

    /// Group index of a position.
    #[inline(always)]
    pub fn group_of(&self, pos: u32) -> usize {
        pos as usize / self.width
    }

    /// Cells a *non-condensed* static buffer would need (every vertex gets
    /// the global maximum capacity) — the memory-saving baseline reported
    /// by the CSB ablation bench.
    pub fn dense_cells(&self) -> usize {
        let max_cap = self.capacity.first().copied().unwrap_or(0) as usize;
        // Padded to full groups like the condensed layout.
        self.num_positions().div_ceil(self.width) * self.width * max_cap
    }

    /// Memory saving factor of the condensed layout vs the dense baseline.
    pub fn condensation_factor(&self) -> f64 {
        if self.total_cells == 0 {
            1.0
        } else {
            self.dense_cells() as f64 / self.total_cells as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::small::paper_example;

    /// Layout for the paper's Figure 3 configuration: the example graph,
    /// lanes = 4 ("we assume the SIMD lane to be as wide as 4 messages"),
    /// k = 2.
    fn paper_layout() -> CsbLayout {
        let g = paper_example();
        let owned: Vec<VertexId> = (0..16).collect();
        let cap = g.in_degrees();
        CsbLayout::build(16, &owned, &cap, 4, 2)
    }

    #[test]
    fn figure3_sorted_order() {
        let l = paper_layout();
        // "sorted vertex IDs: 5 2 8 9 0 4 6 7 3 10 11 12 13 1 14 15"
        assert_eq!(
            l.order,
            vec![5, 2, 8, 9, 0, 4, 6, 7, 3, 10, 11, 12, 13, 1, 14, 15]
        );
        // "in-degrees: 5 4 3 3 2 2 2 2 1 1 1 1 1 0 0 0"
        assert_eq!(
            l.capacity,
            vec![5, 4, 3, 3, 2, 2, 2, 2, 1, 1, 1, 1, 1, 0, 0, 0]
        );
    }

    #[test]
    fn figure3_two_groups_with_rows_5_and_1() {
        let l = paper_layout();
        // "resulting in two vertex groups in total … for the first vertex
        // group [array length] 5 … for the second … 1."
        assert_eq!(l.num_groups(), 2);
        assert_eq!(l.width, 8);
        assert_eq!(l.groups[0].rows, 5);
        assert_eq!(l.groups[1].rows, 1);
        assert_eq!(l.groups[0].cell_offset, 0);
        assert_eq!(l.groups[1].cell_offset, 40);
        assert_eq!(l.total_cells, 48);
    }

    #[test]
    fn redirection_map_round_trips() {
        let l = paper_layout();
        for (pos, &v) in l.order.iter().enumerate() {
            assert_eq!(l.position[v as usize], pos as u32);
        }
        // Example from Figure 3's redirection row: vertex 2 -> position 1.
        assert_eq!(l.position[2], 1);
        assert_eq!(l.position[0], 4);
    }

    #[test]
    fn condensation_saves_memory() {
        let l = paper_layout();
        // Dense: 16 positions × max capacity 5 = 80 cells vs 48 condensed.
        assert_eq!(l.dense_cells(), 80);
        assert!(l.condensation_factor() > 1.6);
    }

    #[test]
    fn partial_ownership_masks_other_device() {
        let g = paper_example();
        let owned: Vec<VertexId> = vec![0, 2, 4, 6, 8, 10, 12, 14];
        let indeg = g.in_degrees();
        let cap: Vec<u32> = owned.iter().map(|&v| indeg[v as usize]).collect();
        let l = CsbLayout::build(16, &owned, &cap, 4, 2);
        assert_eq!(l.num_positions(), 8);
        assert_eq!(l.position[1], NOT_OWNED);
        assert_ne!(l.position[2], NOT_OWNED);
        assert_eq!(l.num_groups(), 1);
    }

    #[test]
    fn empty_ownership() {
        let l = CsbLayout::build(4, &[], &[], 4, 2);
        assert_eq!(l.num_groups(), 0);
        assert_eq!(l.total_cells, 0);
        assert_eq!(l.condensation_factor(), 1.0);
    }

    #[test]
    fn group_of_positions() {
        let l = paper_layout();
        assert_eq!(l.group_of(0), 0);
        assert_eq!(l.group_of(7), 0);
        assert_eq!(l.group_of(8), 1);
    }

    // -- boundary cases --

    #[test]
    fn zero_in_degree_vertices_occupy_zero_row_groups() {
        // All-zero capacities: the layout must exist (positions, groups,
        // redirection map) but allocate no cells at all.
        let owned: Vec<VertexId> = (0..10).collect();
        let cap = vec![0u32; 10];
        let l = CsbLayout::build(10, &owned, &cap, 4, 1);
        assert_eq!(l.num_positions(), 10);
        assert_eq!(l.num_groups(), 3, "10 positions at width 4");
        assert!(l.groups.iter().all(|g| g.rows == 0));
        assert_eq!(l.total_cells, 0);
        // Redirection still covers every vertex.
        for v in 0..10u32 {
            assert_ne!(l.position[v as usize], NOT_OWNED);
        }
        // Mixed: zero-degree vertices sort to the back; trailing all-zero
        // groups stay empty while the first group is sized by the max.
        let cap: Vec<u32> = (0..10).map(|i| if i < 2 { 3 } else { 0 }).collect();
        let l = CsbLayout::build(10, &owned, &cap, 4, 1);
        assert_eq!(l.groups[0].rows, 3);
        assert_eq!(l.groups[1].rows, 0);
        assert_eq!(l.groups[2].rows, 0);
        assert_eq!(l.total_cells, 12, "only the first group holds cells");
        assert_eq!(l.capacity[0], 3);
        assert_eq!(l.capacity[9], 0);
    }

    #[test]
    fn single_vertex_group_when_owned_fits_one_width() {
        // 5 owned vertices at width 8 (k=2 × lanes=4): exactly one group,
        // sized by the hottest vertex, padded to the full width.
        let owned: Vec<VertexId> = vec![3, 1, 4, 0, 2];
        let cap = vec![2u32, 7, 1, 3, 5];
        let l = CsbLayout::build(5, &owned, &cap, 4, 2);
        assert_eq!(l.num_groups(), 1);
        assert_eq!(l.groups[0].rows, 7);
        assert_eq!(l.total_cells, 7 * 8, "rows × full width, even half-empty");
        assert_eq!(l.group_of((l.num_positions() - 1) as u32), 0);
        // The single-vertex degenerate case: one group, one hot column.
        let l1 = CsbLayout::build(1, &[0], &[9], 4, 2);
        assert_eq!(l1.num_groups(), 1);
        assert_eq!(l1.groups[0].rows, 9);
        assert_eq!(l1.total_cells, 9 * 8);
        assert_eq!(l1.position[0], 0);
    }

    #[test]
    fn group_rows_may_exceed_column_count() {
        // A hub with in-degree far beyond the group width: rows (array
        // length) exceed the column count — the group is tall and narrow,
        // not an error. Offsets of later groups must account for it.
        let owned: Vec<VertexId> = (0..12).collect();
        let mut cap = vec![1u32; 12];
        cap[0] = 100; // hub
        let l = CsbLayout::build(12, &owned, &cap, 2, 2); // width 4
        assert_eq!(l.width, 4);
        assert_eq!(l.num_groups(), 3);
        assert_eq!(l.groups[0].rows, 100);
        assert!(l.groups[0].rows as usize > l.width);
        assert_eq!(l.groups[1].rows, 1);
        assert_eq!(l.groups[1].cell_offset, 400);
        assert_eq!(l.groups[2].cell_offset, 404);
        assert_eq!(l.total_cells, 408);
        // The hub sorts to position 0 and its column can hold its degree.
        assert_eq!(l.position[0], 0);
        assert_eq!(l.capacity[0], 100);
        // The condensed layout still beats the dense baseline, which would
        // give every vertex the hub's capacity.
        assert_eq!(l.dense_cells(), 12usize.div_ceil(4) * 4 * 100);
        assert!(l.condensation_factor() > 2.9);
    }
}
