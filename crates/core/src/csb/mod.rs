//! The Condensed Static Buffer (CSB) — §IV.B/C of the paper.
//!
//! Messages are stored in pre-allocated aligned vector arrays so that the
//! processing step can reduce one message for each of `w/msg_size` vertices
//! per SIMD instruction, while keeping memory low on the 8 GB MIC:
//!
//! 1. vertices are sorted by in-degree, descending ([`layout`] — the
//!    *redirection map*);
//! 2. sorted vertices are grouped into *vertex groups* of `k × lanes`
//!    vertices; each group gets `k` aligned vector arrays of length equal
//!    to the group's maximum in-degree — grouping similar in-degrees
//!    together is what makes the buffer *condensed*;
//! 3. message insertion ([`buffer`]) maps a destination to a column either
//!    one-to-one or by *dynamic column allocation* (an index array and a
//!    column offset per group), which packs occupied columns to the front
//!    so SIMD lanes are not wasted on message-less vertices (Fig. 3);
//! 4. message processing ([`process`]) reduces each vector array row-wise
//!    with the program's operator, lane-parallel, after filling bubble
//!    cells with the operator identity.

pub mod buffer;
pub mod layout;
pub mod process;

pub use buffer::{ColumnMode, Csb, CsbInsertError};
pub use layout::{CsbLayout, GroupInfo, NOT_OWNED};
