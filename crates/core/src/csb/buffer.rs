//! Concurrent message insertion into the condensed static buffer.
//!
//! Two column-mapping strategies from §IV.C / Figure 3:
//!
//! * [`ColumnMode::OneToOne`] — "a pre-determined mapping between the
//!   vertices and the columns": position `p` always uses column
//!   `p mod width` of its group. Simple, but leaves SIMD lanes idle when
//!   few vertices of a group receive messages (Fig. 3a).
//! * [`ColumnMode::Dynamic`] — *dynamic column allocation*: an index array
//!   (one entry per position, reset to −1 each iteration) plus a column
//!   offset per group; the first message for a vertex claims the next free
//!   column under the group's allocation lock (Fig. 3b). Occupied columns
//!   are condensed to the front, so "i (i < k) loop(s) of instructions may
//!   process all the vertices in the vertex-group".
//!
//! Within a column, slots are claimed by an atomic cursor (`fetch_add`),
//! which plays the role of the paper's per-column lock: each message gets a
//! unique `(row, column)` cell, making the raw write race-free.

use super::layout::{CsbLayout, NOT_OWNED};
use phigraph_device::counters::InsertProfile;
use phigraph_graph::VertexId;
use phigraph_simd::{AVec, MsgValue};
use std::sync::atomic::{AtomicI32, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Column-mapping strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnMode {
    /// Fixed position→column mapping (Fig. 3a).
    OneToOne,
    /// Dynamic column allocation with index array + column offset (Fig. 3b).
    Dynamic,
}

/// Sentinel: column not yet bound to a position.
const COL_EMPTY: u32 = u32::MAX;

/// The condensed static buffer for message type `T`.
pub struct Csb<T: MsgValue> {
    /// The static layout (sort order, groups, redirection map).
    pub layout: CsbLayout,
    /// Column mapping strategy.
    pub mode: ColumnMode,
    data: AVec<T>,
    /// Messages inserted per global column (the insertion cursor).
    col_count: Vec<AtomicU32>,
    /// Position served by each global column this iteration.
    col_pos: Vec<AtomicU32>,
    /// Per-position allocated column-in-group, or −1 (the index array).
    index: Vec<AtomicI32>,
    /// Per-group next free column (the column offset).
    group_next: Vec<AtomicU32>,
    /// Per-group allocation lock ("using locking in the process").
    group_locks: Vec<Mutex<()>>,
    /// Columns allocated since the last reset.
    allocs: AtomicU64,
}

impl<T: MsgValue> Csb<T> {
    /// Allocate the buffer for `layout` (done once, before any iteration —
    /// the *static* in CSB).
    pub fn new(layout: CsbLayout, mode: ColumnMode) -> Self {
        let cols = layout.num_groups() * layout.width;
        let mut csb = Csb {
            data: AVec::zeroed(layout.total_cells),
            col_count: (0..cols).map(|_| AtomicU32::new(0)).collect(),
            col_pos: (0..cols).map(|_| AtomicU32::new(COL_EMPTY)).collect(),
            index: (0..layout.num_positions())
                .map(|_| AtomicI32::new(-1))
                .collect(),
            group_next: (0..layout.num_groups())
                .map(|_| AtomicU32::new(0))
                .collect(),
            group_locks: (0..layout.num_groups()).map(|_| Mutex::new(())).collect(),
            allocs: AtomicU64::new(0),
            layout,
            mode,
        };
        if mode == ColumnMode::OneToOne {
            csb.bind_one_to_one();
        }
        csb
    }

    fn bind_one_to_one(&mut self) {
        for pos in 0..self.layout.num_positions() as u32 {
            let col = self.global_col(self.layout.group_of(pos), pos as usize % self.layout.width);
            self.col_pos[col].store(pos, Ordering::Relaxed);
        }
    }

    #[inline(always)]
    fn global_col(&self, group: usize, col_in_group: usize) -> usize {
        group * self.layout.width + col_in_group
    }

    /// Insert one message for `dst`. Thread-safe; callable concurrently
    /// from any number of threads (locking engine) or from the column's
    /// owning mover (pipelined engine).
    ///
    /// # Panics
    /// Panics if `dst` is not owned by this buffer's device, or if the
    /// program sends a vertex more messages than its declared capacity.
    #[inline]
    pub fn insert(&self, dst: VertexId, value: T) {
        let pos = self.layout.position[dst as usize];
        assert_ne!(pos, NOT_OWNED, "message for non-owned vertex {dst}");
        let group = self.layout.group_of(pos);
        let col_in_group = match self.mode {
            ColumnMode::OneToOne => pos as usize % self.layout.width,
            ColumnMode::Dynamic => self.column_for(pos, group),
        };
        let gcol = self.global_col(group, col_in_group);
        let row = self.col_count[gcol].fetch_add(1, Ordering::Relaxed) as usize;
        let info = &self.layout.groups[group];
        assert!(
            row < info.rows as usize,
            "vertex {dst} received more than its capacity {} messages",
            info.rows
        );
        let cell = info.cell_offset + row * self.layout.width + col_in_group;
        // SAFETY: (row, gcol) is unique — the fetch_add above hands out each
        // row of a column exactly once, and distinct columns map to distinct
        // cells. `cell < total_cells` because row < rows.
        unsafe { *self.data.base_ptr().add(cell) = value };
    }

    /// Insert a drained queue slice of `(dst, value)` messages — the
    /// pipelined movers' batched path. Runs of equal consecutive
    /// destinations (common: a vertex's in-edges are generated together by
    /// one worker) resolve the redirection map once and claim their rows
    /// with a *single* `fetch_add` for the whole run instead of one per
    /// message.
    ///
    /// # Panics
    /// Same conditions as [`Csb::insert`].
    pub fn insert_slice(&self, msgs: &[(VertexId, T)]) {
        let mut i = 0;
        while i < msgs.len() {
            let dst = msgs[i].0;
            let mut j = i + 1;
            while j < msgs.len() && msgs[j].0 == dst {
                j += 1;
            }
            let run = j - i;
            let pos = self.layout.position[dst as usize];
            assert_ne!(pos, NOT_OWNED, "message for non-owned vertex {dst}");
            let group = self.layout.group_of(pos);
            let col_in_group = match self.mode {
                ColumnMode::OneToOne => pos as usize % self.layout.width,
                ColumnMode::Dynamic => self.column_for(pos, group),
            };
            let gcol = self.global_col(group, col_in_group);
            let row0 = self.col_count[gcol].fetch_add(run as u32, Ordering::Relaxed) as usize;
            let info = &self.layout.groups[group];
            assert!(
                row0 + run <= info.rows as usize,
                "vertex {dst} received more than its capacity {} messages",
                info.rows
            );
            let base = info.cell_offset + row0 * self.layout.width + col_in_group;
            for (k, &(_, value)) in msgs[i..j].iter().enumerate() {
                // SAFETY: rows row0..row0+run of column gcol were claimed
                // above by one fetch_add; each (row, column) cell is written
                // exactly once, and row0+run <= rows keeps cells in bounds.
                unsafe { *self.data.base_ptr().add(base + k * self.layout.width) = value };
            }
            i = j;
        }
    }

    /// Dynamic column allocation for `pos` (Fig. 3b): check the index
    /// array; on miss, take the group lock and claim the next free column.
    #[inline]
    fn column_for(&self, pos: u32, group: usize) -> usize {
        let cached = self.index[pos as usize].load(Ordering::Acquire);
        if cached >= 0 {
            return cached as usize;
        }
        let _guard = self.group_locks[group].lock().unwrap();
        let again = self.index[pos as usize].load(Ordering::Relaxed);
        if again >= 0 {
            return again as usize;
        }
        let col = self.group_next[group].fetch_add(1, Ordering::Relaxed) as usize;
        debug_assert!(col < self.layout.width);
        self.col_pos[self.global_col(group, col)].store(pos, Ordering::Relaxed);
        self.index[pos as usize].store(col as i32, Ordering::Release);
        self.allocs.fetch_add(1, Ordering::Relaxed);
        col
    }

    /// Reset per-iteration state (index arrays to −1, column offsets and
    /// cursors to 0). Returns the number of cells touched, for the cost
    /// model's reset accounting.
    pub fn reset(&self) -> u64 {
        let mut touched = 0u64;
        match self.mode {
            ColumnMode::Dynamic => {
                for g in 0..self.layout.num_groups() {
                    let used = self.group_next[g].swap(0, Ordering::Relaxed) as usize;
                    for c in 0..used.min(self.layout.width) {
                        let gcol = self.global_col(g, c);
                        let pos = self.col_pos[gcol].swap(COL_EMPTY, Ordering::Relaxed);
                        if pos != COL_EMPTY {
                            self.index[pos as usize].store(-1, Ordering::Relaxed);
                        }
                        self.col_count[gcol].store(0, Ordering::Relaxed);
                        touched += 3;
                    }
                }
            }
            ColumnMode::OneToOne => {
                for c in &self.col_count {
                    if c.swap(0, Ordering::Relaxed) != 0 {
                        touched += 1;
                    }
                }
            }
        }
        self.allocs.store(0, Ordering::Relaxed);
        touched
    }

    /// Columns currently in use in `group` (dynamic: the column offset;
    /// one-to-one: the full width, since any column may hold messages).
    #[inline]
    pub fn used_columns(&self, group: usize) -> usize {
        match self.mode {
            ColumnMode::Dynamic => {
                (self.group_next[group].load(Ordering::Acquire) as usize).min(self.layout.width)
            }
            ColumnMode::OneToOne => {
                let n = self.layout.num_positions();
                (n - (group * self.layout.width).min(n)).min(self.layout.width)
            }
        }
    }

    /// Message count of a global column.
    #[inline(always)]
    pub fn column_count(&self, group: usize, col_in_group: usize) -> u32 {
        self.col_count[self.global_col(group, col_in_group)].load(Ordering::Acquire)
    }

    /// Position served by a global column (or `None` if unbound/empty).
    #[inline]
    pub fn column_position(&self, group: usize, col_in_group: usize) -> Option<u32> {
        let p = self.col_pos[self.global_col(group, col_in_group)].load(Ordering::Acquire);
        (p != COL_EMPTY).then_some(p)
    }

    /// Contention/occupancy statistics after a generation phase:
    /// `(profile, occupied_columns, column_allocations)`.
    pub fn insert_stats(&self) -> (InsertProfile, u64, u64) {
        let mut profile = InsertProfile::default();
        let mut occupied = 0u64;
        for g in 0..self.layout.num_groups() {
            for c in 0..self.used_columns(g) {
                let count = self.column_count(g, c) as u64;
                if count > 0 {
                    profile.record(count);
                    occupied += 1;
                }
            }
        }
        (profile, occupied, self.allocs.load(Ordering::Relaxed))
    }

    /// Raw cell pointer (processing phase; tasks own disjoint groups).
    #[inline(always)]
    pub(crate) fn data_ptr(&self) -> *mut T {
        self.data.base_ptr()
    }

    /// Total allocated cells.
    pub fn total_cells(&self) -> usize {
        self.layout.total_cells
    }

    /// Read one cell (tests / debugging).
    pub fn cell(&self, group: usize, row: usize, col_in_group: usize) -> T {
        let info = &self.layout.groups[group];
        assert!(row < info.rows as usize && col_in_group < self.layout.width);
        // SAFETY: bounds asserted; read-only access after a phase barrier.
        unsafe {
            *self
                .data_ptr()
                .add(info.cell_offset + row * self.layout.width + col_in_group)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_device::pool::run_parallel;
    use phigraph_graph::generators::small::{paper_example, paper_table1_messages};

    fn paper_csb(mode: ColumnMode) -> Csb<f32> {
        let g = paper_example();
        let owned: Vec<VertexId> = (0..16).collect();
        let cap = g.in_degrees();
        Csb::new(CsbLayout::build(16, &owned, &cap, 4, 2), mode)
    }

    #[test]
    fn table1_insertion_one_to_one_matches_figure_3a() {
        let csb = paper_csb(ColumnMode::OneToOne);
        for (src, dst) in paper_table1_messages() {
            csb.insert(dst, src as f32);
        }
        // Destinations and their positions: 2→1, 6→6, 9→3, 12→11, 10→9, 7→7.
        assert_eq!(csb.column_count(0, 1), 2); // vertex 2 got two messages
        assert_eq!(csb.column_count(0, 3), 2); // vertex 9
        assert_eq!(csb.column_count(0, 6), 1); // vertex 6
        assert_eq!(csb.column_count(0, 7), 1); // vertex 7
        assert_eq!(csb.column_count(1, 1), 1); // vertex 10 (position 9)
        assert_eq!(csb.column_count(1, 3), 1); // vertex 12 (position 11)
                                               // Untouched columns stay empty.
        assert_eq!(csb.column_count(0, 0), 0);
        assert_eq!(csb.column_count(0, 5), 0);
    }

    #[test]
    fn table1_insertion_dynamic_condenses_columns_like_figure_3b() {
        let csb = paper_csb(ColumnMode::Dynamic);
        for (src, dst) in paper_table1_messages() {
            csb.insert(dst, src as f32);
        }
        // Group 0 received messages for 4 distinct vertices (2, 9, 6, 7):
        // dynamic allocation packs them into columns 0..4 — a single
        // 4-lane vector array covers them all (the Fig. 3b win).
        assert_eq!(csb.used_columns(0), 4);
        // Group 1 received messages for 2 distinct vertices (10, 12).
        assert_eq!(csb.used_columns(1), 2);
        let (profile, occupied, allocs) = csb.insert_stats();
        assert_eq!(profile.total, 8);
        assert_eq!(profile.max_column, 2);
        assert_eq!(occupied, 6);
        assert_eq!(allocs, 6);
    }

    #[test]
    fn insertion_values_land_in_claimed_cells() {
        let csb = paper_csb(ColumnMode::Dynamic);
        csb.insert(9, 11.0); // from vertex 11
        csb.insert(9, 13.0); // from vertex 13
                             // Vertex 9 is position 3 in group 0; its column holds both values
                             // in rows 0 and 1 (order depends on insertion order here).
        let col = (0..csb.used_columns(0))
            .find(|&c| csb.column_position(0, c) == Some(3))
            .expect("column for vertex 9");
        let got = [csb.cell(0, 0, col), csb.cell(0, 1, col)];
        assert_eq!(got, [11.0, 13.0]);
    }

    #[test]
    fn reset_clears_state_for_next_iteration() {
        let csb = paper_csb(ColumnMode::Dynamic);
        for (src, dst) in paper_table1_messages() {
            csb.insert(dst, src as f32);
        }
        let touched = csb.reset();
        assert!(touched > 0);
        assert_eq!(csb.used_columns(0), 0);
        let (profile, occupied, allocs) = csb.insert_stats();
        assert_eq!(profile.total, 0);
        assert_eq!(occupied, 0);
        assert_eq!(allocs, 0);
        // Buffer is reusable.
        csb.insert(2, 1.0);
        assert_eq!(csb.used_columns(0), 1);
    }

    #[test]
    fn concurrent_insertion_is_exact() {
        // A hot-column stress: many threads hammer a star graph's center.
        let n = 64usize;
        let owned: Vec<VertexId> = (0..n as u32).collect();
        let mut cap = vec![4u32; n];
        cap[0] = 8 * 1000; // center can take every message
        let csb = Csb::<f32>::new(CsbLayout::build(n, &owned, &cap, 4, 2), ColumnMode::Dynamic);
        run_parallel(8, |tid| {
            for i in 0..1000 {
                csb.insert(0, (tid * 1000 + i) as f32);
            }
        });
        let (profile, occupied, _) = csb.insert_stats();
        assert_eq!(profile.total, 8000);
        assert_eq!(profile.max_column, 8000);
        assert_eq!(occupied, 1);
        // Every inserted value must be present exactly once.
        let pos = csb.layout.position[0];
        let g = csb.layout.group_of(pos);
        let col = (0..csb.used_columns(g))
            .find(|&c| csb.column_position(g, c) == Some(pos))
            .unwrap();
        let mut seen: Vec<f32> = (0..8000).map(|r| csb.cell(g, r, col)).collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, &v) in seen.iter().enumerate() {
            assert_eq!(v, i as f32);
        }
    }

    #[test]
    fn insert_slice_matches_per_message_insert() {
        let a = paper_csb(ColumnMode::Dynamic);
        let b = paper_csb(ColumnMode::Dynamic);
        let msgs: Vec<(VertexId, f32)> = paper_table1_messages()
            .into_iter()
            .map(|(src, dst)| (dst, src as f32))
            .collect();
        for &(dst, v) in &msgs {
            a.insert(dst, v);
        }
        b.insert_slice(&msgs);
        let (pa, oa, _) = a.insert_stats();
        let (pb, ob, _) = b.insert_stats();
        assert_eq!(pa, pb);
        assert_eq!(oa, ob);
        // Same per-destination cell contents (insertion order preserved
        // within each destination run).
        for g in 0..a.layout.num_groups() {
            for c in 0..a.used_columns(g) {
                let pos = a.column_position(g, c).unwrap();
                let cb = (0..b.used_columns(g))
                    .find(|&c2| b.column_position(g, c2) == Some(pos))
                    .expect("same positions occupied");
                for r in 0..a.column_count(g, c) as usize {
                    assert_eq!(a.cell(g, r, c), b.cell(g, r, cb));
                }
            }
        }
    }

    #[test]
    fn insert_slice_claims_runs_with_one_cursor_bump() {
        // A run of 3 messages for vertex 9 plus 1 for vertex 2: two runs.
        let csb = paper_csb(ColumnMode::Dynamic);
        csb.insert_slice(&[(9, 1.0), (9, 2.0), (9, 3.0), (2, 4.0)]);
        let (profile, occupied, allocs) = csb.insert_stats();
        assert_eq!(profile.total, 4);
        assert_eq!(profile.max_column, 3);
        assert_eq!(occupied, 2);
        assert_eq!(allocs, 2, "one column allocation per destination");
        // The run's values are in rows 0..3 of vertex 9's column, in order.
        let pos = csb.layout.position[9];
        let g = csb.layout.group_of(pos);
        let col = (0..csb.used_columns(g))
            .find(|&c| csb.column_position(g, c) == Some(pos))
            .unwrap();
        assert_eq!(
            [
                csb.cell(g, 0, col),
                csb.cell(g, 1, col),
                csb.cell(g, 2, col)
            ],
            [1.0, 2.0, 3.0]
        );
    }

    #[test]
    #[should_panic(expected = "more than its capacity")]
    fn insert_slice_over_capacity_panics() {
        let csb = paper_csb(ColumnMode::Dynamic);
        // Vertex 5 has capacity 5; a 6-run overflows in one claim.
        let msgs: Vec<(VertexId, f32)> = (0..6).map(|i| (5, i as f32)).collect();
        csb.insert_slice(&msgs);
    }

    #[test]
    #[should_panic(expected = "more than its capacity")]
    fn over_capacity_insertion_panics() {
        let csb = paper_csb(ColumnMode::Dynamic);
        for _ in 0..6 {
            csb.insert(5, 1.0); // vertex 5 has capacity 5
        }
    }

    #[test]
    #[should_panic(expected = "non-owned")]
    fn non_owned_destination_panics() {
        let g = paper_example();
        let owned: Vec<VertexId> = vec![0, 1, 2];
        let indeg = g.in_degrees();
        let cap: Vec<u32> = owned.iter().map(|&v| indeg[v as usize]).collect();
        let csb = Csb::<f32>::new(
            CsbLayout::build(16, &owned, &cap, 4, 2),
            ColumnMode::Dynamic,
        );
        csb.insert(9, 1.0);
    }
}
