//! Concurrent message insertion into the condensed static buffer.
//!
//! Two column-mapping strategies from §IV.C / Figure 3:
//!
//! * [`ColumnMode::OneToOne`] — "a pre-determined mapping between the
//!   vertices and the columns": position `p` always uses column
//!   `p mod width` of its group. Simple, but leaves SIMD lanes idle when
//!   few vertices of a group receive messages (Fig. 3a).
//! * [`ColumnMode::Dynamic`] — *dynamic column allocation*: an index array
//!   (one entry per position, reset to −1 each iteration) plus a column
//!   offset per group; the first message for a vertex claims the next free
//!   column under the group's allocation lock (Fig. 3b). Occupied columns
//!   are condensed to the front, so "i (i < k) loop(s) of instructions may
//!   process all the vertices in the vertex-group".
//!
//! Within a column, slots are claimed by an atomic cursor (`fetch_add`),
//! which plays the role of the paper's per-column lock: each message gets a
//! unique `(row, column)` cell, making the raw write race-free.

use super::layout::{CsbLayout, NOT_OWNED};
use phigraph_device::counters::InsertProfile;
use phigraph_graph::{SplitMix64, VertexId};
use phigraph_recover::integrity::message_digest;
use phigraph_simd::{AVec, MsgValue};
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Why an insertion was rejected. The panicking [`Csb::insert`] /
/// [`Csb::insert_slice`] wrappers preserve the historical messages; the
/// `try_` variants surface these typed errors instead so recovery drivers
/// (and the `PoisonInsert` fault path) can react without unwinding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CsbInsertError {
    /// Destination id is outside the graph's vertex range entirely — a
    /// corrupt destination that would otherwise index the redirection map
    /// out of bounds.
    OutOfRange {
        /// The offending destination id.
        dst: VertexId,
        /// Number of vertices the redirection map covers.
        vertices: usize,
    },
    /// Destination is a real vertex but not owned by this device's buffer.
    NotOwned {
        /// The offending destination id.
        dst: VertexId,
    },
    /// The destination vertex received more messages than its declared
    /// capacity; the column cursor is left past the end, so the buffer
    /// must be reset before reuse.
    OverCapacity {
        /// The offending destination id.
        dst: VertexId,
        /// The vertex's declared row capacity.
        capacity: u32,
    },
}

impl std::fmt::Display for CsbInsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsbInsertError::OutOfRange { dst, vertices } => write!(
                f,
                "message for out-of-range vertex {dst} (graph has {vertices} vertices)"
            ),
            CsbInsertError::NotOwned { dst } => {
                write!(f, "message for non-owned vertex {dst}")
            }
            CsbInsertError::OverCapacity { dst, capacity } => write!(
                f,
                "vertex {dst} received more than its capacity {capacity} messages"
            ),
        }
    }
}

impl std::error::Error for CsbInsertError {}

/// Column-mapping strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnMode {
    /// Fixed position→column mapping (Fig. 3a).
    OneToOne,
    /// Dynamic column allocation with index array + column offset (Fig. 3b).
    Dynamic,
}

/// Sentinel: column not yet bound to a position.
const COL_EMPTY: u32 = u32::MAX;

/// The condensed static buffer for message type `T`.
pub struct Csb<T: MsgValue> {
    /// The static layout (sort order, groups, redirection map).
    pub layout: CsbLayout,
    /// Column mapping strategy.
    pub mode: ColumnMode,
    data: AVec<T>,
    /// Messages inserted per global column (the insertion cursor).
    col_count: Vec<AtomicU32>,
    /// Position served by each global column this iteration.
    col_pos: Vec<AtomicU32>,
    /// Per-position allocated column-in-group, or −1 (the index array).
    index: Vec<AtomicI32>,
    /// Per-group next free column (the column offset).
    group_next: Vec<AtomicU32>,
    /// Per-group allocation lock ("using locking in the process").
    group_locks: Vec<Mutex<()>>,
    /// Columns allocated since the last reset.
    allocs: AtomicU64,
    /// Integrity kill switch: when false (the default) no checksum work
    /// happens anywhere on the insertion path — one relaxed load per
    /// insert/batch, so the disabled path stays bit-identical and
    /// near-zero-cost.
    audit: AtomicBool,
    /// Per-group commutative message checksum: the `wrapping_add` fold of
    /// [`message_digest`] over every message inserted into the group since
    /// the last reset. Order-independent, so racy mover interleavings all
    /// produce the same sum.
    group_sums: Vec<AtomicU64>,
}

impl<T: MsgValue> Csb<T> {
    /// Allocate the buffer for `layout` (done once, before any iteration —
    /// the *static* in CSB).
    pub fn new(layout: CsbLayout, mode: ColumnMode) -> Self {
        let cols = layout.num_groups() * layout.width;
        let mut csb = Csb {
            data: AVec::zeroed(layout.total_cells),
            col_count: (0..cols).map(|_| AtomicU32::new(0)).collect(),
            col_pos: (0..cols).map(|_| AtomicU32::new(COL_EMPTY)).collect(),
            index: (0..layout.num_positions())
                .map(|_| AtomicI32::new(-1))
                .collect(),
            group_next: (0..layout.num_groups())
                .map(|_| AtomicU32::new(0))
                .collect(),
            group_locks: (0..layout.num_groups()).map(|_| Mutex::new(())).collect(),
            allocs: AtomicU64::new(0),
            audit: AtomicBool::new(false),
            group_sums: (0..layout.num_groups())
                .map(|_| AtomicU64::new(0))
                .collect(),
            layout,
            mode,
        };
        if mode == ColumnMode::OneToOne {
            csb.bind_one_to_one();
        }
        csb
    }

    fn bind_one_to_one(&mut self) {
        for pos in 0..self.layout.num_positions() as u32 {
            let col = self.global_col(self.layout.group_of(pos), pos as usize % self.layout.width);
            self.col_pos[col].store(pos, Ordering::Relaxed);
        }
    }

    #[inline(always)]
    fn global_col(&self, group: usize, col_in_group: usize) -> usize {
        group * self.layout.width + col_in_group
    }

    /// Look up `dst` in the redirection map with typed errors instead of
    /// UB-adjacent raw indexing: a corrupt destination past the map is
    /// [`CsbInsertError::OutOfRange`], an unowned one is
    /// [`CsbInsertError::NotOwned`].
    #[inline(always)]
    fn resolve(&self, dst: VertexId) -> Result<u32, CsbInsertError> {
        let pos = *self
            .layout
            .position
            .get(dst as usize)
            .ok_or(CsbInsertError::OutOfRange {
                dst,
                vertices: self.layout.position.len(),
            })?;
        if pos == NOT_OWNED {
            return Err(CsbInsertError::NotOwned { dst });
        }
        Ok(pos)
    }

    /// Insert one message for `dst`. Thread-safe; callable concurrently
    /// from any number of threads (locking engine) or from the column's
    /// owning mover (pipelined engine).
    ///
    /// # Panics
    /// Panics if `dst` is not owned by this buffer's device, or if the
    /// program sends a vertex more messages than its declared capacity.
    /// Use [`Csb::try_insert`] for a non-unwinding variant.
    #[inline]
    pub fn insert(&self, dst: VertexId, value: T) {
        if let Err(e) = self.try_insert(dst, value) {
            panic!("{e}");
        }
    }

    /// Fallible [`Csb::insert`]: returns a typed [`CsbInsertError`] instead
    /// of panicking. On `Err(OverCapacity)` the column cursor is left past
    /// the end; the buffer must be [`Csb::reset`] before reuse (recovery
    /// drivers reset every step anyway).
    #[inline]
    pub fn try_insert(&self, dst: VertexId, value: T) -> Result<(), CsbInsertError> {
        let pos = self.resolve(dst)?;
        let group = self.layout.group_of(pos);
        let col_in_group = match self.mode {
            ColumnMode::OneToOne => pos as usize % self.layout.width,
            ColumnMode::Dynamic => self.column_for(pos, group),
        };
        let gcol = self.global_col(group, col_in_group);
        let row = self.col_count[gcol].fetch_add(1, Ordering::Relaxed) as usize;
        let info = &self.layout.groups[group];
        if row >= info.rows as usize {
            return Err(CsbInsertError::OverCapacity {
                dst,
                capacity: info.rows,
            });
        }
        let cell = info.cell_offset + row * self.layout.width + col_in_group;
        debug_assert!(cell < self.layout.total_cells);
        // SAFETY: (row, gcol) is unique — the fetch_add above hands out each
        // row of a column exactly once, and distinct columns map to distinct
        // cells. `cell < total_cells` because row < rows.
        unsafe { *self.data.base_ptr().add(cell) = value };
        if self.audit.load(Ordering::Relaxed) {
            self.group_sums[group].fetch_add(Self::digest_one(dst, value), Ordering::Relaxed);
        }
        Ok(())
    }

    /// Insert a drained queue slice of `(dst, value)` messages — the
    /// pipelined movers' batched path. Runs of equal consecutive
    /// destinations (common: a vertex's in-edges are generated together by
    /// one worker) resolve the redirection map once and claim their rows
    /// with a *single* `fetch_add` for the whole run instead of one per
    /// message. When the integrity audit is armed, the group checksum is
    /// likewise folded once per run (amortized — no per-message atomic).
    ///
    /// # Panics
    /// Same conditions as [`Csb::insert`]. Use [`Csb::try_insert_slice`]
    /// for the non-unwinding variant.
    pub fn insert_slice(&self, msgs: &[(VertexId, T)]) {
        if let Err(e) = self.try_insert_slice(msgs) {
            panic!("{e}");
        }
    }

    /// Fallible [`Csb::insert_slice`]. On error, messages of earlier runs
    /// in `msgs` have already landed; recovery resets the affected groups
    /// before replaying, so partial insertion is safe there.
    pub fn try_insert_slice(&self, msgs: &[(VertexId, T)]) -> Result<(), CsbInsertError> {
        let audit = self.audit.load(Ordering::Relaxed);
        let mut i = 0;
        while i < msgs.len() {
            let dst = msgs[i].0;
            let mut j = i + 1;
            while j < msgs.len() && msgs[j].0 == dst {
                j += 1;
            }
            let run = j - i;
            let pos = self.resolve(dst)?;
            let group = self.layout.group_of(pos);
            let col_in_group = match self.mode {
                ColumnMode::OneToOne => pos as usize % self.layout.width,
                ColumnMode::Dynamic => self.column_for(pos, group),
            };
            let gcol = self.global_col(group, col_in_group);
            let row0 = self.col_count[gcol].fetch_add(run as u32, Ordering::Relaxed) as usize;
            let info = &self.layout.groups[group];
            if row0 + run > info.rows as usize {
                return Err(CsbInsertError::OverCapacity {
                    dst,
                    capacity: info.rows,
                });
            }
            let base = info.cell_offset + row0 * self.layout.width + col_in_group;
            for (k, &(_, value)) in msgs[i..j].iter().enumerate() {
                debug_assert!(base + k * self.layout.width < self.layout.total_cells);
                // SAFETY: rows row0..row0+run of column gcol were claimed
                // above by one fetch_add; each (row, column) cell is written
                // exactly once, and row0+run <= rows keeps cells in bounds.
                unsafe { *self.data.base_ptr().add(base + k * self.layout.width) = value };
            }
            if audit {
                let mut sum = 0u64;
                for &(_, value) in &msgs[i..j] {
                    sum = sum.wrapping_add(Self::digest_one(dst, value));
                }
                self.group_sums[group].fetch_add(sum, Ordering::Relaxed);
            }
            i = j;
        }
        Ok(())
    }

    /// The per-message checksum contribution (see
    /// [`phigraph_recover::integrity::message_digest`]).
    #[inline]
    fn digest_one(dst: VertexId, value: T) -> u64 {
        let mut buf = [0u8; 16];
        value.write_le(&mut buf[..T::SIZE]);
        message_digest(dst, &buf[..T::SIZE])
    }

    /// Arm or disarm the per-group message checksums. Arming zeroes the
    /// sums; disarmed buffers skip every checksum branch (one relaxed load
    /// per insert or batch).
    pub fn set_audit(&self, enabled: bool) {
        if enabled {
            for s in &self.group_sums {
                s.store(0, Ordering::Relaxed);
            }
        }
        self.audit.store(enabled, Ordering::Relaxed);
    }

    /// Whether the per-group checksums are armed.
    pub fn audit_enabled(&self) -> bool {
        self.audit.load(Ordering::Relaxed)
    }

    /// Audit every vertex group: recompute the commutative checksum from
    /// the cells actually in the buffer and compare against the sums folded
    /// during insertion. Returns the indices of mismatched groups — the
    /// quarantine set. Call between the insert barrier and processing
    /// (single-threaded phase). Requires the audit switch armed for the
    /// whole generation, else everything mismatches vacuously.
    pub fn audit_groups(&self) -> Vec<usize> {
        let mut bad = Vec::new();
        for g in 0..self.layout.num_groups() {
            let mut expect = 0u64;
            for c in 0..self.used_columns(g) {
                let count = self.column_count(g, c);
                if count == 0 {
                    continue;
                }
                let Some(pos) = self.column_position(g, c) else {
                    continue;
                };
                let dst = self.layout.order[pos as usize];
                for r in 0..count as usize {
                    expect = expect.wrapping_add(Self::digest_one(dst, self.cell(g, r, c)));
                }
            }
            if expect != self.group_sums[g].load(Ordering::Acquire) {
                bad.push(g);
            }
        }
        bad
    }

    /// Reset only `groups` (column cursors, bindings, index entries, and
    /// checksums), leaving every other group's messages intact — the
    /// quarantine primitive: detection re-inserts just the affected groups'
    /// messages instead of regenerating the whole superstep.
    pub fn reset_groups(&self, groups: &[usize]) {
        for &g in groups {
            match self.mode {
                ColumnMode::Dynamic => {
                    let used = self.group_next[g].swap(0, Ordering::Relaxed) as usize;
                    for c in 0..used.min(self.layout.width) {
                        let gcol = self.global_col(g, c);
                        let pos = self.col_pos[gcol].swap(COL_EMPTY, Ordering::Relaxed);
                        if pos != COL_EMPTY {
                            self.index[pos as usize].store(-1, Ordering::Relaxed);
                        }
                        self.col_count[gcol].store(0, Ordering::Relaxed);
                    }
                }
                ColumnMode::OneToOne => {
                    for c in 0..self.layout.width {
                        self.col_count[self.global_col(g, c)].store(0, Ordering::Relaxed);
                    }
                }
            }
            self.group_sums[g].store(0, Ordering::Relaxed);
        }
    }

    /// Flip one seeded pseudo-random bit in one occupied message cell —
    /// the `BitFlipMessage` injection site. Returns the corrupted group, or
    /// `None` when the buffer holds no messages. Deterministic per seed.
    pub fn corrupt_cell(&self, seed: u64) -> Option<usize> {
        let mut occupied: Vec<(usize, usize, u32)> = Vec::new();
        let mut total: u64 = 0;
        for g in 0..self.layout.num_groups() {
            for c in 0..self.used_columns(g) {
                let count = self.column_count(g, c);
                if count > 0 {
                    occupied.push((g, c, count));
                    total += count as u64;
                }
            }
        }
        if total == 0 {
            return None;
        }
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut k = rng.random_range(0u64..total);
        for (g, c, count) in occupied {
            if k >= count as u64 {
                k -= count as u64;
                continue;
            }
            let row = k as usize;
            let bit = rng.random_range(0u64..(T::SIZE as u64 * 8)) as usize;
            let info = &self.layout.groups[g];
            let cell = info.cell_offset + row * self.layout.width + c;
            let mut buf = [0u8; 16];
            // SAFETY: bounds follow from column_count(g, c) > row.
            let v = unsafe { *self.data.base_ptr().add(cell) };
            v.write_le(&mut buf[..T::SIZE]);
            buf[bit / 8] ^= 1 << (bit % 8);
            let flipped = T::read_le(&buf[..T::SIZE]);
            unsafe { *self.data.base_ptr().add(cell) = flipped };
            return Some(g);
        }
        unreachable!("k < total by construction")
    }

    /// Dynamic column allocation for `pos` (Fig. 3b): check the index
    /// array; on miss, take the group lock and claim the next free column.
    #[inline]
    fn column_for(&self, pos: u32, group: usize) -> usize {
        let cached = self.index[pos as usize].load(Ordering::Acquire);
        if cached >= 0 {
            return cached as usize;
        }
        let _guard = self.group_locks[group].lock().unwrap();
        let again = self.index[pos as usize].load(Ordering::Relaxed);
        if again >= 0 {
            return again as usize;
        }
        let col = self.group_next[group].fetch_add(1, Ordering::Relaxed) as usize;
        debug_assert!(col < self.layout.width);
        self.col_pos[self.global_col(group, col)].store(pos, Ordering::Relaxed);
        self.index[pos as usize].store(col as i32, Ordering::Release);
        self.allocs.fetch_add(1, Ordering::Relaxed);
        col
    }

    /// Reset per-iteration state (index arrays to −1, column offsets and
    /// cursors to 0). Returns the number of cells touched, for the cost
    /// model's reset accounting.
    pub fn reset(&self) -> u64 {
        let mut touched = 0u64;
        match self.mode {
            ColumnMode::Dynamic => {
                for g in 0..self.layout.num_groups() {
                    let used = self.group_next[g].swap(0, Ordering::Relaxed) as usize;
                    for c in 0..used.min(self.layout.width) {
                        let gcol = self.global_col(g, c);
                        let pos = self.col_pos[gcol].swap(COL_EMPTY, Ordering::Relaxed);
                        if pos != COL_EMPTY {
                            self.index[pos as usize].store(-1, Ordering::Relaxed);
                        }
                        self.col_count[gcol].store(0, Ordering::Relaxed);
                        touched += 3;
                    }
                }
            }
            ColumnMode::OneToOne => {
                for c in &self.col_count {
                    if c.swap(0, Ordering::Relaxed) != 0 {
                        touched += 1;
                    }
                }
            }
        }
        if self.audit.load(Ordering::Relaxed) {
            for s in &self.group_sums {
                s.store(0, Ordering::Relaxed);
            }
        }
        self.allocs.store(0, Ordering::Relaxed);
        touched
    }

    /// Columns currently in use in `group` (dynamic: the column offset;
    /// one-to-one: the full width, since any column may hold messages).
    #[inline]
    pub fn used_columns(&self, group: usize) -> usize {
        match self.mode {
            ColumnMode::Dynamic => {
                (self.group_next[group].load(Ordering::Acquire) as usize).min(self.layout.width)
            }
            ColumnMode::OneToOne => {
                let n = self.layout.num_positions();
                (n - (group * self.layout.width).min(n)).min(self.layout.width)
            }
        }
    }

    /// Message count of a global column.
    #[inline(always)]
    pub fn column_count(&self, group: usize, col_in_group: usize) -> u32 {
        self.col_count[self.global_col(group, col_in_group)].load(Ordering::Acquire)
    }

    /// Position served by a global column (or `None` if unbound/empty).
    #[inline]
    pub fn column_position(&self, group: usize, col_in_group: usize) -> Option<u32> {
        let p = self.col_pos[self.global_col(group, col_in_group)].load(Ordering::Acquire);
        (p != COL_EMPTY).then_some(p)
    }

    /// Contention/occupancy statistics after a generation phase:
    /// `(profile, occupied_columns, column_allocations)`.
    pub fn insert_stats(&self) -> (InsertProfile, u64, u64) {
        let mut profile = InsertProfile::default();
        let mut occupied = 0u64;
        for g in 0..self.layout.num_groups() {
            for c in 0..self.used_columns(g) {
                let count = self.column_count(g, c) as u64;
                if count > 0 {
                    profile.record(count);
                    occupied += 1;
                }
            }
        }
        (profile, occupied, self.allocs.load(Ordering::Relaxed))
    }

    /// Raw cell pointer (processing phase; tasks own disjoint groups).
    #[inline(always)]
    pub(crate) fn data_ptr(&self) -> *mut T {
        self.data.base_ptr()
    }

    /// Total allocated cells.
    pub fn total_cells(&self) -> usize {
        self.layout.total_cells
    }

    /// Read one cell (tests / debugging).
    pub fn cell(&self, group: usize, row: usize, col_in_group: usize) -> T {
        let info = &self.layout.groups[group];
        assert!(row < info.rows as usize && col_in_group < self.layout.width);
        // SAFETY: bounds asserted; read-only access after a phase barrier.
        unsafe {
            *self
                .data_ptr()
                .add(info.cell_offset + row * self.layout.width + col_in_group)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_device::pool::run_parallel;
    use phigraph_graph::generators::small::{paper_example, paper_table1_messages};

    fn paper_csb(mode: ColumnMode) -> Csb<f32> {
        let g = paper_example();
        let owned: Vec<VertexId> = (0..16).collect();
        let cap = g.in_degrees();
        Csb::new(CsbLayout::build(16, &owned, &cap, 4, 2), mode)
    }

    #[test]
    fn table1_insertion_one_to_one_matches_figure_3a() {
        let csb = paper_csb(ColumnMode::OneToOne);
        for (src, dst) in paper_table1_messages() {
            csb.insert(dst, src as f32);
        }
        // Destinations and their positions: 2→1, 6→6, 9→3, 12→11, 10→9, 7→7.
        assert_eq!(csb.column_count(0, 1), 2); // vertex 2 got two messages
        assert_eq!(csb.column_count(0, 3), 2); // vertex 9
        assert_eq!(csb.column_count(0, 6), 1); // vertex 6
        assert_eq!(csb.column_count(0, 7), 1); // vertex 7
        assert_eq!(csb.column_count(1, 1), 1); // vertex 10 (position 9)
        assert_eq!(csb.column_count(1, 3), 1); // vertex 12 (position 11)
                                               // Untouched columns stay empty.
        assert_eq!(csb.column_count(0, 0), 0);
        assert_eq!(csb.column_count(0, 5), 0);
    }

    #[test]
    fn table1_insertion_dynamic_condenses_columns_like_figure_3b() {
        let csb = paper_csb(ColumnMode::Dynamic);
        for (src, dst) in paper_table1_messages() {
            csb.insert(dst, src as f32);
        }
        // Group 0 received messages for 4 distinct vertices (2, 9, 6, 7):
        // dynamic allocation packs them into columns 0..4 — a single
        // 4-lane vector array covers them all (the Fig. 3b win).
        assert_eq!(csb.used_columns(0), 4);
        // Group 1 received messages for 2 distinct vertices (10, 12).
        assert_eq!(csb.used_columns(1), 2);
        let (profile, occupied, allocs) = csb.insert_stats();
        assert_eq!(profile.total, 8);
        assert_eq!(profile.max_column, 2);
        assert_eq!(occupied, 6);
        assert_eq!(allocs, 6);
    }

    #[test]
    fn insertion_values_land_in_claimed_cells() {
        let csb = paper_csb(ColumnMode::Dynamic);
        csb.insert(9, 11.0); // from vertex 11
        csb.insert(9, 13.0); // from vertex 13
                             // Vertex 9 is position 3 in group 0; its column holds both values
                             // in rows 0 and 1 (order depends on insertion order here).
        let col = (0..csb.used_columns(0))
            .find(|&c| csb.column_position(0, c) == Some(3))
            .expect("column for vertex 9");
        let got = [csb.cell(0, 0, col), csb.cell(0, 1, col)];
        assert_eq!(got, [11.0, 13.0]);
    }

    #[test]
    fn reset_clears_state_for_next_iteration() {
        let csb = paper_csb(ColumnMode::Dynamic);
        for (src, dst) in paper_table1_messages() {
            csb.insert(dst, src as f32);
        }
        let touched = csb.reset();
        assert!(touched > 0);
        assert_eq!(csb.used_columns(0), 0);
        let (profile, occupied, allocs) = csb.insert_stats();
        assert_eq!(profile.total, 0);
        assert_eq!(occupied, 0);
        assert_eq!(allocs, 0);
        // Buffer is reusable.
        csb.insert(2, 1.0);
        assert_eq!(csb.used_columns(0), 1);
    }

    #[test]
    fn concurrent_insertion_is_exact() {
        // A hot-column stress: many threads hammer a star graph's center.
        let n = 64usize;
        let owned: Vec<VertexId> = (0..n as u32).collect();
        let mut cap = vec![4u32; n];
        cap[0] = 8 * 1000; // center can take every message
        let csb = Csb::<f32>::new(CsbLayout::build(n, &owned, &cap, 4, 2), ColumnMode::Dynamic);
        run_parallel(8, |tid| {
            for i in 0..1000 {
                csb.insert(0, (tid * 1000 + i) as f32);
            }
        });
        let (profile, occupied, _) = csb.insert_stats();
        assert_eq!(profile.total, 8000);
        assert_eq!(profile.max_column, 8000);
        assert_eq!(occupied, 1);
        // Every inserted value must be present exactly once.
        let pos = csb.layout.position[0];
        let g = csb.layout.group_of(pos);
        let col = (0..csb.used_columns(g))
            .find(|&c| csb.column_position(g, c) == Some(pos))
            .unwrap();
        let mut seen: Vec<f32> = (0..8000).map(|r| csb.cell(g, r, col)).collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, &v) in seen.iter().enumerate() {
            assert_eq!(v, i as f32);
        }
    }

    #[test]
    fn insert_slice_matches_per_message_insert() {
        let a = paper_csb(ColumnMode::Dynamic);
        let b = paper_csb(ColumnMode::Dynamic);
        let msgs: Vec<(VertexId, f32)> = paper_table1_messages()
            .into_iter()
            .map(|(src, dst)| (dst, src as f32))
            .collect();
        for &(dst, v) in &msgs {
            a.insert(dst, v);
        }
        b.insert_slice(&msgs);
        let (pa, oa, _) = a.insert_stats();
        let (pb, ob, _) = b.insert_stats();
        assert_eq!(pa, pb);
        assert_eq!(oa, ob);
        // Same per-destination cell contents (insertion order preserved
        // within each destination run).
        for g in 0..a.layout.num_groups() {
            for c in 0..a.used_columns(g) {
                let pos = a.column_position(g, c).unwrap();
                let cb = (0..b.used_columns(g))
                    .find(|&c2| b.column_position(g, c2) == Some(pos))
                    .expect("same positions occupied");
                for r in 0..a.column_count(g, c) as usize {
                    assert_eq!(a.cell(g, r, c), b.cell(g, r, cb));
                }
            }
        }
    }

    #[test]
    fn insert_slice_claims_runs_with_one_cursor_bump() {
        // A run of 3 messages for vertex 9 plus 1 for vertex 2: two runs.
        let csb = paper_csb(ColumnMode::Dynamic);
        csb.insert_slice(&[(9, 1.0), (9, 2.0), (9, 3.0), (2, 4.0)]);
        let (profile, occupied, allocs) = csb.insert_stats();
        assert_eq!(profile.total, 4);
        assert_eq!(profile.max_column, 3);
        assert_eq!(occupied, 2);
        assert_eq!(allocs, 2, "one column allocation per destination");
        // The run's values are in rows 0..3 of vertex 9's column, in order.
        let pos = csb.layout.position[9];
        let g = csb.layout.group_of(pos);
        let col = (0..csb.used_columns(g))
            .find(|&c| csb.column_position(g, c) == Some(pos))
            .unwrap();
        assert_eq!(
            [
                csb.cell(g, 0, col),
                csb.cell(g, 1, col),
                csb.cell(g, 2, col)
            ],
            [1.0, 2.0, 3.0]
        );
    }

    #[test]
    #[should_panic(expected = "more than its capacity")]
    fn insert_slice_over_capacity_panics() {
        let csb = paper_csb(ColumnMode::Dynamic);
        // Vertex 5 has capacity 5; a 6-run overflows in one claim.
        let msgs: Vec<(VertexId, f32)> = (0..6).map(|i| (5, i as f32)).collect();
        csb.insert_slice(&msgs);
    }

    #[test]
    #[should_panic(expected = "more than its capacity")]
    fn over_capacity_insertion_panics() {
        let csb = paper_csb(ColumnMode::Dynamic);
        for _ in 0..6 {
            csb.insert(5, 1.0); // vertex 5 has capacity 5
        }
    }

    #[test]
    #[should_panic(expected = "non-owned")]
    fn non_owned_destination_panics() {
        let g = paper_example();
        let owned: Vec<VertexId> = vec![0, 1, 2];
        let indeg = g.in_degrees();
        let cap: Vec<u32> = owned.iter().map(|&v| indeg[v as usize]).collect();
        let csb = Csb::<f32>::new(
            CsbLayout::build(16, &owned, &cap, 4, 2),
            ColumnMode::Dynamic,
        );
        csb.insert(9, 1.0);
    }

    #[test]
    fn try_insert_returns_typed_errors() {
        let g = paper_example();
        let owned: Vec<VertexId> = vec![0, 1, 2];
        let indeg = g.in_degrees();
        let cap: Vec<u32> = owned.iter().map(|&v| indeg[v as usize]).collect();
        let csb = Csb::<f32>::new(
            CsbLayout::build(16, &owned, &cap, 4, 2),
            ColumnMode::Dynamic,
        );
        // Out-of-range destination: rejected before touching the map.
        assert_eq!(
            csb.try_insert(999, 1.0),
            Err(CsbInsertError::OutOfRange {
                dst: 999,
                vertices: 16
            })
        );
        // Real vertex, wrong device.
        assert_eq!(
            csb.try_insert(9, 1.0),
            Err(CsbInsertError::NotOwned { dst: 9 })
        );
        assert!(csb.try_insert(2, 1.0).is_ok());
        // Errors display the historical panic text (substring-compatible).
        assert!(CsbInsertError::NotOwned { dst: 9 }
            .to_string()
            .contains("non-owned vertex 9"));
    }

    #[test]
    fn try_insert_slice_surfaces_poisoned_capacity_overflow() {
        // The PoisonInsert fault path drives an over-capacity batch through
        // the typed-error API: no unwinding, a clear quarantine signal.
        let csb = paper_csb(ColumnMode::Dynamic);
        let msgs: Vec<(VertexId, f32)> = (0..6).map(|i| (5, i as f32)).collect();
        let err = csb.try_insert_slice(&msgs).unwrap_err();
        assert!(matches!(err, CsbInsertError::OverCapacity { dst: 5, .. }));
        assert!(err.to_string().contains("more than its capacity"));
        // And the buffer is reusable after a reset.
        csb.reset();
        assert!(csb.try_insert_slice(&[(5, 1.0), (2, 2.0)]).is_ok());
    }

    #[test]
    fn audit_accepts_clean_buffer_and_catches_every_flip() {
        for mode in [ColumnMode::Dynamic, ColumnMode::OneToOne] {
            let csb = paper_csb(mode);
            csb.set_audit(true);
            for (src, dst) in paper_table1_messages() {
                csb.insert(dst, src as f32);
            }
            assert_eq!(csb.audit_groups(), Vec::<usize>::new(), "{mode:?}");
            // Every seed corrupts some occupied cell; the audit must name
            // exactly the corrupted group each time.
            for seed in 0..32u64 {
                let g = csb.corrupt_cell(seed).expect("buffer has messages");
                assert_eq!(csb.audit_groups(), vec![g], "seed {seed} {mode:?}");
                // Heal by re-inserting the quarantined group's messages.
                csb.reset_groups(&[g]);
                for (src, dst) in paper_table1_messages() {
                    let pos = csb.layout.position[dst as usize];
                    if csb.layout.group_of(pos) == g {
                        csb.insert(dst, src as f32);
                    }
                }
                assert_eq!(csb.audit_groups(), Vec::<usize>::new());
            }
        }
    }

    #[test]
    fn audit_disabled_is_inert() {
        let csb = paper_csb(ColumnMode::Dynamic);
        assert!(!csb.audit_enabled());
        for (src, dst) in paper_table1_messages() {
            csb.insert(dst, src as f32);
        }
        // Sums were never folded; corruption goes unseen — exactly the
        // silent failure mode the integrity mode exists to close.
        csb.corrupt_cell(7).unwrap();
        // (audit_groups with a disarmed switch is meaningless; just check
        // the switch state and that inserts did no checksum work.)
        assert!(!csb.audit_enabled());
    }

    #[test]
    fn reset_groups_leaves_other_groups_intact() {
        let csb = paper_csb(ColumnMode::Dynamic);
        csb.set_audit(true);
        for (src, dst) in paper_table1_messages() {
            csb.insert(dst, src as f32);
        }
        let before_g1: Vec<u32> = (0..csb.used_columns(1))
            .map(|c| csb.column_count(1, c))
            .collect();
        csb.reset_groups(&[0]);
        assert_eq!(csb.used_columns(0), 0);
        let after_g1: Vec<u32> = (0..csb.used_columns(1))
            .map(|c| csb.column_count(1, c))
            .collect();
        assert_eq!(before_g1, after_g1);
        assert_eq!(csb.audit_groups(), Vec::<usize>::new());
    }

    #[test]
    fn slice_audit_matches_per_message_audit() {
        // The amortized per-run fold must equal the per-message fold.
        let a = paper_csb(ColumnMode::Dynamic);
        let b = paper_csb(ColumnMode::Dynamic);
        a.set_audit(true);
        b.set_audit(true);
        let msgs: Vec<(VertexId, f32)> = paper_table1_messages()
            .into_iter()
            .map(|(src, dst)| (dst, src as f32))
            .collect();
        for &(dst, v) in &msgs {
            a.insert(dst, v);
        }
        b.insert_slice(&msgs);
        assert_eq!(a.audit_groups(), Vec::<usize>::new());
        assert_eq!(b.audit_groups(), Vec::<usize>::new());
    }
}
