//! Single-producer single-consumer message queues for the pipelined engine.
//!
//! "This strategy guarantees that each message queue is only written by only
//! one thread, as well as read by only one thread." Each (worker, mover)
//! pair owns one bounded ring: the worker pushes generated messages, the
//! mover drains them into the condensed static buffer.
//!
//! The ring follows the cached-index design of FastForward/MCRingBuffer
//! (the lineage the paper's message pipeline descends from): the producer
//! keeps a private *cache* of the consumer's head and the consumer keeps a
//! private cache of the producer's tail, so the two threads only touch each
//! other's control cache line when their cached view runs out. Batched
//! entry points ([`SpscQueue::push_slice`], [`SpscQueue::pop_slices`])
//! amortize further: one Release publish per batch instead of per message.
//! See `docs/pipeline.md` for the full memory-ordering argument.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Pads its contents to (at least) two typical cache lines so the producer
/// and consumer control words never share a line (false sharing is the
/// entire cost this design removes).
#[repr(align(128))]
struct CachePadded<T>(T);

/// Producer-owned control block: the published tail plus a stale-but-safe
/// cache of the consumer's head.
struct ProducerSide {
    /// Next slot to write. Stored with `Release` to publish items.
    tail: AtomicUsize,
    /// Last head value the producer observed. Only ever behind the true
    /// head, so `cap - (tail - head_cache)` under-estimates free space and
    /// never over-claims. Touched only by the producer thread.
    head_cache: UnsafeCell<usize>,
}

/// Consumer-owned control block: the published head plus a stale-but-safe
/// cache of the producer's tail.
struct ConsumerSide {
    /// Next slot to read. Stored with `Release` to return slots.
    head: AtomicUsize,
    /// Last tail value the consumer observed. Only ever behind the true
    /// tail, so `tail_cache - head` under-estimates available items and
    /// never reads unpublished slots. Touched only by the consumer thread.
    tail_cache: UnsafeCell<usize>,
}

/// A bounded SPSC ring buffer with cached indices and batched transfer.
pub struct SpscQueue<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
    prod: CachePadded<ProducerSide>,
    cons: CachePadded<ConsumerSide>,
    closed: AtomicBool,
}

// SAFETY: the SPSC discipline (one producer thread, one consumer thread)
// is the documented contract of every unsafe method; under it, each
// UnsafeCell is touched by exactly one thread and slot ownership is
// handed over through the Release/Acquire head/tail pairs.
unsafe impl<T: Send> Send for SpscQueue<T> {}
unsafe impl<T: Send> Sync for SpscQueue<T> {}

impl<T> SpscQueue<T> {
    /// Create a queue with capacity `cap` (rounded up to at least 2).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(2);
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpscQueue {
            slots,
            cap,
            prod: CachePadded(ProducerSide {
                tail: AtomicUsize::new(0),
                head_cache: UnsafeCell::new(0),
            }),
            cons: CachePadded(ConsumerSide {
                head: AtomicUsize::new(0),
                tail_cache: UnsafeCell::new(0),
            }),
            closed: AtomicBool::new(false),
        }
    }

    /// Ring capacity in items.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Free slots as seen by the producer at `tail`, refreshing the head
    /// cache from the shared atomic only when the cached view says "full".
    ///
    /// # Safety
    /// Producer thread only.
    #[inline]
    unsafe fn free_slots(&self, tail: usize) -> usize {
        let cached = *self.prod.0.head_cache.get();
        let free = self.cap - tail.wrapping_sub(cached);
        if free > 0 {
            return free;
        }
        let head = self.cons.0.head.load(Ordering::Acquire);
        *self.prod.0.head_cache.get() = head;
        self.cap - tail.wrapping_sub(head)
    }

    /// Items available to the consumer at `head`, refreshing the tail cache
    /// only when the cached view says "empty".
    ///
    /// # Safety
    /// Consumer thread only.
    #[inline]
    unsafe fn available(&self, head: usize) -> usize {
        let cached = *self.cons.0.tail_cache.get();
        let avail = cached.wrapping_sub(head);
        if avail > 0 {
            return avail;
        }
        let tail = self.prod.0.tail.load(Ordering::Acquire);
        *self.cons.0.tail_cache.get() = tail;
        tail.wrapping_sub(head)
    }

    /// Push one item, spinning (with yields) while the ring is full.
    /// Returns the number of full-queue spin iterations (backpressure).
    ///
    /// # Safety
    /// Must be called from exactly one producer thread.
    pub unsafe fn push(&self, item: T) -> u64 {
        let tail = self.prod.0.tail.load(Ordering::Relaxed);
        let mut spins = 0u64;
        while self.free_slots(tail) == 0 {
            spins += 1;
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        // SAFETY: slot `tail % cap` is free (tail - head < cap) and only
        // this producer writes tails.
        (*self.slots[tail % self.cap].get()).write(item);
        self.prod
            .0
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        spins
    }

    /// Push one item *without* waiting: when the ring is full the item
    /// comes straight back as `Err`, so the caller can reject instead of
    /// blocking. This is the admission-control face of the ring — the
    /// serving daemon turns an `Err` into a reject-with-retry-after
    /// response rather than stalling the accept loop.
    ///
    /// # Safety
    /// Must be called from exactly one producer thread (or producers
    /// serialized by an external lock, which restores the single-producer
    /// discipline).
    pub unsafe fn try_push(&self, item: T) -> Result<(), T> {
        let tail = self.prod.0.tail.load(Ordering::Relaxed);
        if self.free_slots(tail) == 0 {
            return Err(item);
        }
        // SAFETY: slot `tail % cap` is free (tail - head < cap) and only
        // this producer writes tails.
        (*self.slots[tail % self.cap].get()).write(item);
        self.prod
            .0
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Items currently in the ring, as seen from the producer side. An
    /// estimate under concurrency (the consumer may drain concurrently),
    /// but it only ever *over*-states occupancy, so admission decisions
    /// based on it are conservative.
    pub fn occupancy(&self) -> usize {
        let tail = self.prod.0.tail.load(Ordering::Acquire);
        let head = self.cons.0.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Push a whole slice, publishing the tail once per contiguous chunk
    /// (at most twice per ring revolution) instead of once per item.
    /// Spins with yields whenever the ring fills mid-slice. Returns the
    /// number of full-queue spin iterations (backpressure).
    ///
    /// # Safety
    /// Must be called from exactly one producer thread.
    pub unsafe fn push_slice(&self, items: &[T]) -> u64
    where
        T: Copy,
    {
        let mut spins = 0u64;
        let mut tail = self.prod.0.tail.load(Ordering::Relaxed);
        let mut rest = items;
        while !rest.is_empty() {
            let mut free = self.free_slots(tail);
            while free == 0 {
                spins += 1;
                std::hint::spin_loop();
                std::thread::yield_now();
                free = self.free_slots(tail);
            }
            let n = free.min(rest.len());
            let idx = tail % self.cap;
            let first = n.min(self.cap - idx);
            // SAFETY: slots [idx, idx+first) and, on wrap, [0, n-first) are
            // free (n <= free slots); `T: Copy` means no drops are skipped.
            std::ptr::copy_nonoverlapping(rest.as_ptr(), self.slots[idx].get().cast::<T>(), first);
            if n > first {
                std::ptr::copy_nonoverlapping(
                    rest.as_ptr().add(first),
                    self.slots[0].get().cast::<T>(),
                    n - first,
                );
            }
            tail = tail.wrapping_add(n);
            // One Release publish for the whole chunk: the consumer's
            // Acquire load of `tail` makes every slot write above visible.
            self.prod.0.tail.store(tail, Ordering::Release);
            rest = &rest[n..];
        }
        spins
    }

    /// Pop up to `max` items into `out`. Consumer side only. Returns the
    /// number popped. (Per-item move path; works for non-`Copy` payloads.)
    ///
    /// # Safety
    /// Must be called from exactly one consumer thread.
    pub unsafe fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let head = self.cons.0.head.load(Ordering::Relaxed);
        let avail = self.available(head).min(max);
        for i in 0..avail {
            // SAFETY: slots head..head+avail were published by the producer.
            let v = (*self.slots[(head + i) % self.cap].get()).assume_init_read();
            out.push(v);
        }
        self.cons
            .0
            .head
            .store(head.wrapping_add(avail), Ordering::Release);
        avail
    }

    /// Drain up to `max` items, handing the consumer *borrowed slices* of
    /// the ring (one, or two when the range wraps) instead of moving items
    /// out one by one. The head is republished once after `f` returns.
    /// Returns the number of items consumed.
    ///
    /// # Safety
    /// Must be called from exactly one consumer thread. The slices passed
    /// to `f` are invalidated when this call returns.
    pub unsafe fn pop_slices<F: FnMut(&[T])>(&self, max: usize, mut f: F) -> usize
    where
        T: Copy,
    {
        let head = self.cons.0.head.load(Ordering::Relaxed);
        let avail = self.available(head).min(max);
        if avail == 0 {
            return 0;
        }
        let idx = head % self.cap;
        let first = avail.min(self.cap - idx);
        // SAFETY: slots [idx, idx+first) were published by the producer's
        // Release tail store and are initialized.
        f(std::slice::from_raw_parts(
            self.slots[idx].get().cast::<T>(),
            first,
        ));
        if avail > first {
            // SAFETY: wrap segment [0, avail-first) is likewise published.
            f(std::slice::from_raw_parts(
                self.slots[0].get().cast::<T>(),
                avail - first,
            ));
        }
        // One Release publish returns all consumed slots to the producer.
        self.cons
            .0
            .head
            .store(head.wrapping_add(avail), Ordering::Release);
        avail
    }

    /// Mark the producer as finished.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// True when the producer closed the queue *and* everything was popped.
    pub fn is_drained(&self) -> bool {
        self.closed.load(Ordering::Acquire)
            && self.cons.0.head.load(Ordering::Acquire) == self.prod.0.tail.load(Ordering::Acquire)
    }
}

impl<T> Drop for SpscQueue<T> {
    fn drop(&mut self) {
        // Drop any unconsumed items.
        let head = *self.cons.0.head.get_mut();
        let tail = *self.prod.0.tail.get_mut();
        for i in head..tail {
            // SAFETY: slots head..tail hold initialized values; we have
            // exclusive access in drop.
            unsafe { (*self.slots[i % self.cap].get()).assume_init_drop() };
        }
    }
}

/// The queue matrix for one pipelined generation phase: `workers × movers`
/// queues, indexed `[worker][mover]`.
pub struct QueueMatrix<T> {
    queues: Vec<SpscQueue<T>>,
    /// Worker (producer) count.
    pub workers: usize,
    /// Mover (consumer) count.
    pub movers: usize,
    /// Per-queue ring capacity.
    pub cap: usize,
}

impl<T> QueueMatrix<T> {
    /// Allocate the matrix with per-queue capacity `cap`.
    pub fn new(workers: usize, movers: usize, cap: usize) -> Self {
        let workers = workers.max(1);
        let movers = movers.max(1);
        let queues: Vec<SpscQueue<T>> =
            (0..workers * movers).map(|_| SpscQueue::new(cap)).collect();
        let cap = queues[0].capacity();
        QueueMatrix {
            queues,
            workers,
            movers,
            cap,
        }
    }

    /// Queue written by `worker` and read by `mover`.
    #[inline(always)]
    pub fn queue(&self, worker: usize, mover: usize) -> &SpscQueue<T> {
        &self.queues[worker * self.movers + mover]
    }

    /// Close all queues produced by `worker`.
    pub fn close_worker(&self, worker: usize) {
        for m in 0..self.movers {
            self.queue(worker, m).close();
        }
    }

    /// True when every queue feeding `mover` is closed and empty.
    pub fn mover_done(&self, mover: usize) -> bool {
        (0..self.workers).all(|w| self.queue(w, mover).is_drained())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_single_thread() {
        let q = SpscQueue::new(8);
        // SAFETY: one thread is trivially a single producer and consumer.
        unsafe {
            for i in 0..5 {
                q.push(i);
            }
            let mut out = Vec::new();
            assert_eq!(q.pop_batch(&mut out, 3), 3);
            assert_eq!(out, vec![0, 1, 2]);
            assert_eq!(q.pop_batch(&mut out, 10), 2);
            assert_eq!(out, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn push_slice_pop_slices_round_trip_with_wrap() {
        let q = SpscQueue::new(8);
        // SAFETY: single thread.
        unsafe {
            // Advance the indices so a later slice wraps the ring edge.
            for i in 0..5u32 {
                q.push(i);
            }
            let mut sink = Vec::new();
            q.pop_slices(5, |s| sink.extend_from_slice(s));
            assert_eq!(sink, vec![0, 1, 2, 3, 4]);

            // 6 items into an 8-ring starting at index 5: wraps.
            let spins = q.push_slice(&[10, 11, 12, 13, 14, 15]);
            assert_eq!(spins, 0, "ring had space; no backpressure expected");
            let mut calls = 0;
            let mut got = Vec::new();
            let n = q.pop_slices(100, |s| {
                calls += 1;
                got.extend_from_slice(s);
            });
            assert_eq!(n, 6);
            assert_eq!(calls, 2, "wrapped range arrives as two slices");
            assert_eq!(got, vec![10, 11, 12, 13, 14, 15]);
        }
    }

    #[test]
    fn push_slice_larger_than_capacity_chunks_through() {
        let q = SpscQueue::new(4);
        let items: Vec<u32> = (0..1000).collect();
        std::thread::scope(|s| {
            s.spawn(|| {
                // SAFETY: single producer thread.
                let spins = unsafe { q.push_slice(&items) };
                // 1000 items through a 4-slot ring must hit the full state.
                assert!(spins > 0, "expected backpressure spins");
                q.close();
            });
            let mut got = Vec::new();
            while !q.is_drained() {
                // SAFETY: single consumer thread.
                unsafe { q.pop_slices(7, |s| got.extend_from_slice(s)) };
            }
            assert_eq!(got, items);
        });
    }

    #[test]
    fn cross_thread_transfer_preserves_order_and_count() {
        let q = SpscQueue::new(16);
        let n = 100_000u64;
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..n {
                    // SAFETY: single producer thread.
                    unsafe { q.push(i) };
                }
                q.close();
            });
            let mut got = Vec::new();
            while !q.is_drained() {
                // SAFETY: single consumer thread.
                unsafe { q.pop_batch(&mut got, 64) };
            }
            assert_eq!(got.len(), n as usize);
            for (i, &v) in got.iter().enumerate() {
                assert_eq!(v, i as u64);
            }
        });
    }

    #[test]
    fn try_push_rejects_when_full_without_spinning() {
        let q = SpscQueue::new(2);
        // SAFETY: single thread.
        unsafe {
            assert_eq!(q.try_push(1u32), Ok(()));
            assert_eq!(q.try_push(2u32), Ok(()));
            assert_eq!(q.occupancy(), 2);
            // Full ring: the item comes back instead of blocking.
            assert_eq!(q.try_push(3u32), Err(3));
            let mut out = Vec::new();
            q.pop_batch(&mut out, 1);
            assert_eq!(q.occupancy(), 1);
            assert_eq!(q.try_push(3u32), Ok(()));
            // Two pops: the consumer's tail cache is refreshed lazily, so
            // the item pushed after the first drain needs a second pass.
            q.pop_batch(&mut out, 10);
            q.pop_batch(&mut out, 10);
            assert_eq!(out, vec![1, 2, 3]);
            assert_eq!(q.occupancy(), 0);
        }
    }

    #[test]
    fn drop_releases_unconsumed_items() {
        let q = SpscQueue::new(8);
        // SAFETY: single thread.
        unsafe {
            q.push(String::from("a"));
            q.push(String::from("b"));
        }
        drop(q); // must not leak or double-free (checked under miri/asan)
    }

    #[test]
    fn matrix_routing_and_termination() {
        let m = QueueMatrix::<u32>::new(2, 3, 8);
        assert_eq!(m.cap, 8);
        // SAFETY: this test is single-threaded; the SPSC roles are disjoint
        // per queue.
        unsafe {
            m.queue(0, 1).push(11);
            m.queue(1, 1).push(21);
        }
        assert!(!m.mover_done(1));
        m.close_worker(0);
        m.close_worker(1);
        assert!(!m.mover_done(1), "queued items still pending");
        let mut out = Vec::new();
        unsafe {
            m.queue(0, 1).pop_batch(&mut out, 10);
            m.queue(1, 1).pop_batch(&mut out, 10);
        }
        assert_eq!(out, vec![11, 21]);
        assert!(m.mover_done(1));
        assert!(
            m.mover_done(0),
            "untouched movers with closed producers are done"
        );
    }
}
