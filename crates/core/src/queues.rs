//! Single-producer single-consumer message queues for the pipelined engine.
//!
//! "This strategy guarantees that each message queue is only written by only
//! one thread, as well as read by only one thread." Each (worker, mover)
//! pair owns one bounded ring: the worker pushes generated messages, the
//! mover drains them into the condensed static buffer. Built directly on
//! atomics (acquire/release head/tail — the classic SPSC ring of *Rust
//! Atomics and Locks* ch. 5), no per-message locking anywhere.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A bounded SPSC ring buffer.
pub struct SpscQueue<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
    /// Next slot to read (owned by the consumer).
    head: AtomicUsize,
    /// Next slot to write (owned by the producer).
    tail: AtomicUsize,
    closed: AtomicBool,
}

// SAFETY: the SPSC discipline (one producer thread, one consumer thread)
// is enforced by the split into Producer/Consumer handles below.
unsafe impl<T: Send> Send for SpscQueue<T> {}
unsafe impl<T: Send> Sync for SpscQueue<T> {}

impl<T> SpscQueue<T> {
    /// Create a queue with capacity `cap` (rounded up to at least 2).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(2);
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpscQueue {
            slots,
            cap,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// Push one item, spinning (with yields) while the ring is full.
    /// Producer side only.
    ///
    /// # Safety
    /// Must be called from exactly one producer thread.
    pub unsafe fn push(&self, item: T) {
        let tail = self.tail.load(Ordering::Relaxed);
        loop {
            let head = self.head.load(Ordering::Acquire);
            if tail.wrapping_sub(head) < self.cap {
                break;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        // SAFETY: slot `tail % cap` is free (tail - head < cap) and only
        // this producer writes tails.
        (*self.slots[tail % self.cap].get()).write(item);
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// Pop up to `max` items into `out`. Consumer side only. Returns the
    /// number popped.
    ///
    /// # Safety
    /// Must be called from exactly one consumer thread.
    pub unsafe fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        let avail = tail.wrapping_sub(head).min(max);
        for i in 0..avail {
            // SAFETY: slots head..head+avail were published by the producer.
            let v = (*self.slots[(head + i) % self.cap].get()).assume_init_read();
            out.push(v);
        }
        self.head.store(head.wrapping_add(avail), Ordering::Release);
        avail
    }

    /// Mark the producer as finished.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// True when the producer closed the queue *and* everything was popped.
    pub fn is_drained(&self) -> bool {
        self.closed.load(Ordering::Acquire)
            && self.head.load(Ordering::Acquire) == self.tail.load(Ordering::Acquire)
    }
}

impl<T> Drop for SpscQueue<T> {
    fn drop(&mut self) {
        // Drop any unconsumed items.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            // SAFETY: slots head..tail hold initialized values; we have
            // exclusive access in drop.
            unsafe { (*self.slots[i % self.cap].get()).assume_init_drop() };
        }
    }
}

/// The queue matrix for one pipelined generation phase: `workers × movers`
/// queues, indexed `[worker][mover]`.
pub struct QueueMatrix<T> {
    queues: Vec<SpscQueue<T>>,
    /// Worker (producer) count.
    pub workers: usize,
    /// Mover (consumer) count.
    pub movers: usize,
}

impl<T> QueueMatrix<T> {
    /// Allocate the matrix with per-queue capacity `cap`.
    pub fn new(workers: usize, movers: usize, cap: usize) -> Self {
        let workers = workers.max(1);
        let movers = movers.max(1);
        QueueMatrix {
            queues: (0..workers * movers).map(|_| SpscQueue::new(cap)).collect(),
            workers,
            movers,
        }
    }

    /// Queue written by `worker` and read by `mover`.
    #[inline(always)]
    pub fn queue(&self, worker: usize, mover: usize) -> &SpscQueue<T> {
        &self.queues[worker * self.movers + mover]
    }

    /// Close all queues produced by `worker`.
    pub fn close_worker(&self, worker: usize) {
        for m in 0..self.movers {
            self.queue(worker, m).close();
        }
    }

    /// True when every queue feeding `mover` is closed and empty.
    pub fn mover_done(&self, mover: usize) -> bool {
        (0..self.workers).all(|w| self.queue(w, mover).is_drained())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_single_thread() {
        let q = SpscQueue::new(8);
        // SAFETY: one thread is trivially a single producer and consumer.
        unsafe {
            for i in 0..5 {
                q.push(i);
            }
            let mut out = Vec::new();
            assert_eq!(q.pop_batch(&mut out, 3), 3);
            assert_eq!(out, vec![0, 1, 2]);
            assert_eq!(q.pop_batch(&mut out, 10), 2);
            assert_eq!(out, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn cross_thread_transfer_preserves_order_and_count() {
        let q = SpscQueue::new(16);
        let n = 100_000u64;
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..n {
                    // SAFETY: single producer thread.
                    unsafe { q.push(i) };
                }
                q.close();
            });
            let mut got = Vec::new();
            while !q.is_drained() {
                // SAFETY: single consumer thread.
                unsafe { q.pop_batch(&mut got, 64) };
            }
            assert_eq!(got.len(), n as usize);
            for (i, &v) in got.iter().enumerate() {
                assert_eq!(v, i as u64);
            }
        });
    }

    #[test]
    fn drop_releases_unconsumed_items() {
        let q = SpscQueue::new(8);
        // SAFETY: single thread.
        unsafe {
            q.push(String::from("a"));
            q.push(String::from("b"));
        }
        drop(q); // must not leak or double-free (checked under miri/asan)
    }

    #[test]
    fn matrix_routing_and_termination() {
        let m = QueueMatrix::<u32>::new(2, 3, 8);
        // SAFETY: this test is single-threaded; the SPSC roles are disjoint
        // per queue.
        unsafe {
            m.queue(0, 1).push(11);
            m.queue(1, 1).push(21);
        }
        assert!(!m.mover_done(1));
        m.close_worker(0);
        m.close_worker(1);
        assert!(!m.mover_done(1), "queued items still pending");
        let mut out = Vec::new();
        unsafe {
            m.queue(0, 1).pop_batch(&mut out, 10);
            m.queue(1, 1).pop_batch(&mut out, 10);
        }
        assert_eq!(out, vec![11, 21]);
        assert!(m.mover_done(1));
        assert!(
            m.mover_done(0),
            "untouched movers with closed producers are done"
        );
    }
}
