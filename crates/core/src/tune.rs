//! Auto-tuning — the paper's stated future work, implemented.
//!
//! §VII: "Our future work includes … auto-tuning for deciding the optimal
//! number of worker/mover threads, as well as the partitioning ratio
//! between CPU and MIC."
//!
//! Both tuners run short *probe* executions (a few supersteps) under
//! candidate configurations and pick the one with the lowest simulated
//! time. Probes are cheap — host execution at probe sizes takes
//! milliseconds — and measure the actual workload rather than a proxy, so
//! the tuner automatically accounts for degree skew, contention profiles,
//! and message volume.

use crate::api::VertexProgram;
use crate::engine::{run_hetero, run_single, EngineConfig};
use phigraph_comm::PcieLink;
use phigraph_device::DeviceSpec;
use phigraph_graph::Csr;
use phigraph_partition::scheme::hybrid_from_blocks;
use phigraph_partition::{mlp, DevicePartition, PartitionScheme, Ratio};

/// Result of a worker/mover split search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelineTuning {
    /// Chosen worker-thread count.
    pub workers: usize,
    /// Chosen mover-thread count.
    pub movers: usize,
    /// Simulated probe time of the winning split (seconds).
    pub predicted: f64,
}

/// Default candidate splits for a device: mover share from 1/8 to 1/2 of
/// the hardware threads (the paper found 180 workers + movers best on the
/// 240-thread MIC, i.e. a 1/4 mover share).
pub fn default_pipeline_candidates(spec: &DeviceSpec) -> Vec<(usize, usize)> {
    let t = spec.threads();
    [8usize, 6, 4, 3, 2]
        .iter()
        .map(|&frac| {
            let movers = (t / frac).max(1);
            (t - movers.min(t - 1), movers)
        })
        .collect()
}

/// Search the worker/mover split for `program` on `spec` by probing
/// `probe_steps` supersteps per candidate.
pub fn tune_pipeline<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    spec: &DeviceSpec,
    candidates: &[(usize, usize)],
    probe_steps: usize,
) -> PipelineTuning {
    assert!(!candidates.is_empty(), "no candidate splits");
    let mut best: Option<PipelineTuning> = None;
    for &(workers, movers) in candidates {
        let mut config = EngineConfig::pipelined().with_max_supersteps(probe_steps.max(1));
        config.sim_workers = workers;
        config.sim_movers = movers;
        let report = run_single(program, graph, spec.clone(), &config).report;
        let t = report.sim_total();
        if best.is_none_or(|b| t < b.predicted) {
            best = Some(PipelineTuning {
                workers,
                movers,
                predicted: t,
            });
        }
    }
    best.unwrap()
}

/// Result of a partitioning-ratio search.
#[derive(Clone, Debug, PartialEq)]
pub struct RatioTuning {
    /// Chosen CPU:MIC ratio.
    pub ratio: Ratio,
    /// The partition realizing it (reusable for the full run).
    pub partition: DevicePartition,
    /// Simulated probe time of the winning ratio (seconds).
    pub predicted: f64,
}

/// Default candidate ratios, covering the spread the paper reports as best
/// per application (3:5, 4:3, 2:1, 1:1, 1:4).
pub fn default_ratio_candidates() -> Vec<Ratio> {
    vec![
        Ratio::new(1, 4),
        Ratio::new(1, 2),
        Ratio::new(3, 5),
        Ratio::new(1, 1),
        Ratio::new(4, 3),
        Ratio::new(2, 1),
    ]
}

/// Search the CPU:MIC ratio by probing `probe_steps` supersteps of
/// heterogeneous execution per candidate. The min-connectivity blocks are
/// computed **once** and re-dealt per ratio, exactly the reuse the paper
/// describes ("the blocked partitioning result is reused for generating
/// hybrid partitioning results for different ratios").
#[allow(clippy::too_many_arguments)]
pub fn tune_ratio<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    specs: [DeviceSpec; 2],
    configs: [EngineConfig; 2],
    link: PcieLink,
    candidates: &[Ratio],
    blocks: usize,
    probe_steps: usize,
) -> RatioTuning {
    assert!(!candidates.is_empty(), "no candidate ratios");
    let blocks = blocks.max(1);
    let block_of = mlp::partition_kway(graph, blocks, 7);
    let mut best: Option<RatioTuning> = None;
    for &ratio in candidates {
        let assign = hybrid_from_blocks(graph, &block_of, blocks, &ratio.to_shares());
        let partition = DevicePartition {
            assign,
            shares: ratio.to_shares(),
            scheme: PartitionScheme::Hybrid { blocks },
        };
        let probe_configs = [
            configs[0].clone().with_max_supersteps(probe_steps.max(1)),
            configs[1].clone().with_max_supersteps(probe_steps.max(1)),
        ];
        let report = run_hetero(
            program,
            graph,
            &partition,
            specs.clone(),
            probe_configs,
            link,
        )
        .report;
        let t = report.sim_total();
        if best.as_ref().is_none_or(|b| t < b.predicted) {
            best = Some(RatioTuning {
                ratio,
                partition,
                predicted: t,
            });
        }
    }
    best.unwrap()
}

/// Analytic ratio suggestion from single-device probe times: if the CPU
/// takes `cpu_time` and the MIC `mic_time` for the same probe, workload
/// should split proportionally to throughput (`1/time`). Returns the
/// closest small-integer ratio (denominators ≤ 8).
///
/// # Examples
///
/// ```
/// use phigraph_core::tune::suggest_ratio_from_throughput;
/// // The MIC finished the probe twice as fast: give it twice the work.
/// let r = suggest_ratio_from_throughput(2.0, 1.0);
/// assert_eq!((r.cpu, r.mic), (1, 2));
/// ```
/// # Examples
///
/// ```
/// use phigraph_core::tune::suggest_ratio_from_throughput;
/// // The MIC finished the probe twice as fast: give it twice the work.
/// let r = suggest_ratio_from_throughput(2.0, 1.0);
/// assert_eq!((r.cpu, r.mic), (1, 2));
/// ```
pub fn suggest_ratio_from_throughput(cpu_time: f64, mic_time: f64) -> Ratio {
    assert!(
        cpu_time > 0.0 && mic_time > 0.0,
        "probe times must be positive"
    );
    let target = mic_time / (cpu_time + mic_time); // CPU share
    let mut best = (f64::INFINITY, Ratio::new(1, 1));
    for a in 1..=8u32 {
        for b in 1..=8u32 {
            let share = a as f64 / (a + b) as f64;
            let err = (share - target).abs();
            if err < best.0 {
                best = (err, Ratio::new(a, b));
            }
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{GenContext, MsgSink};
    use phigraph_graph::generators::erdos_renyi::gnm;
    use phigraph_graph::VertexId;
    use phigraph_simd::Sum;

    struct Ping {
        iters: usize,
    }
    impl VertexProgram for Ping {
        type Msg = f32;
        type Reduce = Sum;
        type Value = f32;
        const NAME: &'static str = "ping";
        const ALWAYS_ACTIVE: bool = true;
        fn init(&self, _v: VertexId, _g: &Csr) -> (f32, bool) {
            (1.0, true)
        }
        fn generate<S: MsgSink<f32>>(&self, v: VertexId, ctx: &mut GenContext<'_, f32, S>) {
            let g = ctx.graph;
            for e in g.edge_range(v) {
                ctx.send(g.targets[e], 1.0);
            }
        }
        fn update(&self, _v: VertexId, _m: f32, _val: &mut f32, _g: &Csr) -> bool {
            true
        }
        fn max_supersteps(&self) -> Option<usize> {
            Some(self.iters)
        }
    }

    #[test]
    fn pipeline_candidates_cover_paper_best() {
        let mic = DeviceSpec::xeon_phi_se10p();
        let cands = default_pipeline_candidates(&mic);
        assert!(cands.contains(&(180, 60)), "{cands:?} must include 180+60");
        for &(w, m) in &cands {
            assert!(w + m <= mic.threads());
            assert!(w >= 1 && m >= 1);
        }
    }

    #[test]
    fn tune_pipeline_picks_a_candidate_and_minimizes() {
        let g = gnm(600, 6000, 3);
        let p = Ping { iters: 50 };
        let mic = DeviceSpec::xeon_phi_se10p();
        let cands = default_pipeline_candidates(&mic);
        let tuned = tune_pipeline(&p, &g, &mic, &cands, 2);
        assert!(cands.contains(&(tuned.workers, tuned.movers)));
        // The winner must not be beaten by any candidate when re-probed.
        for &(w, m) in &cands {
            let mut config = EngineConfig::pipelined().with_max_supersteps(2);
            config.sim_workers = w;
            config.sim_movers = m;
            let t = run_single(&p, &g, mic.clone(), &config).report.sim_total();
            assert!(
                t >= tuned.predicted - 1e-12,
                "({w},{m}) beats the tuned split"
            );
        }
    }

    #[test]
    fn tune_ratio_picks_a_candidate() {
        let g = gnm(400, 3200, 9);
        let p = Ping { iters: 50 };
        let tuned = tune_ratio(
            &p,
            &g,
            [DeviceSpec::xeon_e5_2680(), DeviceSpec::xeon_phi_se10p()],
            [EngineConfig::locking(), EngineConfig::pipelined()],
            PcieLink::gen2_x16(),
            &default_ratio_candidates(),
            16,
            2,
        );
        assert!(default_ratio_candidates().contains(&tuned.ratio));
        assert_eq!(tuned.partition.assign.len(), g.num_vertices());
        assert!(tuned.predicted > 0.0);
    }

    #[test]
    fn throughput_ratio_suggestions() {
        // Equal devices → 1:1.
        assert_eq!(suggest_ratio_from_throughput(1.0, 1.0), Ratio::new(1, 1));
        // MIC twice as fast → CPU gets 1/3 of the work.
        let r = suggest_ratio_from_throughput(2.0, 1.0);
        assert!((r.share(0) - 1.0 / 3.0).abs() < 0.05, "{r}");
        // CPU 4x faster → CPU gets 4/5.
        let r = suggest_ratio_from_throughput(1.0, 4.0);
        assert!((r.share(0) - 0.8).abs() < 0.05, "{r}");
    }
}
