//! The vertex-centric programming API (§III of the paper).
//!
//! A graph application implements [`VertexProgram`] with the three functions
//! of the paper's Listing 1:
//!
//! * `generate` — the paper's `generate_messages`: called for every active
//!   vertex; sends `⟨dst, value⟩` messages along out-edges through
//!   [`GenContext::send`] (the paper's `send_messages` primitive).
//! * message processing — expressed as the associated [`ReduceOp`]
//!   (`type Reduce`), applied by the runtime lane-parallel over the
//!   condensed static buffer. This corresponds to the paper's
//!   `process_messages` written with vtypes; it is restricted to
//!   associative + commutative reductions over basic types, exactly the
//!   restriction §III states.
//! * `update` — the paper's `update_vertex`: receives the reduced message,
//!   mutates the vertex value, and returns whether the vertex is active in
//!   the next superstep.

use phigraph_graph::{Csr, VertexId};
use phigraph_simd::{MsgValue, ReduceOp};

/// Destination for generated messages. The engines provide different sinks
/// (direct locking insertion, pipeline queues, sequential mailboxes); user
/// programs only ever call [`MsgSink::send`] through the context.
pub trait MsgSink<M> {
    /// Send one message to `dst`.
    fn send(&mut self, dst: VertexId, msg: M);
}

/// A `Vec`-backed sink for tests and message collection.
impl<M> MsgSink<M> for Vec<(VertexId, M)> {
    #[inline]
    fn send(&mut self, dst: VertexId, msg: M) {
        self.push((dst, msg));
    }
}

/// Context handed to [`VertexProgram::generate`]: read-only vertex values,
/// the graph in CSR form, and the message sink.
pub struct GenContext<'a, V, S> {
    /// The graph (paper's `graph<...> *g`, in CSR format).
    pub graph: &'a Csr,
    values: &'a [V],
    sink: &'a mut S,
    /// Messages sent so far by this context (tallied by the engines).
    pub sent: u64,
}

impl<'a, V, S> GenContext<'a, V, S> {
    /// Build a context over `values` writing into `sink`.
    pub fn new(graph: &'a Csr, values: &'a [V], sink: &'a mut S) -> Self {
        GenContext {
            graph,
            values,
            sink,
            sent: 0,
        }
    }

    /// The current value of vertex `v` (the paper's `g->vertex_value[v]`).
    /// BSP semantics: values are frozen during generation.
    #[inline(always)]
    pub fn value(&self, v: VertexId) -> &V {
        &self.values[v as usize]
    }
}

impl<'a, V, S> GenContext<'a, V, S> {
    /// Send a message (the paper's `send_messages(dst, value)`).
    #[inline(always)]
    pub fn send<M>(&mut self, dst: VertexId, msg: M)
    where
        S: MsgSink<M>,
    {
        self.sent += 1;
        self.sink.send(dst, msg);
    }
}

/// A vertex-centric graph program with POD messages (the SIMD-reducible
/// path; programs with object messages implement
/// [`crate::engine::obj::ObjVertexProgram`] instead).
pub trait VertexProgram: Send + Sync + 'static {
    /// Message value type — one of the "basic data types supported by SSE".
    type Msg: MsgValue;
    /// The associative + commutative message reduction.
    type Reduce: ReduceOp<Self::Msg>;
    /// Per-vertex state.
    type Value: Clone + Send + Sync + Default + 'static;

    /// Application name for reports.
    const NAME: &'static str;

    /// If true, every vertex is re-activated each superstep regardless of
    /// received messages (PageRank-style fixed-iteration algorithms, where
    /// "all vertices generate messages along all edges every iteration").
    const ALWAYS_ACTIVE: bool = false;

    /// If false, the runtime uses the scalar processing path even when the
    /// engine is configured for SIMD (the paper's BFS "does not have [a]
    /// message reduction sub-step"; its messages are delivered scalar).
    const SIMD_REDUCIBLE: bool = true;

    /// Whether [`VertexProgram::post_generate`] does anything; engines skip
    /// the extra pass when false.
    const HAS_POST_GENERATE: bool = false;

    /// Initial value and active flag for vertex `v`.
    fn init(&self, v: VertexId, g: &Csr) -> (Self::Value, bool);

    /// Generate messages for active vertex `v`.
    fn generate<S: MsgSink<Self::Msg>>(
        &self,
        v: VertexId,
        ctx: &mut GenContext<'_, Self::Value, S>,
    );

    /// Apply the reduced message to `v`; return the new active flag.
    fn update(&self, v: VertexId, msg: Self::Msg, value: &mut Self::Value, g: &Csr) -> bool;

    /// Optional superstep cap (PageRank and Semi-Clustering run a fixed
    /// number of iterations in the paper).
    fn max_supersteps(&self) -> Option<usize> {
        None
    }

    /// Called once per superstep for each vertex that was active during
    /// generation, after all messages are sent and before updates run.
    /// This is where residual/delta algorithms flush "what I just sent"
    /// bookkeeping (generation itself sees frozen values — BSP). Only runs
    /// when [`VertexProgram::HAS_POST_GENERATE`] is true.
    fn post_generate(&self, _v: VertexId, _value: &mut Self::Value) {}

    /// Upper bound on the messages vertex `v` can receive in one superstep
    /// from all senders. `None` (the default) means "my in-degree" — correct
    /// for programs that send only along out-edges — and lets the engine
    /// compute the tight per-device capacity that keeps the condensed buffer
    /// small. Programs that message other neighborhoods (e.g. WCC sending
    /// along both directions) must override.
    fn capacity_hint(&self, _v: VertexId, _g: &Csr) -> Option<u32> {
        None
    }

    /// Superstep invariant auditor for the integrity subsystem: inspect
    /// the barrier transition `prev → cur` (vertex values before and after
    /// one superstep's updates) over every `stride`-th vertex and return a
    /// violation description if the application's algebraic invariant is
    /// broken (distance monotonicity, mass conservation, label
    /// non-increase, …). `None` (the default) means "no invariant to
    /// check" — plain programs pay nothing. Auditors must tolerate the
    /// program's own update rule exactly: a false positive costs a
    /// full-step replay, not correctness, but keep tolerances honest.
    fn audit_step(
        &self,
        _step: usize,
        _prev: &[Self::Value],
        _cur: &[Self::Value],
        _stride: usize,
    ) -> Option<String> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::small::paper_example;

    struct Probe;
    impl VertexProgram for Probe {
        type Msg = f32;
        type Reduce = phigraph_simd::Min;
        type Value = f32;
        const NAME: &'static str = "probe";
        fn init(&self, v: VertexId, _g: &Csr) -> (f32, bool) {
            (v as f32, v == 0)
        }
        fn generate<S: MsgSink<f32>>(&self, v: VertexId, ctx: &mut GenContext<'_, f32, S>) {
            let my = *ctx.value(v);
            for e in ctx.graph.edge_range(v) {
                ctx.send(ctx.graph.targets[e], my + ctx.graph.weight(e));
            }
        }
        fn update(&self, _v: VertexId, msg: f32, value: &mut f32, _g: &Csr) -> bool {
            *value = msg;
            true
        }
    }

    #[test]
    fn context_sends_along_out_edges() {
        let g = paper_example();
        let values: Vec<f32> = (0..16).map(|v| v as f32).collect();
        let mut sink: Vec<(VertexId, f32)> = Vec::new();
        let mut ctx = GenContext::new(&g, &values, &mut sink);
        Probe.generate(9, &mut ctx);
        assert_eq!(ctx.sent, 4);
        assert_eq!(sink, vec![(4, 10.0), (5, 10.0), (6, 10.0), (8, 10.0)]);
    }

    #[test]
    fn context_value_reads_frozen_state() {
        let g = paper_example();
        let values = vec![7.5f32; 16];
        let mut sink: Vec<(VertexId, f32)> = Vec::new();
        let ctx = GenContext::new(&g, &values, &mut sink);
        assert_eq!(*ctx.value(3), 7.5);
    }

    #[test]
    fn table1_messages_via_api() {
        // Reproduce Table I: actives {6,7,11,13,14,15} send exactly these.
        let g = paper_example();
        let values: Vec<f32> = vec![0.0; 16];
        let mut sink: Vec<(VertexId, f32)> = Vec::new();
        let mut ctx = GenContext::new(&g, &values, &mut sink);
        for v in phigraph_graph::generators::small::paper_example_actives() {
            Probe.generate(v, &mut ctx);
        }
        let dsts: Vec<VertexId> = sink.iter().map(|&(d, _)| d).collect();
        let expect: Vec<VertexId> = phigraph_graph::generators::small::paper_table1_messages()
            .iter()
            .map(|&(_, d)| d)
            .collect();
        assert_eq!(dsts, expect);
    }
}
