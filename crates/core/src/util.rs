//! Small unsafe utilities for phase-parallel engines.

use std::cell::UnsafeCell;

/// A shared mutable slice for phases where tasks write to provably disjoint
/// indices (CSB cells claimed by atomic cursors; vertex values updated by
//  their unique owning column; reduced-message slots per position).
///
/// # Safety contract
/// Callers must guarantee that no two threads write the same index during a
/// phase and that reads of an index do not race with a write to it. The
/// engines uphold this via the buffer's unique-slot allocation and the
/// one-vertex-per-column ownership argument documented at each call site.
pub struct SharedSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: access discipline is enforced by callers per the contract above.
unsafe impl<'a, T: Send> Send for SharedSlice<'a, T> {}
unsafe impl<'a, T: Send> Sync for SharedSlice<'a, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wrap a uniquely borrowed slice.
    pub fn new(data: &'a mut [T]) -> Self {
        // SAFETY: &mut guarantees unique access; UnsafeCell<T> has the same
        // layout as T.
        let cells = unsafe { &*(data as *mut [T] as *const [UnsafeCell<T>]) };
        SharedSlice { data: cells }
    }

    /// Length of the slice.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the slice is empty.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Write `value` at `i`.
    ///
    /// # Safety
    /// No concurrent access to index `i` (see type-level contract).
    #[inline(always)]
    pub unsafe fn write(&self, i: usize, value: T) {
        *self.data[i].get() = value;
    }

    /// Read the value at `i`.
    ///
    /// # Safety
    /// No concurrent write to index `i`.
    #[inline(always)]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        *self.data[i].get()
    }

    /// Get a mutable reference to index `i`.
    ///
    /// # Safety
    /// No concurrent access to index `i`.
    #[allow(clippy::mut_from_ref)]
    #[inline(always)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        &mut *self.data[i].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_device::pool::run_parallel;

    #[test]
    fn disjoint_parallel_writes() {
        let mut data = vec![0u64; 64];
        {
            let shared = SharedSlice::new(&mut data);
            run_parallel(8, |tid| {
                for i in 0..8 {
                    let idx = tid * 8 + i;
                    // SAFETY: each tid owns indices tid*8..tid*8+8.
                    unsafe { shared.write(idx, (idx * 3) as u64) };
                }
            });
        }
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i * 3) as u64);
        }
    }

    #[test]
    fn read_back_and_get_mut() {
        let mut data = vec![1i32, 2, 3];
        let shared = SharedSlice::new(&mut data);
        // SAFETY: single-threaded access.
        unsafe {
            assert_eq!(shared.read(1), 2);
            *shared.get_mut(1) += 10;
            assert_eq!(shared.read(1), 12);
        }
        assert_eq!(shared.len(), 3);
        assert!(!shared.is_empty());
    }
}
