//! Per-run and per-superstep measurement records.
//!
//! Every run produces both *simulated* times (the cost model applied to the
//! recorded events — what the figures report) and host wall-clock time (for
//! regression tracking via criterion).

use phigraph_device::cost::PhaseTimes;
use phigraph_device::StepCounters;
use phigraph_recover::{FailoverStats, IntegrityStats, RecoveryStats};

/// Measurements for one superstep on one device.
#[derive(Clone, Debug, Default)]
pub struct StepReport {
    /// Superstep index (0-based).
    pub step: usize,
    /// Simulated phase times from the cost model.
    pub times: PhaseTimes,
    /// Simulated communication time (heterogeneous runs; 0 otherwise).
    pub comm_time: f64,
    /// Host wall-clock seconds for the superstep.
    pub wall: f64,
    /// Event counters for the superstep, **summed across every thread that
    /// executed it**: in the pipelined engine each worker and mover keeps a
    /// thread-private [`StepCounters`] and the engine folds them all into
    /// this one record when the phase joins (so `flush_batches`,
    /// `queue_full_spins`, `mover_idle_polls`, … are whole-device totals,
    /// not any single thread's view, and `mover_msgs[i]` is the total
    /// inserted by mover lane `i`). Per-chunk records are dropped after
    /// folding to keep reports small; only their aggregates survive.
    pub counters: StepCounters,
}

impl StepReport {
    /// Simulated superstep total including communication.
    pub fn sim_total(&self) -> f64 {
        self.times.total + self.comm_time
    }
}

/// Measurements for a complete run on one device (or one device's side of a
/// heterogeneous run).
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Application name.
    pub app: String,
    /// Device name.
    pub device: String,
    /// Execution mode name. Matches [`ExecMode::name`]: `lock`, `pipe`,
    /// `omp` (the flat engine's report name, after the paper's "OMP" bars),
    /// or `seq` — plus `cpu-mic` for combined heterogeneous reports.
    ///
    /// [`ExecMode::name`]: crate::engine::ExecMode::name
    pub mode: String,
    /// Per-superstep reports.
    pub steps: Vec<StepReport>,
    /// Host wall-clock seconds for the whole run.
    pub wall: f64,
    /// Fault-tolerance events observed during the run (all-zero for the
    /// plain, non-recovering drivers).
    pub recovery: RecoveryStats,
    /// Liveness/failover events observed during the run (all-zero outside
    /// the hetero failover driver).
    pub failover: FailoverStats,
    /// Silent-data-corruption detection/healing events observed during the
    /// run (all-zero when integrity mode is off).
    pub integrity: IntegrityStats,
}

impl RunReport {
    /// Simulated execution time (compute phases, excluding communication).
    pub fn sim_exec(&self) -> f64 {
        self.steps.iter().map(|s| s.times.total).sum()
    }

    /// Simulated communication time.
    pub fn sim_comm(&self) -> f64 {
        self.steps.iter().map(|s| s.comm_time).sum()
    }

    /// Simulated total time.
    pub fn sim_total(&self) -> f64 {
        self.sim_exec() + self.sim_comm()
    }

    /// Simulated time of the message-processing sub-step only (the
    /// Fig. 5(f) quantity).
    pub fn sim_process(&self) -> f64 {
        self.steps.iter().map(|s| s.times.process).sum()
    }

    /// Total messages over the run.
    pub fn total_msgs(&self) -> u64 {
        self.steps.iter().map(|s| s.counters.msgs_total()).sum()
    }

    /// Total wire bytes exchanged with the peer device.
    pub fn total_comm_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.counters.comm_bytes).sum()
    }

    /// Number of supersteps executed.
    pub fn supersteps(&self) -> usize {
        self.steps.len()
    }

    /// Total full-queue spins workers burned on SPSC backpressure
    /// (pipelined runs; 0 otherwise).
    pub fn total_queue_full_spins(&self) -> u64 {
        self.steps.iter().map(|s| s.counters.queue_full_spins).sum()
    }

    /// Total empty polling rounds movers made (pipelined runs).
    pub fn total_mover_idle_polls(&self) -> u64 {
        self.steps.iter().map(|s| s.counters.mover_idle_polls).sum()
    }

    /// Total barrier checkpoints written during the run.
    pub fn total_checkpoints(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| s.counters.checkpoints_written)
            .sum()
    }

    /// Total bytes written into checkpoint snapshots.
    pub fn total_checkpoint_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.counters.checkpoint_bytes).sum()
    }

    /// Total faults injected at this run's injection sites.
    pub fn total_faults_injected(&self) -> u64 {
        self.steps.iter().map(|s| s.counters.faults_injected).sum()
    }

    /// Total remote exchanges lost on the link during the run. Sums the
    /// per-step counters (steps that completed despite a drop) with the
    /// driver-level count (exchanges whose superstep was aborted and
    /// replayed, which therefore never produced a step report).
    pub fn total_exchange_drops(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| s.counters.exchange_drops)
            .sum::<u64>()
            + self.failover.exchange_drops
    }

    /// Total remote exchanges that hit the deadline waiting for the peer
    /// (per-step counters plus driver-level detections).
    pub fn total_exchange_timeouts(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| s.counters.exchange_timeouts)
            .sum::<u64>()
            + self.failover.exchange_timeouts
    }

    /// Mean messages per worker→mover flush batch over the run (`None`
    /// when no batches were flushed, e.g. non-pipelined runs).
    pub fn mean_batch_size(&self) -> Option<f64> {
        let batches: u64 = self.steps.iter().map(|s| s.counters.flush_batches).sum();
        if batches == 0 {
            return None;
        }
        let msgs: u64 = self.steps.iter().map(|s| s.counters.batched_msgs).sum();
        Some(msgs as f64 / batches as f64)
    }

    /// One-line summary for harness output. Appends the recovery event
    /// summary when any fault-tolerance activity occurred.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{:<10} {:<22} {:<5} steps={:<4} msgs={:<10} exec={:.4}s comm={:.4}s total={:.4}s (wall {:.3}s)",
            self.app,
            self.device,
            self.mode,
            self.supersteps(),
            self.total_msgs(),
            self.sim_exec(),
            self.sim_comm(),
            self.sim_total(),
            self.wall,
        );
        if self.recovery.any() {
            line.push_str(&format!(" [{}]", self.recovery.summary()));
        }
        let (drops, timeouts) = (self.total_exchange_drops(), self.total_exchange_timeouts());
        if drops > 0 || timeouts > 0 {
            line.push_str(&format!(" [xchg drops={drops} timeouts={timeouts}]"));
        }
        if self.failover.any() {
            line.push_str(&format!(" [failover {}]", self.failover.summary()));
        }
        if self.integrity.any() {
            line.push_str(&format!(" [integrity {}]", self.integrity.summary()));
        }
        line
    }
}

/// A run's computed values plus its report.
#[derive(Clone, Debug)]
pub struct RunOutput<V> {
    /// Final vertex values (full-length; in heterogeneous runs, merged
    /// across devices by ownership).
    pub values: Vec<V>,
    /// The measurement report. For heterogeneous runs this is the combined
    /// view (per-step maximum of the two devices plus exchange time).
    pub report: RunReport,
    /// Per-device reports (two entries for heterogeneous runs, one
    /// otherwise).
    pub device_reports: Vec<RunReport>,
}

/// Combine N lock-stepped rank reports into the heterogeneous view: per
/// superstep, execution time is "determined by the slower device", and
/// communication is the exchange time. Steps are matched by **step index**
/// (not list position), so ragged per-rank step lists — a rank evicted
/// mid-run contributes only the supersteps it executed — combine correctly.
pub fn combine_ranks(app: &str, reports: &[RunReport]) -> RunReport {
    assert!(!reports.is_empty(), "no rank reports to combine");
    let mut step_ids: Vec<usize> = reports
        .iter()
        .flat_map(|r| r.steps.iter().map(|s| s.step))
        .collect();
    step_ids.sort_unstable();
    step_ids.dedup();
    let steps = step_ids
        .into_iter()
        .map(|id| {
            let mut acc: Option<StepReport> = None;
            for r in reports {
                let Some(s) = r.steps.iter().find(|s| s.step == id) else {
                    continue;
                };
                match acc.as_mut() {
                    None => acc = Some(s.clone()),
                    Some(c) => {
                        if s.times.total > c.times.total {
                            c.times = s.times;
                        }
                        c.comm_time = c.comm_time.max(s.comm_time);
                        c.wall = c.wall.max(s.wall);
                        c.counters.accumulate(&s.counters);
                    }
                }
            }
            acc.expect("step id came from some rank")
        })
        .collect();
    let mut recovery = reports[0].recovery;
    let mut failover = reports[0].failover;
    let mut integrity = reports[0].integrity;
    for r in &reports[1..] {
        recovery.accumulate(&r.recovery);
        failover.accumulate(&r.failover);
        integrity.accumulate(&r.integrity);
    }
    let device = if reports.len() == 2 {
        "CPU-MIC".to_string()
    } else {
        format!("CPU-MICx{}", reports.len() - 1)
    };
    RunReport {
        app: app.to_string(),
        device,
        mode: "cpu-mic".to_string(),
        steps,
        wall: reports.iter().map(|r| r.wall).fold(0.0, f64::max),
        recovery,
        failover,
        integrity,
    }
}

/// Combine two lock-stepped device reports into the heterogeneous view —
/// the N=2 case of [`combine_ranks`].
pub fn combine_hetero(app: &str, dev0: &RunReport, dev1: &RunReport) -> RunReport {
    combine_ranks(app, &[dev0.clone(), dev1.clone()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_at(i: usize, total: f64, comm: f64) -> StepReport {
        StepReport {
            step: i,
            times: PhaseTimes {
                gen: total / 2.0,
                process: total / 4.0,
                update: total / 4.0,
                total,
                ..Default::default()
            },
            comm_time: comm,
            ..Default::default()
        }
    }

    fn step(total: f64, comm: f64) -> StepReport {
        step_at(0, total, comm)
    }

    #[test]
    fn totals_add_up() {
        let r = RunReport {
            steps: vec![step(1.0, 0.1), step(2.0, 0.2)],
            ..Default::default()
        };
        assert!((r.sim_exec() - 3.0).abs() < 1e-12);
        assert!((r.sim_comm() - 0.3).abs() < 1e-12);
        assert!((r.sim_total() - 3.3).abs() < 1e-12);
        assert!((r.sim_process() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hetero_combination_takes_slower_device() {
        let a = RunReport {
            steps: vec![step_at(0, 1.0, 0.1), step_at(1, 5.0, 0.1)],
            ..Default::default()
        };
        let b = RunReport {
            steps: vec![step_at(0, 2.0, 0.1), step_at(1, 1.0, 0.1)],
            ..Default::default()
        };
        let c = combine_hetero("x", &a, &b);
        assert!((c.sim_exec() - 7.0).abs() < 1e-12, "max(1,2) + max(5,1)");
        assert_eq!(c.device, "CPU-MIC");
    }

    #[test]
    fn pipeline_helpers_aggregate_counters() {
        let mut s0 = step(1.0, 0.0);
        s0.counters.queue_full_spins = 5;
        s0.counters.flush_batches = 2;
        s0.counters.batched_msgs = 10;
        s0.counters.mover_idle_polls = 3;
        let mut s1 = step(1.0, 0.0);
        s1.counters.flush_batches = 3;
        s1.counters.batched_msgs = 30;
        s1.counters.mover_idle_polls = 1;
        let r = RunReport {
            steps: vec![s0, s1],
            ..Default::default()
        };
        assert_eq!(r.total_queue_full_spins(), 5);
        assert_eq!(r.total_mover_idle_polls(), 4);
        assert!((r.mean_batch_size().unwrap() - 8.0).abs() < 1e-12);
        let empty = RunReport::default();
        assert_eq!(empty.mean_batch_size(), None);
    }

    #[test]
    fn summary_is_one_line() {
        let r = RunReport {
            app: "sssp".into(),
            device: "CPU".into(),
            mode: "lock".into(),
            steps: vec![step(1.0, 0.0)],
            wall: 0.01,
            ..Default::default()
        };
        let s = r.summary();
        assert!(s.contains("sssp"));
        assert!(!s.contains('\n'));
        // No recovery activity → no recovery tail in the summary.
        assert!(!s.contains('['));
    }

    #[test]
    fn summary_appends_recovery_events() {
        let mut r = RunReport {
            app: "sssp".into(),
            mode: "lock".into(),
            ..Default::default()
        };
        r.recovery.rollbacks = 2;
        r.recovery.retries = 2;
        let s = r.summary();
        assert!(s.contains("rollbacks=2"), "summary was: {s}");
    }

    #[test]
    fn checkpoint_totals_aggregate_counters() {
        let mut s0 = step(1.0, 0.0);
        s0.counters.checkpoints_written = 1;
        s0.counters.checkpoint_bytes = 100;
        let mut s1 = step(1.0, 0.0);
        s1.counters.checkpoints_written = 1;
        s1.counters.checkpoint_bytes = 150;
        s1.counters.faults_injected = 1;
        let r = RunReport {
            steps: vec![s0, s1],
            ..Default::default()
        };
        assert_eq!(r.total_checkpoints(), 2);
        assert_eq!(r.total_checkpoint_bytes(), 250);
        assert_eq!(r.total_faults_injected(), 1);
    }

    #[test]
    fn rank_combination_groups_by_step_index_across_ragged_lists() {
        // Rank b was evicted after superstep 0: its list is shorter, and the
        // combined view must still pair entries by step index, not position.
        let a = RunReport {
            steps: vec![step_at(0, 1.0, 0.1), step_at(1, 2.0, 0.1)],
            ..Default::default()
        };
        let b = RunReport {
            steps: vec![step_at(0, 3.0, 0.2)],
            ..Default::default()
        };
        let c = RunReport {
            steps: vec![step_at(0, 2.0, 0.1), step_at(1, 4.0, 0.3)],
            ..Default::default()
        };
        let r = combine_ranks("x", &[a, b, c]);
        assert_eq!(r.device, "CPU-MICx2");
        assert_eq!(r.steps.len(), 2);
        assert!((r.steps[0].times.total - 3.0).abs() < 1e-12, "slowest of 3");
        assert!(
            (r.steps[1].times.total - 4.0).abs() < 1e-12,
            "rank b absent"
        );
        assert!((r.steps[1].comm_time - 0.3).abs() < 1e-12);
    }

    #[test]
    fn hetero_combination_accumulates_recovery() {
        let mut a = RunReport::default();
        a.recovery.rollbacks = 1;
        let mut b = RunReport::default();
        b.recovery.retries = 2;
        let c = combine_hetero("x", &a, &b);
        assert_eq!(c.recovery.rollbacks, 1);
        assert_eq!(c.recovery.retries, 2);
    }
}
