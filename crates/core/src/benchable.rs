//! Benchable entry points over the engine's hot paths.
//!
//! The `phigraph-bench` perf areas (and the determinism tests backing
//! them) need the queue, CSB, and superstep paths exercised in isolation
//! with *fixed-seed deterministic inputs* — same seed, same destination
//! stream, same element counts, every run — so that two `BENCH_*.json`
//! files differ only in timings. Those fixtures live here, next to the
//! code they drive, instead of being re-derived ad hoc inside each bench:
//!
//! * [`csb_fixture`] — a [`Csb`] sized exactly for a seeded message
//!   stream, for steady-state `insert_slice` loops;
//! * [`spsc_shuttle`] — the worker→mover batched transport of the
//!   pipelined engine (`push_slice`/`pop_slices`) over a [`QueueMatrix`],
//!   returning an order-independent checksum;
//! * [`superstep_work`] — one priming run that sizes a workload (superstep
//!   and message counts) so benches can declare element throughput.

use crate::api::VertexProgram;
use crate::csb::{ColumnMode, Csb, CsbLayout};
use crate::engine::{run_single, EngineConfig};
use crate::queues::QueueMatrix;
use phigraph_device::DeviceSpec;
use phigraph_graph::generators::rng::SplitMix64;
use phigraph_graph::Csr;

/// A CSB plus the seeded message stream it was sized for.
pub struct CsbFixture {
    /// Buffer with capacity for exactly one insertion of `msgs`.
    pub csb: Csb<f32>,
    /// Seeded `(dst, value)` stream; insert via slices, then
    /// [`Csb::reset`] between iterations.
    pub msgs: Vec<(u32, f32)>,
}

/// Build a CSB over `n_vertices` owned vertices sized for `n_msgs` seeded
/// uniform-destination messages. Deterministic in `seed`.
pub fn csb_fixture(n_vertices: usize, n_msgs: usize, mode: ColumnMode, seed: u64) -> CsbFixture {
    let n_vertices = n_vertices.max(1);
    let mut rng = SplitMix64::seed_from_u64(seed);
    let msgs: Vec<(u32, f32)> = (0..n_msgs)
        .map(|i| {
            (
                rng.random_range(0..n_vertices as u32),
                (i % 251) as f32 * 0.5,
            )
        })
        .collect();
    let mut cap = vec![0u32; n_vertices];
    for &(d, _) in &msgs {
        cap[d as usize] += 1;
    }
    let owned: Vec<u32> = (0..n_vertices as u32).collect();
    let layout = CsbLayout::build(n_vertices, &owned, &cap, 16, 4);
    CsbFixture {
        csb: Csb::new(layout, mode),
        msgs,
    }
}

/// Seeded `(dst, value)` stream for the SPSC shuttle; destinations cycle
/// uniformly so every mover stays fed. Deterministic in `seed`.
pub fn shuttle_msgs(n_msgs: usize, n_dsts: u32, seed: u64) -> Vec<(u32, f32)> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..n_msgs)
        .map(|i| (rng.random_range(0..n_dsts.max(1)), i as f32))
        .collect()
}

/// Move `msgs` through a `workers × movers` [`QueueMatrix`] with the
/// pipelined engine's batched protocol: each worker takes a strided share
/// of the stream, stages per-mover batches of `batch`, flushes them with
/// `push_slice`, and each mover drains with `pop_slices`. Returns the sum
/// of all destination ids seen by the movers — order-independent, so it
/// equals the direct sum whenever no message was lost or duplicated.
pub fn spsc_shuttle(
    workers: usize,
    movers: usize,
    queue_cap: usize,
    batch: usize,
    msgs: &[(u32, f32)],
) -> u64 {
    let workers = workers.max(1);
    let movers = movers.max(1);
    let batch = batch.max(1);
    let queues = QueueMatrix::<(u32, f32)>::new(workers, movers, queue_cap);
    let queues = &queues;
    std::thread::scope(|s| {
        for w in 0..workers {
            s.spawn(move || {
                let mut stage: Vec<Vec<(u32, f32)>> =
                    (0..movers).map(|_| Vec::with_capacity(batch)).collect();
                for msg in msgs.iter().skip(w).step_by(workers) {
                    let m = msg.0 as usize % movers;
                    stage[m].push(*msg);
                    if stage[m].len() >= batch {
                        // SAFETY: worker w is the sole producer of row w.
                        unsafe { queues.queue(w, m).push_slice(&stage[m]) };
                        stage[m].clear();
                    }
                }
                for (m, buf) in stage.iter().enumerate() {
                    if !buf.is_empty() {
                        // SAFETY: as above.
                        unsafe { queues.queue(w, m).push_slice(buf) };
                    }
                }
                queues.close_worker(w);
            });
        }
        let sums: Vec<_> = (0..movers)
            .map(|m| {
                s.spawn(move || {
                    let mut sum = 0u64;
                    loop {
                        let mut moved = false;
                        for w in 0..workers {
                            // SAFETY: mover m is the sole consumer of (w, m).
                            let n = unsafe {
                                queues.queue(w, m).pop_slices(queue_cap, |slice| {
                                    for &(dst, _) in slice {
                                        sum = sum.wrapping_add(dst as u64);
                                    }
                                })
                            };
                            moved |= n > 0;
                        }
                        if !moved {
                            if queues.mover_done(m) {
                                break;
                            }
                            std::hint::spin_loop();
                            std::thread::yield_now();
                        }
                    }
                    sum
                })
            })
            .collect();
        sums.into_iter()
            .map(|h| h.join().expect("mover thread"))
            .sum()
    })
}

/// How much work one full run of a program performs — the element counts a
/// superstep bench declares as throughput.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuperstepWork {
    /// Supersteps until convergence (or the configured cap).
    pub supersteps: usize,
    /// Messages generated across the whole run.
    pub total_msgs: u64,
}

/// One priming run of `program` under `config`, returning the counts a
/// steady-state bench of the same `(program, graph, config)` cell will
/// reproduce exactly (the engines are deterministic for a fixed input).
pub fn superstep_work<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    spec: DeviceSpec,
    config: &EngineConfig,
) -> SuperstepWork {
    let out = run_single(program, graph, spec, config);
    SuperstepWork {
        supersteps: out.report.supersteps(),
        total_msgs: out.report.total_msgs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csb_fixture_is_seed_deterministic_and_insertable() {
        let a = csb_fixture(256, 5_000, ColumnMode::Dynamic, 7);
        let b = csb_fixture(256, 5_000, ColumnMode::Dynamic, 7);
        assert_eq!(a.msgs, b.msgs, "same seed, same stream");
        let c = csb_fixture(256, 5_000, ColumnMode::Dynamic, 8);
        assert_ne!(a.msgs, c.msgs, "different seed, different stream");
        // The fixture is sized exactly: a full insertion round fits.
        for chunk in a.msgs.chunks(64) {
            a.csb.insert_slice(chunk);
        }
        a.csb.reset();
        for chunk in a.msgs.chunks(64) {
            a.csb.insert_slice(chunk);
        }
    }

    #[test]
    fn shuttle_checksum_matches_direct_sum() {
        let msgs = shuttle_msgs(20_000, 1024, 42);
        let direct: u64 = msgs.iter().map(|&(d, _)| d as u64).sum();
        for (workers, movers, batch) in [(1, 1, 64), (4, 2, 64), (2, 3, 1)] {
            let got = spsc_shuttle(workers, movers, 256, batch, &msgs);
            assert_eq!(got, direct, "{workers}x{movers} batch {batch}");
        }
    }

    #[test]
    fn shuttle_msgs_are_seed_deterministic() {
        assert_eq!(shuttle_msgs(100, 64, 3), shuttle_msgs(100, 64, 3));
        assert_ne!(shuttle_msgs(100, 64, 3), shuttle_msgs(100, 64, 4));
    }

    #[test]
    fn superstep_work_is_reproducible() {
        use phigraph_graph::generators::small::weighted_diamond;
        // The doc-example SSSP program, small enough for a unit test.
        struct Sssp;
        impl VertexProgram for Sssp {
            type Msg = f32;
            type Reduce = phigraph_simd::Min;
            type Value = f32;
            const NAME: &'static str = "sssp";
            fn init(&self, v: u32, _g: &Csr) -> (f32, bool) {
                if v == 0 {
                    (0.0, true)
                } else {
                    (f32::INFINITY, false)
                }
            }
            fn generate<S: crate::api::MsgSink<f32>>(
                &self,
                v: u32,
                ctx: &mut crate::api::GenContext<'_, f32, S>,
            ) {
                let my = *ctx.value(v);
                for e in ctx.graph.edge_range(v) {
                    ctx.send(ctx.graph.targets[e], my + ctx.graph.weight(e));
                }
            }
            fn update(&self, _v: u32, msg: f32, value: &mut f32, _g: &Csr) -> bool {
                if msg < *value {
                    *value = msg;
                    true
                } else {
                    false
                }
            }
        }
        let g = weighted_diamond();
        let cfg = EngineConfig::locking();
        let a = superstep_work(&Sssp, &g, DeviceSpec::xeon_e5_2680(), &cfg);
        let b = superstep_work(&Sssp, &g, DeviceSpec::xeon_e5_2680(), &cfg);
        assert_eq!(a, b);
        assert!(a.supersteps > 0 && a.total_msgs > 0);
    }
}
