//! Machine-readable exports of run reports.
//!
//! Two hand-rolled formats (the workspace builds hermetically, so no serde):
//!
//! * [`run_report_json`] — a complete JSON dump of a run's combined and
//!   per-device [`RunReport`]s, consumed by `phigraph report` to reproduce
//!   the Fig. 5-style per-phase/per-device decomposition offline;
//! * [`prometheus_text`] — Prometheus text exposition of the run's
//!   aggregate counters, recovery/failover stats, and (when a trace was
//!   attached) the engine distribution histograms.

use crate::metrics::RunReport;
use phigraph_device::StepCounters;
use phigraph_trace::hist::HistSnapshot;
use phigraph_trace::json::{num, quote};
use phigraph_trace::TraceSnapshot;

/// Schema tag embedded in every dump so `phigraph report` can reject files
/// that are not run reports.
pub const REPORT_SCHEMA: &str = "phigraph-run-report/1";

fn counters_json(c: &StepCounters) -> String {
    let mover_msgs: Vec<String> = c.mover_msgs.iter().map(|m| m.to_string()).collect();
    format!(
        concat!(
            "{{\"active_vertices\":{},\"gen_edges\":{},\"msgs_local\":{},",
            "\"msgs_remote\":{},\"column_allocs\":{},\"reset_cells\":{},",
            "\"queue_full_spins\":{},\"flush_batches\":{},\"batched_msgs\":{},",
            "\"mover_idle_polls\":{},\"proc_rows\":{},\"proc_msgs\":{},",
            "\"holes_filled\":{},\"occupied_columns\":{},\"updated_vertices\":{},",
            "\"next_active\":{},\"bytes_gen\":{},\"bytes_proc\":{},",
            "\"bytes_update\":{},\"remote_before_combine\":{},",
            "\"remote_after_combine\":{},\"comm_bytes\":{},",
            "\"checkpoints_written\":{},\"checkpoint_bytes\":{},",
            "\"faults_injected\":{},\"heartbeats\":{},\"exchange_drops\":{},",
            "\"exchange_timeouts\":{},\"insert_total\":{},\"insert_max_column\":{},",
            "\"insert_collision_p\":{},\"mover_msgs\":[{}]}}"
        ),
        c.active_vertices,
        c.gen_edges,
        c.msgs_local,
        c.msgs_remote,
        c.column_allocs,
        c.reset_cells,
        c.queue_full_spins,
        c.flush_batches,
        c.batched_msgs,
        c.mover_idle_polls,
        c.proc_rows,
        c.proc_msgs,
        c.holes_filled,
        c.occupied_columns,
        c.updated_vertices,
        c.next_active,
        c.bytes_gen,
        c.bytes_proc,
        c.bytes_update,
        c.remote_before_combine,
        c.remote_after_combine,
        c.comm_bytes,
        c.checkpoints_written,
        c.checkpoint_bytes,
        c.faults_injected,
        c.heartbeats,
        c.exchange_drops,
        c.exchange_timeouts,
        c.insert_profile.total,
        c.insert_profile.max_column,
        num(c.insert_profile.collision_probability()),
        mover_msgs.join(","),
    )
}

fn report_obj(r: &RunReport) -> String {
    let steps: Vec<String> = r
        .steps
        .iter()
        .map(|s| {
            format!(
                concat!(
                    "{{\"step\":{},\"comm_time\":{},\"wall\":{},",
                    "\"times\":{{\"gen\":{},\"process\":{},\"update\":{},",
                    "\"total\":{},\"gen_imbalance\":{}}},\"counters\":{}}}"
                ),
                s.step,
                num(s.comm_time),
                num(s.wall),
                num(s.times.gen),
                num(s.times.process),
                num(s.times.update),
                num(s.times.total),
                num(s.times.gen_balance.imbalance),
                counters_json(&s.counters),
            )
        })
        .collect();
    let rec = &r.recovery;
    let f = &r.failover;
    let i = &r.integrity;
    format!(
        concat!(
            "{{\"app\":{},\"device\":{},\"mode\":{},\"wall\":{},",
            "\"sim_exec\":{},\"sim_comm\":{},\"sim_total\":{},",
            "\"recovery\":{{\"checkpoints_written\":{},\"checkpoint_bytes\":{},",
            "\"rollbacks\":{},\"retries\":{},\"corrupt_snapshots_rejected\":{},",
            "\"faults_injected\":{},\"degraded\":{}}},",
            "\"failover\":{{\"crash_detections\":{},\"hang_detections\":{},",
            "\"migrations\":{},\"rebalances\":{},\"exchange_drops\":{},",
            "\"exchange_timeouts\":{},\"watchdog_latency_ms\":{},",
            "\"resume_step\":{},\"supersteps_replayed\":{},",
            "\"supersteps_total\":{},\"degraded_single\":{}}},",
            "\"integrity\":{{\"frame_checks\":{},\"frame_detections\":{},",
            "\"frame_reexchanges\":{},\"group_checks\":{},",
            "\"group_detections\":{},\"state_checks\":{},",
            "\"state_detections\":{},\"audits_run\":{},",
            "\"audit_violations\":{},\"false_positive_audits\":{},",
            "\"quarantined_groups\":{},\"group_heals\":{},",
            "\"step_replays\":{},\"scrub_passes\":{}}},",
            "\"steps\":[{}]}}"
        ),
        quote(&r.app),
        quote(&r.device),
        quote(&r.mode),
        num(r.wall),
        num(r.sim_exec()),
        num(r.sim_comm()),
        num(r.sim_total()),
        rec.checkpoints_written,
        rec.checkpoint_bytes,
        rec.rollbacks,
        rec.retries,
        rec.corrupt_snapshots_rejected,
        rec.faults_injected,
        rec.degraded,
        f.crash_detections,
        f.hang_detections,
        f.migrations,
        f.rebalances,
        f.exchange_drops,
        f.exchange_timeouts,
        f.watchdog_latency_ms,
        f.resume_step,
        f.supersteps_replayed,
        f.supersteps_total,
        f.degraded_single,
        i.frame_checks,
        i.frame_detections,
        i.frame_reexchanges,
        i.group_checks,
        i.group_detections,
        i.state_checks,
        i.state_detections,
        i.audits_run,
        i.audit_violations,
        i.false_positive_audits,
        i.quarantined_groups,
        i.group_heals,
        i.step_replays,
        i.scrub_passes,
        steps.join(","),
    )
}

/// Dump the combined report plus the per-device reports as one JSON
/// document (schema [`REPORT_SCHEMA`]).
pub fn run_report_json(report: &RunReport, device_reports: &[RunReport]) -> String {
    let devices: Vec<String> = device_reports.iter().map(report_obj).collect();
    format!(
        "{{\"schema\":{},\"combined\":{},\"devices\":[{}]}}\n",
        quote(REPORT_SCHEMA),
        report_obj(report),
        devices.join(","),
    )
}

fn aggregate_counters(r: &RunReport) -> StepCounters {
    let mut total = StepCounters::default();
    for s in &r.steps {
        total.accumulate(&s.counters);
    }
    total
}

fn prom_metric(
    out: &mut String,
    name: &str,
    help: &str,
    labels: &str,
    value: impl std::fmt::Display,
) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
    out.push_str(&format!("{name}{{{labels}}} {value}\n"));
}

fn prom_hist(out: &mut String, h: &HistSnapshot, labels: &str) {
    if h.count == 0 {
        return;
    }
    let name = format!("phigraph_{}", h.name);
    out.push_str(&format!(
        "# HELP {name} Log2-bucketed engine distribution.\n# TYPE {name} histogram\n"
    ));
    let mut cum = 0u64;
    for (upper, count) in h.nonzero() {
        cum += count;
        let le = if upper == u64::MAX {
            "+Inf".to_string()
        } else {
            upper.to_string()
        };
        out.push_str(&format!("{name}_bucket{{{labels},le=\"{le}\"}} {cum}\n"));
    }
    if !h.nonzero().iter().any(|(u, _)| *u == u64::MAX) {
        out.push_str(&format!("{name}_bucket{{{labels},le=\"+Inf\"}} {cum}\n"));
    }
    out.push_str(&format!("{name}_sum{{{labels}}} {}\n", h.sum));
    out.push_str(&format!("{name}_count{{{labels}}} {}\n", h.count));
}

/// Render the run's aggregates as Prometheus text exposition. `snap`
/// contributes the engine distribution histograms when a trace was attached
/// to the run.
pub fn prometheus_text(report: &RunReport, snap: Option<&TraceSnapshot>) -> String {
    let labels = format!(
        "app={},device={},mode={}",
        quote(&report.app),
        quote(&report.device),
        quote(&report.mode)
    );
    let mut out = String::new();
    prom_metric(
        &mut out,
        "phigraph_supersteps",
        "Supersteps executed.",
        &labels,
        report.supersteps(),
    );
    prom_metric(
        &mut out,
        "phigraph_sim_exec_seconds",
        "Simulated execution time (compute phases).",
        &labels,
        num(report.sim_exec()),
    );
    prom_metric(
        &mut out,
        "phigraph_sim_comm_seconds",
        "Simulated communication time.",
        &labels,
        num(report.sim_comm()),
    );
    prom_metric(
        &mut out,
        "phigraph_sim_total_seconds",
        "Simulated total time.",
        &labels,
        num(report.sim_total()),
    );
    prom_metric(
        &mut out,
        "phigraph_wall_seconds",
        "Host wall-clock time for the run.",
        &labels,
        num(report.wall),
    );

    let c = aggregate_counters(report);
    let counter_rows: [(&str, &str, u64); 22] = [
        (
            "active_vertices",
            "Active vertices scanned.",
            c.active_vertices,
        ),
        (
            "gen_edges",
            "Out-edges traversed during generation.",
            c.gen_edges,
        ),
        ("msgs_local", "Messages inserted locally.", c.msgs_local),
        (
            "msgs_remote",
            "Messages bound for the peer device.",
            c.msgs_remote,
        ),
        (
            "queue_full_spins",
            "Full-queue spins workers burned on SPSC backpressure.",
            c.queue_full_spins,
        ),
        (
            "flush_batches",
            "Worker-to-mover batches flushed.",
            c.flush_batches,
        ),
        (
            "batched_msgs",
            "Messages carried inside flush batches.",
            c.batched_msgs,
        ),
        (
            "mover_idle_polls",
            "Empty mover polling rounds.",
            c.mover_idle_polls,
        ),
        ("proc_rows", "Vector-array rows reduced.", c.proc_rows),
        ("proc_msgs", "Messages reduced.", c.proc_msgs),
        (
            "holes_filled",
            "Bubble cells filled before lane reduction.",
            c.holes_filled,
        ),
        (
            "occupied_columns",
            "Columns holding at least one message.",
            c.occupied_columns,
        ),
        (
            "updated_vertices",
            "Vertices whose update function ran.",
            c.updated_vertices,
        ),
        ("bytes_gen", "Bytes touched during generation.", c.bytes_gen),
        (
            "bytes_proc",
            "Bytes touched during processing.",
            c.bytes_proc,
        ),
        (
            "bytes_update",
            "Bytes touched during update.",
            c.bytes_update,
        ),
        (
            "comm_bytes",
            "Wire bytes exchanged with the peer.",
            c.comm_bytes,
        ),
        (
            "checkpoints_written",
            "Barrier checkpoints written.",
            c.checkpoints_written,
        ),
        (
            "checkpoint_bytes",
            "Bytes written into checkpoints.",
            c.checkpoint_bytes,
        ),
        (
            "faults_injected",
            "Faults fired at injection sites.",
            c.faults_injected,
        ),
        ("heartbeats", "Heartbeat ticks emitted.", c.heartbeats),
        (
            "exchange_drops",
            "Remote exchanges lost on the link.",
            c.exchange_drops,
        ),
    ];
    for (name, help, value) in counter_rows {
        prom_metric(
            &mut out,
            &format!("phigraph_{name}_total"),
            help,
            &labels,
            value,
        );
    }

    let rec = &report.recovery;
    let rec_rows: [(&str, &str, u64); 5] = [
        (
            "recovery_rollbacks",
            "Rollbacks to an earlier barrier.",
            rec.rollbacks,
        ),
        ("recovery_retries", "Replay attempts consumed.", rec.retries),
        (
            "recovery_corrupt_snapshots_rejected",
            "Snapshots rejected by checksum or format.",
            rec.corrupt_snapshots_rejected,
        ),
        (
            "recovery_faults_injected",
            "Faults the injector fired.",
            rec.faults_injected,
        ),
        (
            "recovery_degraded",
            "1 when the run degraded to sequential.",
            rec.degraded as u64,
        ),
    ];
    for (name, help, value) in rec_rows {
        prom_metric(&mut out, &format!("phigraph_{name}"), help, &labels, value);
    }

    let f = &report.failover;
    let fo_rows: [(&str, &str, u64); 9] = [
        (
            "failover_crash_detections",
            "Devices lost to a dead endpoint.",
            f.crash_detections,
        ),
        (
            "failover_hang_detections",
            "Devices lost to silence past deadline.",
            f.hang_detections,
        ),
        (
            "failover_migrations",
            "Partition migrations onto the survivor.",
            f.migrations,
        ),
        (
            "failover_rebalances",
            "Straggler-driven partition rebalances.",
            f.rebalances,
        ),
        (
            "failover_exchange_drops",
            "Exchanges lost on the link.",
            f.exchange_drops,
        ),
        (
            "failover_exchange_timeouts",
            "Exchanges that hit the peer deadline.",
            f.exchange_timeouts,
        ),
        (
            "failover_watchdog_latency_ms",
            "Worst silence-to-detection latency.",
            f.watchdog_latency_ms,
        ),
        (
            "failover_supersteps_replayed",
            "Supersteps re-executed after failover.",
            f.supersteps_replayed,
        ),
        (
            "failover_degraded_single",
            "1 when the run finished on one device after migration.",
            f.degraded_single as u64,
        ),
    ];
    for (name, help, value) in fo_rows {
        prom_metric(&mut out, &format!("phigraph_{name}"), help, &labels, value);
    }

    let i = &report.integrity;
    let integ_rows: [(&str, &str, u64); 10] = [
        (
            "integrity_frame_checks",
            "Exchange frames validated against their header checksum.",
            i.frame_checks,
        ),
        (
            "integrity_frame_detections",
            "Frames that failed validation (truncation or bit rot).",
            i.frame_detections,
        ),
        (
            "integrity_frame_reexchanges",
            "In-place re-exchanges that healed a corrupt frame.",
            i.frame_reexchanges,
        ),
        (
            "integrity_detections",
            "Corruptions detected on any rung of the lattice.",
            i.detections(),
        ),
        (
            "integrity_quarantined_groups",
            "Vertex groups quarantined for targeted recompute.",
            i.quarantined_groups,
        ),
        (
            "integrity_group_heals",
            "Groups healed by targeted regeneration (rung 1).",
            i.group_heals,
        ),
        (
            "integrity_step_replays",
            "Full single-step replays (rung 2).",
            i.step_replays,
        ),
        (
            "integrity_audit_violations",
            "App invariant violations the auditors flagged.",
            i.audit_violations,
        ),
        (
            "integrity_false_positive_audits",
            "Audit alarms a replay reproduced bit-identically.",
            i.false_positive_audits,
        ),
        (
            "integrity_scrub_passes",
            "Background scrub passes completed.",
            i.scrub_passes,
        ),
    ];
    for (name, help, value) in integ_rows {
        prom_metric(&mut out, &format!("phigraph_{name}"), help, &labels, value);
    }

    if let Some(snap) = snap {
        for h in &snap.hists {
            prom_hist(&mut out, h, &labels);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::StepReport;
    use phigraph_trace::json::Json;
    use phigraph_trace::{Trace, TraceLevel};

    fn sample_report() -> RunReport {
        let mut s0 = StepReport {
            step: 0,
            comm_time: 0.25,
            wall: 0.001,
            ..Default::default()
        };
        s0.times.gen = 1.0;
        s0.times.process = 0.5;
        s0.times.update = 0.25;
        s0.times.total = 1.75;
        s0.counters.msgs_local = 10;
        s0.counters.flush_batches = 2;
        s0.counters.batched_msgs = 10;
        s0.counters.mover_msgs = vec![4, 6];
        let mut r = RunReport {
            app: "sssp".into(),
            device: "CPU \"E5\"".into(),
            mode: "pipe".into(),
            steps: vec![s0],
            wall: 0.002,
            ..Default::default()
        };
        r.recovery.rollbacks = 1;
        r.failover.migrations = 1;
        r.integrity.frame_checks = 3;
        r.integrity.frame_detections = 1;
        r.integrity.group_heals = 2;
        r
    }

    #[test]
    fn report_json_round_trips_through_parser() {
        let r = sample_report();
        let text = run_report_json(&r, std::slice::from_ref(&r));
        let doc = Json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(REPORT_SCHEMA));
        let combined = doc.get("combined").unwrap();
        assert_eq!(combined.get("app").unwrap().as_str(), Some("sssp"));
        assert_eq!(combined.get("device").unwrap().as_str(), Some("CPU \"E5\""));
        assert!((combined.f64_or_0("sim_exec") - 1.75).abs() < 1e-12);
        let steps = combined.get("steps").unwrap().as_arr().unwrap();
        assert_eq!(steps.len(), 1);
        let c = steps[0].get("counters").unwrap();
        assert_eq!(c.u64_or_0("msgs_local"), 10);
        assert_eq!(c.u64_or_0("flush_batches"), 2);
        let movers = c.get("mover_msgs").unwrap().as_arr().unwrap();
        assert_eq!(movers.len(), 2);
        assert_eq!(combined.get("recovery").unwrap().u64_or_0("rollbacks"), 1);
        assert_eq!(combined.get("failover").unwrap().u64_or_0("migrations"), 1);
        let integ = combined.get("integrity").unwrap();
        assert_eq!(integ.u64_or_0("frame_checks"), 3);
        assert_eq!(integ.u64_or_0("frame_detections"), 1);
        assert_eq!(integ.u64_or_0("group_heals"), 2);
        assert_eq!(doc.get("devices").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn prometheus_text_has_expected_series() {
        let r = sample_report();
        let trace = Trace::new(TraceLevel::Phase);
        trace.record_hist(phigraph_trace::HistKind::FlushBatch, 10);
        trace.record_hist(phigraph_trace::HistKind::FlushBatch, 3);
        let snap = trace.snapshot();
        let text = prometheus_text(&r, Some(&snap));
        assert!(text.contains("phigraph_supersteps{app=\"sssp\""));
        assert!(text.contains("phigraph_msgs_local_total"));
        assert!(text.contains("phigraph_recovery_rollbacks"));
        assert!(text.contains("phigraph_failover_migrations"));
        assert!(text.contains("phigraph_integrity_frame_checks"));
        assert!(text.contains("phigraph_integrity_detections"));
        assert!(text.contains("phigraph_flush_batch_msgs_bucket"));
        assert!(text.contains("le=\"+Inf\"} 2\n"));
        assert!(text.contains("phigraph_flush_batch_msgs_sum"));
        // Every line is either a comment or `name{labels} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || (line.contains('{') && line.contains("} ")),
                "malformed exposition line: {line}"
            );
        }
        // Empty histograms are omitted entirely.
        assert!(!text.contains("queue_occupancy"));
    }

    #[test]
    fn prometheus_without_trace_skips_histograms() {
        let r = sample_report();
        let text = prometheus_text(&r, None);
        assert!(!text.contains("_bucket"));
        assert!(text.contains("phigraph_wall_seconds"));
    }
}
