//! BSP contract checking for vertex programs.
//!
//! Runs a program through an instrumented sequential superstep loop and
//! reports violations of the framework's contracts *before* they become
//! hard-to-debug panics inside a parallel engine:
//!
//! * messages sent to out-of-range vertices;
//! * a vertex receiving more messages in one superstep than its declared
//!   capacity ([`crate::api::VertexProgram::capacity_hint`] / in-degree) —
//!   the condensed buffer would panic on this;
//! * non-finite (`NaN`/`∞`→`NaN`) float message values, which poison
//!   reductions silently;
//! * `ALWAYS_ACTIVE` programs without a superstep bound (would never
//!   terminate);
//! * runaway runs that exceed a step budget.

use crate::api::{GenContext, MsgSink, VertexProgram};
use phigraph_graph::{Csr, VertexId};
use phigraph_simd::{MsgValue, ReduceOp};

/// One detected contract violation.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// A message targeted a vertex id outside the graph.
    OutOfRangeDestination {
        /// Sending vertex.
        src: VertexId,
        /// Offending destination.
        dst: VertexId,
        /// Superstep index.
        step: usize,
    },
    /// A vertex received more messages than its declared capacity.
    CapacityExceeded {
        /// Receiving vertex.
        vertex: VertexId,
        /// Messages that arrived.
        got: u32,
        /// Declared capacity.
        capacity: u32,
        /// Superstep index.
        step: usize,
    },
    /// A message value failed [`MsgValue`]-level sanity (non-finite float).
    NonFiniteMessage {
        /// Sending vertex.
        src: VertexId,
        /// Superstep index.
        step: usize,
    },
    /// The run did not terminate within the step budget.
    StepBudgetExceeded {
        /// The budget that was exhausted.
        budget: usize,
    },
}

/// Result of a contract check.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// All violations found (empty = clean).
    pub violations: Vec<Violation>,
    /// Supersteps executed.
    pub supersteps: usize,
    /// Total messages observed.
    pub messages: u64,
}

impl CheckReport {
    /// Whether the program honored every contract.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

struct CheckSink<'a, T> {
    n: usize,
    step: usize,
    src: VertexId,
    counts: &'a mut [u32],
    inbox: &'a mut [Option<T>],
    combine: fn(T, T) -> T,
    finite: fn(&T) -> bool,
    violations: &'a mut Vec<Violation>,
}

impl<'a, T: MsgValue> MsgSink<T> for CheckSink<'a, T> {
    fn send(&mut self, dst: VertexId, msg: T) {
        if (dst as usize) >= self.n {
            self.violations.push(Violation::OutOfRangeDestination {
                src: self.src,
                dst,
                step: self.step,
            });
            return;
        }
        if !(self.finite)(&msg) {
            self.violations.push(Violation::NonFiniteMessage {
                src: self.src,
                step: self.step,
            });
        }
        let d = dst as usize;
        self.inbox[d] = Some(match self.inbox[d].take() {
            None => msg,
            Some(cur) => (self.combine)(cur, msg),
        });
        self.counts[d] += 1;
    }
}

/// Check `program` on `graph` for up to `step_budget` supersteps.
pub fn check_program<P: VertexProgram>(
    program: &P,
    graph: &Csr,
    step_budget: usize,
) -> CheckReport {
    let mut report = CheckReport::default();
    let n = graph.num_vertices();

    if P::ALWAYS_ACTIVE && program.max_supersteps().is_none() {
        report
            .violations
            .push(Violation::StepBudgetExceeded { budget: 0 });
        return report;
    }

    // Per-vertex receive capacity: the engine's sizing rule.
    let indeg = graph.in_degrees();
    let capacity: Vec<u32> = (0..n as VertexId)
        .map(|v| program.capacity_hint(v, graph).unwrap_or(indeg[v as usize]))
        .collect();

    let mut values: Vec<P::Value> = Vec::with_capacity(n);
    let mut active = vec![false; n];
    for v in 0..n as VertexId {
        let (val, act) = program.init(v, graph);
        values.push(val);
        active[v as usize] = act;
    }
    let mut inbox: Vec<Option<P::Msg>> = vec![None; n];
    let mut counts = vec![0u32; n];
    let cap_steps = program
        .max_supersteps()
        .unwrap_or(step_budget)
        .min(step_budget);

    for step in 0..=cap_steps {
        if step == cap_steps {
            if program.max_supersteps() != Some(cap_steps) && active.iter().any(|&a| a) {
                report.violations.push(Violation::StepBudgetExceeded {
                    budget: step_budget,
                });
            }
            break;
        }
        counts.fill(0);
        let mut sent = 0u64;
        for v in 0..n as VertexId {
            if !active[v as usize] {
                continue;
            }
            let mut sink = CheckSink {
                n,
                step,
                src: v,
                counts: &mut counts,
                inbox: &mut inbox,
                combine: P::Reduce::apply,
                finite: is_finite_value::<P::Msg>,
                violations: &mut report.violations,
            };
            let mut ctx = GenContext::new(graph, &values, &mut sink);
            program.generate(v, &mut ctx);
            sent += ctx.sent;
        }
        report.messages += sent;
        if P::HAS_POST_GENERATE {
            for v in 0..n as VertexId {
                if active[v as usize] {
                    program.post_generate(v, &mut values[v as usize]);
                }
            }
        }
        active.fill(false);
        for v in 0..n {
            if counts[v] > capacity[v] {
                report.violations.push(Violation::CapacityExceeded {
                    vertex: v as VertexId,
                    got: counts[v],
                    capacity: capacity[v],
                    step,
                });
            }
            if let Some(msg) = inbox[v].take() {
                active[v] = program.update(v as VertexId, msg, &mut values[v], graph);
            }
        }
        if P::ALWAYS_ACTIVE {
            active.fill(true);
        }
        report.supersteps = step + 1;
        if sent == 0 {
            break;
        }
    }
    report
}

/// Float finiteness check lifted over the message encoding (integers are
/// always finite; floats round-trip through their wire bytes).
fn is_finite_value<T: MsgValue>(msg: &T) -> bool {
    match T::SIZE {
        4 => {
            let mut b = [0u8; 4];
            msg.write_le(&mut b);
            // Only meaningful for f32; for i32/u32 every pattern is finite.
            if std::any::TypeId::of::<T>() == std::any::TypeId::of::<f32>() {
                f32::from_le_bytes(b).is_finite()
            } else {
                true
            }
        }
        8 => {
            let mut b = [0u8; 8];
            msg.write_le(&mut b);
            if std::any::TypeId::of::<T>() == std::any::TypeId::of::<f64>() {
                f64::from_le_bytes(b).is_finite()
            } else {
                true
            }
        }
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phigraph_graph::generators::small::{chain, weighted_diamond};
    use phigraph_simd::{Min, Sum};

    struct GoodSssp;
    impl VertexProgram for GoodSssp {
        type Msg = f32;
        type Reduce = Min;
        type Value = f32;
        const NAME: &'static str = "good";
        fn init(&self, v: VertexId, _g: &Csr) -> (f32, bool) {
            if v == 0 {
                (0.0, true)
            } else {
                (f32::INFINITY, false)
            }
        }
        fn generate<S: MsgSink<f32>>(&self, v: VertexId, ctx: &mut GenContext<'_, f32, S>) {
            let my = *ctx.value(v);
            let g = ctx.graph;
            for e in g.edge_range(v) {
                ctx.send(g.targets[e], my + g.weight(e));
            }
        }
        fn update(&self, _v: VertexId, m: f32, val: &mut f32, _g: &Csr) -> bool {
            if m < *val {
                *val = m;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn clean_program_passes() {
        let g = weighted_diamond();
        let r = check_program(&GoodSssp, &g, 100);
        assert!(r.is_clean(), "{:?}", r.violations);
        assert!(r.supersteps >= 3);
        assert_eq!(r.messages, 4); // 0->{1,2}, then 1->3 and 2->3
    }

    #[test]
    fn out_of_range_destination_is_caught() {
        struct Wild;
        impl VertexProgram for Wild {
            type Msg = i32;
            type Reduce = Sum;
            type Value = i32;
            const NAME: &'static str = "wild";
            fn init(&self, v: VertexId, _g: &Csr) -> (i32, bool) {
                (0, v == 0)
            }
            fn generate<S: MsgSink<i32>>(&self, _v: VertexId, ctx: &mut GenContext<'_, i32, S>) {
                ctx.send(9999, 1);
            }
            fn update(&self, _v: VertexId, _m: i32, _val: &mut i32, _g: &Csr) -> bool {
                false
            }
        }
        let r = check_program(&Wild, &chain(4), 10);
        assert!(matches!(
            r.violations[0],
            Violation::OutOfRangeDestination {
                src: 0,
                dst: 9999,
                step: 0
            }
        ));
    }

    #[test]
    fn capacity_violation_is_caught() {
        // Sends twice along each edge: receivers get 2x their in-degree.
        struct Chatty;
        impl VertexProgram for Chatty {
            type Msg = i32;
            type Reduce = Sum;
            type Value = i32;
            const NAME: &'static str = "chatty";
            fn init(&self, v: VertexId, _g: &Csr) -> (i32, bool) {
                (0, v == 0)
            }
            fn generate<S: MsgSink<i32>>(&self, v: VertexId, ctx: &mut GenContext<'_, i32, S>) {
                let g = ctx.graph;
                for e in g.edge_range(v) {
                    ctx.send(g.targets[e], 1);
                    ctx.send(g.targets[e], 1);
                }
            }
            fn update(&self, _v: VertexId, _m: i32, _val: &mut i32, _g: &Csr) -> bool {
                false
            }
        }
        let r = check_program(&Chatty, &chain(3), 10);
        assert!(r.violations.iter().any(|v| matches!(
            v,
            Violation::CapacityExceeded {
                vertex: 1,
                got: 2,
                capacity: 1,
                ..
            }
        )));
    }

    #[test]
    fn nan_messages_are_caught() {
        struct NanSender;
        impl VertexProgram for NanSender {
            type Msg = f32;
            type Reduce = Sum;
            type Value = f32;
            const NAME: &'static str = "nan";
            fn init(&self, v: VertexId, _g: &Csr) -> (f32, bool) {
                (0.0, v == 0)
            }
            fn generate<S: MsgSink<f32>>(&self, v: VertexId, ctx: &mut GenContext<'_, f32, S>) {
                let g = ctx.graph;
                for e in g.edge_range(v) {
                    ctx.send(g.targets[e], f32::NAN);
                }
            }
            fn update(&self, _v: VertexId, _m: f32, _val: &mut f32, _g: &Csr) -> bool {
                false
            }
        }
        let r = check_program(&NanSender, &chain(3), 10);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NonFiniteMessage { .. })));
    }

    #[test]
    fn runaway_program_hits_budget() {
        // Two vertices ping-pong forever.
        struct PingPong;
        impl VertexProgram for PingPong {
            type Msg = i32;
            type Reduce = Sum;
            type Value = i32;
            const NAME: &'static str = "pingpong";
            fn init(&self, v: VertexId, _g: &Csr) -> (i32, bool) {
                (0, v == 0)
            }
            fn generate<S: MsgSink<i32>>(&self, v: VertexId, ctx: &mut GenContext<'_, i32, S>) {
                ctx.send(1 - v, 1);
            }
            fn update(&self, _v: VertexId, _m: i32, _val: &mut i32, _g: &Csr) -> bool {
                true
            }
            fn capacity_hint(&self, _v: VertexId, _g: &Csr) -> Option<u32> {
                Some(1)
            }
        }
        let g = {
            let mut el = phigraph_graph::EdgeList::new(2);
            el.push(0, 1);
            el.push(1, 0);
            Csr::from_edge_list(&el)
        };
        let r = check_program(&PingPong, &g, 16);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::StepBudgetExceeded { budget: 16 })));
    }
}
