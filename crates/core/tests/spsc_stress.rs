//! Cross-thread stress for the batched SPSC queue protocol.
//!
//! For every ring capacity in 1..=64, a producer thread interleaves the
//! per-item and batched push paths with randomized batch sizes while a
//! consumer thread interleaves `pop_batch` and `pop_slices` with
//! randomized drain limits, finishing with a closed-queue drain. The
//! transfer must be exactly-once and in-order for every combination —
//! including batches larger than the ring (chunked through) and the
//! degenerate 1-capacity ring (rounded up to 2). Runs in well under 5 s
//! with `cargo test --release`.

use phigraph_core::queues::{QueueMatrix, SpscQueue};
use phigraph_graph::generators::rng::SplitMix64;

/// Items moved per capacity point (kept moderate so the debug-profile
/// tier-1 run stays fast on small hosts).
const ITEMS: usize = 4_000;

#[test]
fn randomized_batches_transfer_exactly_once_in_order() {
    for cap in 1usize..=64 {
        let q = SpscQueue::<u64>::new(cap);
        let mut prod_rng = SplitMix64::seed_from_u64(0xA11CE + cap as u64);
        let mut cons_rng = SplitMix64::seed_from_u64(0xB0B + cap as u64);
        let got: Vec<u64> = std::thread::scope(|s| {
            s.spawn(|| {
                let mut next = 0u64;
                // Multi-round production: bursts of randomized size, each
                // either a push_slice (possibly larger than the ring) or a
                // run of per-item pushes.
                while (next as usize) < ITEMS {
                    let burst = prod_rng.random_range(1usize..(3 * cap + 4));
                    let burst = burst.min(ITEMS - next as usize);
                    if prod_rng.random_bool(0.5) {
                        let items: Vec<u64> = (next..next + burst as u64).collect();
                        // SAFETY: single producer thread.
                        unsafe { q.push_slice(&items) };
                    } else {
                        for i in 0..burst as u64 {
                            // SAFETY: single producer thread.
                            unsafe { q.push(next + i) };
                        }
                    }
                    next += burst as u64;
                }
                q.close();
            });
            let mut got = Vec::with_capacity(ITEMS);
            // Drain until the producer closed AND the ring is empty.
            while !q.is_drained() {
                let max = cons_rng.random_range(1usize..(2 * cap + 5));
                let n = if cons_rng.random_bool(0.5) {
                    // SAFETY: single consumer thread.
                    unsafe { q.pop_slices(max, |s| got.extend_from_slice(s)) }
                } else {
                    // SAFETY: single consumer thread.
                    unsafe { q.pop_batch(&mut got, max) }
                };
                if n == 0 {
                    // Let the producer run (essential on single-core hosts).
                    std::thread::yield_now();
                }
            }
            got
        });
        assert_eq!(got.len(), ITEMS, "cap {cap}: lost or duplicated items");
        for (i, &v) in got.iter().enumerate() {
            assert_eq!(v, i as u64, "cap {cap}: out-of-order at {i}");
        }
    }
}

#[test]
fn queue_matrix_randomized_fanout_is_exact() {
    // 3 workers × 2 movers, randomized batch sizes, tiny rings: every
    // (worker, mover) stream must arrive in-order; the union must be the
    // exact multiset sent.
    const WORKERS: usize = 3;
    const MOVERS: usize = 2;
    const PER_WORKER: usize = 5_000;
    let m = QueueMatrix::<(u32, u64)>::new(WORKERS, MOVERS, 8);
    let m = &m;
    let mover_out: Vec<Vec<(u32, u64)>> = std::thread::scope(|s| {
        for w in 0..WORKERS {
            s.spawn(move || {
                let mut rng = SplitMix64::seed_from_u64(77 + w as u64);
                let mut bufs: Vec<Vec<(u32, u64)>> = vec![Vec::new(); MOVERS];
                let batch = 1 + w * 3; // 1, 4, 7: includes the degenerate 1
                for i in 0..PER_WORKER as u64 {
                    let dst: u32 = rng.random_range(0u32..64);
                    let mv = dst as usize % MOVERS;
                    bufs[mv].push((dst, (w as u64) << 32 | i));
                    if bufs[mv].len() >= batch {
                        // SAFETY: worker w is the sole producer of row w.
                        unsafe { m.queue(w, mv).push_slice(&bufs[mv]) };
                        bufs[mv].clear();
                    }
                }
                for (mv, buf) in bufs.iter().enumerate() {
                    if !buf.is_empty() {
                        // SAFETY: as above.
                        unsafe { m.queue(w, mv).push_slice(buf) };
                    }
                }
                m.close_worker(w);
            });
        }
        let handles: Vec<_> = (0..MOVERS)
            .map(|mv| {
                s.spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        let mut moved = false;
                        for w in 0..WORKERS {
                            // SAFETY: mover mv is the sole consumer of (w, mv).
                            let n = unsafe {
                                m.queue(w, mv)
                                    .pop_slices(16, |sl| got.extend_from_slice(sl))
                            };
                            if n > 0 {
                                moved = true;
                            }
                        }
                        if !moved {
                            if m.mover_done(mv) {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut all: Vec<(u32, u64)> = Vec::new();
    for (mv, got) in mover_out.iter().enumerate() {
        // Routing: every message landed at its dst's mover class.
        for &(dst, _) in got {
            assert_eq!(dst as usize % MOVERS, mv, "misrouted message");
        }
        // Per-worker sequence numbers arrive in increasing order within
        // this mover (SPSC order is preserved per queue).
        for w in 0..WORKERS as u64 {
            let seqs: Vec<u64> = got
                .iter()
                .filter(|&&(_, tag)| tag >> 32 == w)
                .map(|&(_, tag)| tag & 0xFFFF_FFFF)
                .collect();
            assert!(
                seqs.windows(2).all(|p| p[0] < p[1]),
                "worker {w} stream reordered at mover {mv}"
            );
        }
        all.extend_from_slice(got);
    }
    assert_eq!(all.len(), WORKERS * PER_WORKER);
    // Exactly-once: every (worker, seq) tag present once.
    let mut tags: Vec<u64> = all.iter().map(|&(_, tag)| tag).collect();
    tags.sort_unstable();
    tags.dedup();
    assert_eq!(tags.len(), WORKERS * PER_WORKER, "duplicated messages");
}
